"""EILIDsw: the trusted ROM driven on the simulated CPU.

Differential testing against :class:`ShadowStackModel`: sequences of
shadow-stack operations are executed both on the Python model and on
the real ROM (via the NS shims on the device), and outcomes -- stored
words, index register movement, violation reasons -- must agree.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.casu.monitor import ViolationReason
from repro.device import build_device
from repro.eilid.policy import EilidPolicy
from repro.eilid.shadow_stack import ShadowStackModel
from repro.eilid.trusted_sw import SELECTORS, TrustedSoftware
from repro.memory.map import MemoryLayout
from repro.toolchain import link, parse_source

LAYOUT = MemoryLayout.default()
POLICY = EilidPolicy()
TRUSTED = TrustedSoftware(LAYOUT, POLICY)
PLAN = TRUSTED.plan

_DRIVER = """
    .text
__start:
    mov #0x0a00, r1
__halt:
    jmp __halt
    .vector 15, __start
"""


@pytest.fixture
def device():
    units = [
        parse_source(_DRIVER, "driver.s"),
        parse_source(TRUSTED.shims_source(), "eilid_shims.s"),
        parse_source(TRUSTED.rom_source(), "eilid_rom.s"),
    ]
    program = link(units, name="rom-driver")
    return build_device(program, security="eilid")


def call_shim(device, name, r6=0, r7=0):
    """Invoke NS_EILID_<name> as instrumented code would; returns the
    violation list (empty on success)."""
    return device.call_routine(f"NS_EILID_{name}", regs={6: r6, 7: r7})


def reason_of(violations):
    return violations[0].reason if violations else None


class TestRomBasics:
    def test_init_zeroes_index_and_table(self, device):
        device.cpu.set_reg(5, 7)
        assert call_shim(device, "init") == []
        assert device.cpu.get_reg(5) == 0
        assert device.peek_word(PLAN.table_count_addr) == 0

    def test_store_ra_writes_slot_and_increments_r5(self, device):
        call_shim(device, "init")
        assert call_shim(device, "store_ra", r6=0xE123) == []
        assert device.cpu.get_reg(5) == 1
        assert device.peek_word(PLAN.shadow_base) == 0xE123

    def test_fig9b_indexing(self, device):
        """Fig. 9b: with r5 == 2 the next store lands at base + 4."""
        call_shim(device, "init")
        call_shim(device, "store_ra", r6=0xAAAA)
        call_shim(device, "store_ra", r6=0xBBBB)
        assert device.cpu.get_reg(5) == 2
        call_shim(device, "store_ra", r6=0xCCCC)
        assert device.peek_word(PLAN.shadow_base + 4) == 0xCCCC

    def test_check_ra_match_decrements(self, device):
        call_shim(device, "init")
        call_shim(device, "store_ra", r6=0xE200)
        assert call_shim(device, "check_ra", r6=0xE200) == []
        assert device.cpu.get_reg(5) == 0

    def test_check_ra_mismatch_resets(self, device):
        call_shim(device, "init")
        call_shim(device, "store_ra", r6=0xE200)
        violations = call_shim(device, "check_ra", r6=0xE202)
        assert reason_of(violations) is ViolationReason.CFI_RETURN
        assert device.reset_count == 1

    def test_check_ra_underflow_resets(self, device):
        call_shim(device, "init")
        violations = call_shim(device, "check_ra", r6=0xE200)
        assert reason_of(violations) is ViolationReason.SHADOW_UNDERFLOW

    def test_store_ra_overflow_resets(self, device):
        call_shim(device, "init")
        for _ in range(PLAN.shadow_capacity_words):
            assert call_shim(device, "store_ra", r6=0xE000) == []
        violations = call_shim(device, "store_ra", r6=0xE000)
        assert reason_of(violations) is ViolationReason.SHADOW_OVERFLOW

    def test_lifo_order_enforced(self, device):
        call_shim(device, "init")
        call_shim(device, "store_ra", r6=0xE100)
        call_shim(device, "store_ra", r6=0xE200)
        assert call_shim(device, "check_ra", r6=0xE200) == []
        assert call_shim(device, "check_ra", r6=0xE100) == []


class TestRfi:
    def test_store_check_pair(self, device):
        call_shim(device, "init")
        assert call_shim(device, "store_rfi", r6=0xE300, r7=0x0008) == []
        assert device.cpu.get_reg(5) == 2  # two slots (PC + SR)
        assert call_shim(device, "check_rfi", r6=0xE300, r7=0x0008) == []
        assert device.cpu.get_reg(5) == 0

    def test_pc_mismatch_resets(self, device):
        call_shim(device, "init")
        call_shim(device, "store_rfi", r6=0xE300, r7=0x0008)
        violations = call_shim(device, "check_rfi", r6=0xE302, r7=0x0008)
        assert reason_of(violations) is ViolationReason.CFI_RFI

    def test_sr_mismatch_resets(self, device):
        call_shim(device, "init")
        call_shim(device, "store_rfi", r6=0xE300, r7=0x0008)
        violations = call_shim(device, "check_rfi", r6=0xE300, r7=0x0000)
        assert reason_of(violations) is ViolationReason.CFI_RFI

    def test_underflow_resets(self, device):
        call_shim(device, "init")
        violations = call_shim(device, "check_rfi", r6=1, r7=2)
        assert reason_of(violations) is ViolationReason.SHADOW_UNDERFLOW


class TestIndirectTable:
    def test_store_and_check(self, device):
        call_shim(device, "init")
        assert call_shim(device, "store_ind", r6=0xE100) == []
        assert call_shim(device, "store_ind", r6=0xE200) == []
        assert device.peek_word(PLAN.table_count_addr) == 2
        assert call_shim(device, "check_ind", r6=0xE100) == []
        assert call_shim(device, "check_ind", r6=0xE200) == []

    def test_unknown_target_resets(self, device):
        call_shim(device, "init")
        call_shim(device, "store_ind", r6=0xE100)
        violations = call_shim(device, "check_ind", r6=0xE102)
        assert reason_of(violations) is ViolationReason.CFI_INDIRECT

    def test_empty_table_resets(self, device):
        call_shim(device, "init")
        violations = call_shim(device, "check_ind", r6=0xE100)
        assert reason_of(violations) is ViolationReason.CFI_INDIRECT

    def test_table_overflow_resets(self, device):
        call_shim(device, "init")
        for index in range(PLAN.table_capacity):
            assert call_shim(device, "store_ind", r6=0xE000 + 2 * index) == []
        violations = call_shim(device, "store_ind", r6=0xEFFE)
        assert reason_of(violations) is ViolationReason.TABLE_OVERFLOW


class TestDispatch:
    def test_bad_selector_resets(self, device):
        device.cpu.set_reg(4, 99)
        # Call the ROM entry directly with a bogus selector.
        violations = device.call_routine("S_EILID_entry")
        assert reason_of(violations) is ViolationReason.BAD_SELECTOR

    def test_leave_clears_selector(self, device):
        call_shim(device, "init")
        call_shim(device, "store_ra", r6=0xE100)
        assert device.cpu.get_reg(4) == 0

    def test_selector_values_match_spec(self):
        assert SELECTORS == {
            "init": 0, "store_ra": 1, "check_ra": 2, "store_rfi": 3,
            "check_rfi": 4, "store_ind": 5, "check_ind": 6,
        }


# ---- differential testing against the Python model ---------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("store_ra"), st.integers(0xE000, 0xEFFF)),
        st.tuples(st.just("check_ra"), st.integers(0xE000, 0xEFFF)),
        st.tuples(st.just("store_ind"), st.integers(0xE000, 0xE00F)),
        st.tuples(st.just("check_ind"), st.integers(0xE000, 0xE00F)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None)
@given(ops=_OPS)
def test_rom_matches_python_model(ops):
    units = [
        parse_source(_DRIVER, "driver.s"),
        parse_source(TRUSTED.shims_source(), "eilid_shims.s"),
        parse_source(TRUSTED.rom_source(), "eilid_rom.s"),
    ]
    program = link(units, name="rom-driver")
    device = build_device(program, security="eilid")
    model = ShadowStackModel(PLAN)

    call_shim(device, "init")
    model.init()
    for op, value in ops:
        expected = getattr(model, op)(value & 0xFFFE)
        violations = call_shim(device, op, r6=value & 0xFFFE)
        actual = reason_of(violations)
        assert actual == expected, f"{op}(0x{value:04x}): rom={actual} model={expected}"
        if expected is not None:
            return  # device reset: run ends here, like the hardware
        assert device.cpu.get_reg(5) == model.index
