"""Encoder/decoder unit tests + round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import encode, Instruction
from repro.isa.decode import decode_words
from repro.isa.opcodes import (
    FORMAT1_OPCODES,
    FORMAT2_OPCODES,
    JUMP_OPCODES,
    lookup,
)
from repro.isa.operands import AddrMode, Operand


def roundtrip(insn):
    words = encode(insn)
    decoded, consumed = decode_words(words)
    assert consumed == len(words)
    return decoded


class TestFormat1Encoding:
    def test_mov_register_register(self):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.register(10),
                          dst=Operand.register(11))
        assert encode(insn) == [0x4A0B << 0 | 0]  # 0x4A0B
        assert encode(insn)[0] == 0x4A0B

    def test_add_immediate_uses_extension_word(self):
        insn = Instruction(FORMAT1_OPCODES["add"], src=Operand.immediate(0x1234),
                          dst=Operand.register(5))
        words = encode(insn)
        assert len(words) == 2
        assert words[1] == 0x1234

    @pytest.mark.parametrize("value,expected_len", [
        (0, 1), (1, 1), (2, 1), (4, 1), (8, 1), (0xFFFF, 1),
        (3, 2), (5, 2), (0x100, 2),
    ])
    def test_constant_generator_immediates(self, value, expected_len):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.immediate(value),
                          dst=Operand.register(6))
        assert len(encode(insn)) == expected_len

    def test_absolute_destination(self):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.register(15),
                          dst=Operand.absolute(0x0200))
        words = encode(insn)
        assert len(words) == 2
        assert words[1] == 0x0200

    def test_indexed_both_sides_two_extension_words(self):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.indexed(4, 10),
                          dst=Operand.indexed(6, 11))
        words = encode(insn)
        assert len(words) == 3
        assert words[1] == 4 and words[2] == 6

    def test_byte_mode_bit(self):
        word = Instruction(FORMAT1_OPCODES["mov"], src=Operand.register(4),
                           dst=Operand.register(5), byte_mode=True)
        assert encode(word)[0] & 0x0040

    @pytest.mark.parametrize("name", sorted(FORMAT1_OPCODES))
    def test_roundtrip_every_format1_opcode(self, name):
        insn = Instruction(FORMAT1_OPCODES[name], src=Operand.indexed(2, 9),
                          dst=Operand.register(12))
        back = roundtrip(insn)
        assert back.mnemonic == name
        assert back.src == insn.src and back.dst == insn.dst


class TestFormat2Encoding:
    @pytest.mark.parametrize("name", ["rrc", "swpb", "rra", "sxt", "push", "call"])
    def test_roundtrip_register_operand(self, name):
        insn = Instruction(FORMAT2_OPCODES[name], dst=Operand.register(7))
        back = roundtrip(insn)
        assert back.mnemonic == name and back.dst == insn.dst

    def test_reti_is_fixed_word(self):
        insn = Instruction(FORMAT2_OPCODES["reti"])
        assert encode(insn) == [0x1300]

    def test_call_immediate(self):
        insn = Instruction(FORMAT2_OPCODES["call"], dst=Operand.immediate(0xE000))
        words = encode(insn)
        assert words[0] == 0x12B0 and words[1] == 0xE000

    def test_swpb_byte_mode_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(FORMAT2_OPCODES["swpb"], dst=Operand.register(4),
                               byte_mode=True))

    def test_push_byte_mode_allowed(self):
        insn = Instruction(FORMAT2_OPCODES["push"], dst=Operand.register(4),
                          byte_mode=True)
        assert roundtrip(insn).byte_mode


class TestJumpEncoding:
    @pytest.mark.parametrize("name", sorted(JUMP_OPCODES))
    def test_roundtrip_every_condition(self, name):
        insn = Instruction(JUMP_OPCODES[name], offset=-3)
        back = roundtrip(insn)
        assert back.mnemonic == name and back.offset == -3

    @pytest.mark.parametrize("offset", [-512, -1, 0, 1, 511])
    def test_offset_range_limits(self, offset):
        insn = Instruction(JUMP_OPCODES["jmp"], offset=offset)
        assert roundtrip(insn).offset == offset

    @pytest.mark.parametrize("offset", [-513, 512, 1000])
    def test_out_of_range_offset_rejected(self, offset):
        with pytest.raises(EncodingError):
            encode(Instruction(JUMP_OPCODES["jmp"], offset=offset))


class TestDecodeErrors:
    @pytest.mark.parametrize("word", [0x0000, 0x0F00, 0x13C0 | 0x80])
    def test_illegal_words_rejected(self, word):
        with pytest.raises(DecodingError):
            decode_words([word])

    def test_truncated_extension_word(self):
        # mov #imm, r5 needs a second word
        with pytest.raises(DecodingError):
            decode_words([0x4035])

    def test_lookup_aliases(self):
        assert lookup("jne").mnemonic == "jnz"
        assert lookup("jeq").mnemonic == "jz"
        assert lookup("jlo").mnemonic == "jnc"
        assert lookup("jhs").mnemonic == "jc"
        assert lookup("nonsense") is None


# ---- property-based round-trips ---------------------------------------------

_regs = st.integers(min_value=4, max_value=15)  # avoid CG registers for src
_values = st.integers(min_value=0, max_value=0xFFFF)


def _source_operands():
    return st.one_of(
        _regs.map(Operand.register),
        st.tuples(_values, _regs).map(lambda t: Operand.indexed(*t)),
        _values.map(Operand.absolute),
        _regs.map(Operand.indirect),
        _regs.map(Operand.autoinc),
        _values.map(Operand.immediate),
        _values.map(Operand.symbolic),
    )


def _dest_operands():
    return st.one_of(
        st.integers(min_value=0, max_value=15).map(Operand.register),
        st.tuples(_values, _regs).map(lambda t: Operand.indexed(*t)),
        _values.map(Operand.absolute),
    )


@given(
    name=st.sampled_from(sorted(FORMAT1_OPCODES)),
    src=_source_operands(),
    dst=_dest_operands(),
    byte=st.booleans(),
)
def test_format1_roundtrip_property(name, src, dst, byte):
    insn = Instruction(FORMAT1_OPCODES[name], src=src, dst=dst, byte_mode=byte)
    back = roundtrip(insn)
    assert back.mnemonic == name
    assert back.byte_mode == byte
    # Immediates matching a CG constant legitimately decode as CONSTANT.
    if src.mode is AddrMode.IMMEDIATE and back.src.mode is AddrMode.CONSTANT:
        assert back.src.value == src.value
    else:
        assert back.src == src
    assert back.dst == dst


@given(offset=st.integers(min_value=-512, max_value=511),
       name=st.sampled_from(sorted(JUMP_OPCODES)))
def test_jump_roundtrip_property(offset, name):
    insn = Instruction(JUMP_OPCODES[name], offset=offset)
    assert roundtrip(insn).offset == offset


@given(src=_source_operands(), dst=_dest_operands(), byte=st.booleans())
def test_size_words_matches_encoding(src, dst, byte):
    insn = Instruction(FORMAT1_OPCODES["add"], src=src, dst=dst, byte_mode=byte)
    assert insn.size_words == len(encode(insn))


# ---- seeded exhaustive round-trip sweep -------------------------------------
#
# CFG recovery (repro.cfg) linear-sweeps whole linked images through the
# decoder, so the decoder must be *total* over everything the encoder can
# produce: decode(encode(insn)) == insn for every opcode x addressing-mode
# x byte-mode combination.  The sweep below is deterministic (seeded value
# set, all mode pairs) rather than sampled.

_SWEEP_VALUES = (0x0000, 0x0001, 0x0002, 0x0003, 0x0004, 0x0008, 0x0009,
                 0x007F, 0x0080, 0x00FF, 0x0100, 0x1234, 0x7FFF, 0x8000,
                 0xFFFE, 0xFFFF)
_SWEEP_REGS = (4, 7, 11, 15)  # clear of PC/SP/SR/CG special-casing


def _sweep_sources():
    for reg in _SWEEP_REGS:
        yield Operand.register(reg)
        yield Operand.indirect(reg)
        yield Operand.autoinc(reg)
        yield Operand.indexed(_SWEEP_VALUES[reg % len(_SWEEP_VALUES)], reg)
    for value in _SWEEP_VALUES:
        yield Operand.immediate(value)
        yield Operand.absolute(value)
        yield Operand.symbolic(value)


def _sweep_dests():
    for reg in range(16):
        yield Operand.register(reg)
    for reg in _SWEEP_REGS:
        yield Operand.indexed(_SWEEP_VALUES[reg % len(_SWEEP_VALUES)], reg)
    for value in _SWEEP_VALUES:
        yield Operand.absolute(value)
        yield Operand.symbolic(value)


def _assert_identity(insn, back):
    assert back.mnemonic == insn.mnemonic
    assert back.byte_mode == insn.byte_mode
    assert back.dst == insn.dst
    if (insn.src is not None and insn.src.mode is AddrMode.IMMEDIATE
            and back.src is not None and back.src.mode is AddrMode.CONSTANT):
        assert back.src.value == insn.src.value  # constant-generator hit
    else:
        assert back.src == insn.src


class TestExhaustiveRoundTripSweep:
    @pytest.mark.parametrize("name", sorted(FORMAT1_OPCODES))
    def test_format1_all_mode_pairs(self, name):
        opcode = FORMAT1_OPCODES[name]
        checked = 0
        for src in _sweep_sources():
            for dst in _sweep_dests():
                for byte in (False, True):
                    insn = Instruction(opcode, src=src, dst=dst, byte_mode=byte)
                    _assert_identity(insn, roundtrip(insn))
                    checked += 1
        expected = 2 * len(list(_sweep_sources())) * len(list(_sweep_dests()))
        assert checked == expected and checked > 6000

    @pytest.mark.parametrize("name", sorted(FORMAT2_OPCODES))
    def test_format2_all_modes(self, name):
        from repro.isa.opcodes import FORMAT2_BYTE_CAPABLE

        opcode = FORMAT2_OPCODES[name]
        if name == "reti":
            insn = Instruction(opcode)
            back = roundtrip(insn)
            assert back.mnemonic == "reti" and back.dst is None
            return
        byte_modes = (False, True) if name in FORMAT2_BYTE_CAPABLE else (False,)
        for dst in _sweep_sources():  # format II uses the As encoding
            if dst.mode is AddrMode.IMMEDIATE and dst.value in (0, 1, 2, 4, 8, 0xFFFF):
                continue  # constant-generator forms legitimately decode as CONSTANT
            for byte in byte_modes:
                insn = Instruction(opcode, dst=dst, byte_mode=byte)
                back = roundtrip(insn)
                assert back.mnemonic == name
                assert back.byte_mode == byte
                if dst.mode is AddrMode.IMMEDIATE and back.dst.mode is AddrMode.CONSTANT:
                    assert back.dst.value == dst.value
                else:
                    assert back.dst == dst

    @pytest.mark.parametrize("name", sorted(JUMP_OPCODES))
    def test_jumps_full_offset_range(self, name):
        opcode = JUMP_OPCODES[name]
        for offset in range(-512, 512):
            insn = Instruction(opcode, offset=offset)
            back = roundtrip(insn)
            assert back.mnemonic == name and back.offset == offset

    def test_decoder_is_total_over_first_words(self):
        """Every 16-bit first word either decodes or raises DecodingError.

        The linear sweep in repro.cfg.recover relies on the decoder
        never escaping with anything else on arbitrary image bytes.
        """
        filler = [0x0000, 0x0000]  # extension words for multi-word shapes
        outcomes = {"ok": 0, "rejected": 0}
        for word in range(0x10000):
            try:
                decode_words([word] + filler)
                outcomes["ok"] += 1
            except DecodingError:
                outcomes["rejected"] += 1
        assert outcomes["ok"] + outcomes["rejected"] == 0x10000
        # All format-I opcodes (>= 0x4000) with legal fields decode, so
        # the accepting share dominates; the gap is the 0x0000-0x1FFF
        # hole plus reserved format-II encodings.
        assert outcomes["ok"] > 0xB000
        assert outcomes["rejected"] > 0x1000
