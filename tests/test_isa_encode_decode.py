"""Encoder/decoder unit tests + round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import decode, encode, Instruction
from repro.isa.decode import decode_words
from repro.isa.opcodes import (
    FORMAT1_OPCODES,
    FORMAT2_OPCODES,
    JUMP_OPCODES,
    lookup,
)
from repro.isa.operands import AddrMode, Operand


def roundtrip(insn):
    words = encode(insn)
    decoded, consumed = decode_words(words)
    assert consumed == len(words)
    return decoded


class TestFormat1Encoding:
    def test_mov_register_register(self):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.register(10),
                          dst=Operand.register(11))
        assert encode(insn) == [0x4A0B << 0 | 0]  # 0x4A0B
        assert encode(insn)[0] == 0x4A0B

    def test_add_immediate_uses_extension_word(self):
        insn = Instruction(FORMAT1_OPCODES["add"], src=Operand.immediate(0x1234),
                          dst=Operand.register(5))
        words = encode(insn)
        assert len(words) == 2
        assert words[1] == 0x1234

    @pytest.mark.parametrize("value,expected_len", [
        (0, 1), (1, 1), (2, 1), (4, 1), (8, 1), (0xFFFF, 1),
        (3, 2), (5, 2), (0x100, 2),
    ])
    def test_constant_generator_immediates(self, value, expected_len):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.immediate(value),
                          dst=Operand.register(6))
        assert len(encode(insn)) == expected_len

    def test_absolute_destination(self):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.register(15),
                          dst=Operand.absolute(0x0200))
        words = encode(insn)
        assert len(words) == 2
        assert words[1] == 0x0200

    def test_indexed_both_sides_two_extension_words(self):
        insn = Instruction(FORMAT1_OPCODES["mov"], src=Operand.indexed(4, 10),
                          dst=Operand.indexed(6, 11))
        words = encode(insn)
        assert len(words) == 3
        assert words[1] == 4 and words[2] == 6

    def test_byte_mode_bit(self):
        word = Instruction(FORMAT1_OPCODES["mov"], src=Operand.register(4),
                           dst=Operand.register(5), byte_mode=True)
        assert encode(word)[0] & 0x0040

    @pytest.mark.parametrize("name", sorted(FORMAT1_OPCODES))
    def test_roundtrip_every_format1_opcode(self, name):
        insn = Instruction(FORMAT1_OPCODES[name], src=Operand.indexed(2, 9),
                          dst=Operand.register(12))
        back = roundtrip(insn)
        assert back.mnemonic == name
        assert back.src == insn.src and back.dst == insn.dst


class TestFormat2Encoding:
    @pytest.mark.parametrize("name", ["rrc", "swpb", "rra", "sxt", "push", "call"])
    def test_roundtrip_register_operand(self, name):
        insn = Instruction(FORMAT2_OPCODES[name], dst=Operand.register(7))
        back = roundtrip(insn)
        assert back.mnemonic == name and back.dst == insn.dst

    def test_reti_is_fixed_word(self):
        insn = Instruction(FORMAT2_OPCODES["reti"])
        assert encode(insn) == [0x1300]

    def test_call_immediate(self):
        insn = Instruction(FORMAT2_OPCODES["call"], dst=Operand.immediate(0xE000))
        words = encode(insn)
        assert words[0] == 0x12B0 and words[1] == 0xE000

    def test_swpb_byte_mode_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(FORMAT2_OPCODES["swpb"], dst=Operand.register(4),
                               byte_mode=True))

    def test_push_byte_mode_allowed(self):
        insn = Instruction(FORMAT2_OPCODES["push"], dst=Operand.register(4),
                          byte_mode=True)
        assert roundtrip(insn).byte_mode


class TestJumpEncoding:
    @pytest.mark.parametrize("name", sorted(JUMP_OPCODES))
    def test_roundtrip_every_condition(self, name):
        insn = Instruction(JUMP_OPCODES[name], offset=-3)
        back = roundtrip(insn)
        assert back.mnemonic == name and back.offset == -3

    @pytest.mark.parametrize("offset", [-512, -1, 0, 1, 511])
    def test_offset_range_limits(self, offset):
        insn = Instruction(JUMP_OPCODES["jmp"], offset=offset)
        assert roundtrip(insn).offset == offset

    @pytest.mark.parametrize("offset", [-513, 512, 1000])
    def test_out_of_range_offset_rejected(self, offset):
        with pytest.raises(EncodingError):
            encode(Instruction(JUMP_OPCODES["jmp"], offset=offset))


class TestDecodeErrors:
    @pytest.mark.parametrize("word", [0x0000, 0x0F00, 0x13C0 | 0x80])
    def test_illegal_words_rejected(self, word):
        with pytest.raises(DecodingError):
            decode_words([word])

    def test_truncated_extension_word(self):
        # mov #imm, r5 needs a second word
        with pytest.raises(DecodingError):
            decode_words([0x4035])

    def test_lookup_aliases(self):
        assert lookup("jne").mnemonic == "jnz"
        assert lookup("jeq").mnemonic == "jz"
        assert lookup("jlo").mnemonic == "jnc"
        assert lookup("jhs").mnemonic == "jc"
        assert lookup("nonsense") is None


# ---- property-based round-trips ---------------------------------------------

_regs = st.integers(min_value=4, max_value=15)  # avoid CG registers for src
_values = st.integers(min_value=0, max_value=0xFFFF)


def _source_operands():
    return st.one_of(
        _regs.map(Operand.register),
        st.tuples(_values, _regs).map(lambda t: Operand.indexed(*t)),
        _values.map(Operand.absolute),
        _regs.map(Operand.indirect),
        _regs.map(Operand.autoinc),
        _values.map(Operand.immediate),
        _values.map(Operand.symbolic),
    )


def _dest_operands():
    return st.one_of(
        st.integers(min_value=0, max_value=15).map(Operand.register),
        st.tuples(_values, _regs).map(lambda t: Operand.indexed(*t)),
        _values.map(Operand.absolute),
    )


@given(
    name=st.sampled_from(sorted(FORMAT1_OPCODES)),
    src=_source_operands(),
    dst=_dest_operands(),
    byte=st.booleans(),
)
def test_format1_roundtrip_property(name, src, dst, byte):
    insn = Instruction(FORMAT1_OPCODES[name], src=src, dst=dst, byte_mode=byte)
    back = roundtrip(insn)
    assert back.mnemonic == name
    assert back.byte_mode == byte
    # Immediates matching a CG constant legitimately decode as CONSTANT.
    if src.mode is AddrMode.IMMEDIATE and back.src.mode is AddrMode.CONSTANT:
        assert back.src.value == src.value
    else:
        assert back.src == src
    assert back.dst == dst


@given(offset=st.integers(min_value=-512, max_value=511),
       name=st.sampled_from(sorted(JUMP_OPCODES)))
def test_jump_roundtrip_property(offset, name):
    insn = Instruction(JUMP_OPCODES[name], offset=offset)
    assert roundtrip(insn).offset == offset


@given(src=_source_operands(), dst=_dest_operands(), byte=st.booleans())
def test_size_words_matches_encoding(src, dst, byte):
    insn = Instruction(FORMAT1_OPCODES["add"], src=src, dst=dst, byte_mode=byte)
    assert insn.size_words == len(encode(insn))
