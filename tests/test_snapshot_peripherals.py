"""Per-peripheral snapshot round-trips, taken mid-transaction.

Each peripheral's ``snapshot_state``/``restore_state`` pair (see
:class:`repro.peripherals.base.Peripheral`) must move its complete
mutable state -- latched reads, pending schedules, busy windows, the
DONE latch -- through the JSON wire form onto a freshly constructed
instance without replaying or dropping logged events.  Every test
freezes a peripheral in the middle of a transaction, restores it into
a twin built with the same configuration, checks the event log is
byte-identical (same length: nothing re-emitted, nothing lost), and
then drives both forward to prove the restored one continues rather
than restarts.
"""

import json

import pytest

from repro.cpu import InterruptController
from repro.memory import Bus
from repro.peripherals import (
    Adc,
    AdcSchedule,
    Gpio,
    HarnessPorts,
    Lcd,
    Timer,
    Uart,
    Ultrasonic,
)
from repro.peripherals import ports as P


@pytest.fixture
def bus():
    return Bus()


def roundtrip(source, make_fresh):
    """Wire-round-trip *source*'s state onto a fresh twin; returns it.

    The twin gets its own bus (returned alongside) so both sides can be
    driven independently afterwards.
    """
    state = json.loads(json.dumps(source.snapshot_state()))
    fresh = make_fresh()
    fresh_bus = Bus()
    fresh.attach(fresh_bus, InterruptController())
    before = len(fresh.events)
    fresh.restore_state(state)
    # Events were adopted wholesale -- not replayed into duplicates,
    # not dropped, and re-snapshotting reproduces the wire form.
    assert len(fresh.events) == len(source.events)
    assert fresh.events == source.events
    assert fresh.snapshot_state() == state
    assert before == 0
    return fresh, fresh_bus


def test_gpio_mid_sequence(bus):
    gpio = Gpio()
    gpio.attach(bus)
    bus.write_word(P.GPIO_OUT, 0x55)
    bus.write_word(P.GPIO_DIR, 0x0F)
    gpio.tick(40)
    bus.write_word(P.GPIO_OUT, 0xAA)

    fresh, fresh_bus = roundtrip(gpio, Gpio)
    assert fresh.out == 0xAA and fresh.direction == 0x0F
    assert fresh_bus.read_word(P.GPIO_OUT) == 0xAA
    bus.write_word(P.GPIO_OUT, 0x11)
    fresh_bus.write_word(P.GPIO_OUT, 0x11)
    assert fresh.event_values("gpio.out") == gpio.event_values("gpio.out") \
        == [0x55, 0xAA, 0x11]


def test_timer_mid_period(bus):
    ic = InterruptController()
    timer = Timer()
    timer.attach(bus, ic)
    bus.write_word(P.TIMER_CCR, 1000)
    bus.write_word(P.TIMER_CTL, P.TIMER_ENABLE | P.TIMER_IRQ_ENABLE)
    timer.tick(1250)  # one fire behind us, 250 cycles into the next period
    assert timer.fire_count == 1 and timer.count == 250

    fresh, _ = roundtrip(timer, Timer)
    assert fresh.count == 250 and fresh.ccr == 1000
    assert fresh.fire_count == 1
    timer.tick(800)
    fresh.tick(800)
    assert fresh.count == timer.count == 50
    assert fresh.fire_count == timer.fire_count == 2


def test_adc_mid_sample_sequence(bus):
    schedule = AdcSchedule({2: AdcSchedule.steps(2, [100, 200, 300])})
    adc = Adc(schedule)
    adc.attach(bus)
    for _ in range(3):
        bus.write_word(P.ADC_CTL, P.ADC_START | 2)
        bus.read_word(P.ADC_DATA)

    # The twin is built with the same *configuration* (the schedule);
    # the restored sample counters must resume the sequence, not
    # restart it from the first step.
    fresh, fresh_bus = roundtrip(adc, lambda: Adc(schedule))
    assert fresh.channel_counts == {2: 3}
    fresh_bus.write_word(P.ADC_CTL, P.ADC_START | 2)
    bus.write_word(P.ADC_CTL, P.ADC_START | 2)
    assert fresh_bus.read_word(P.ADC_DATA) == bus.read_word(P.ADC_DATA) == 200


def test_uart_mid_delivery(bus):
    uart = Uart(rx_schedule=[(10, 0x41), (20, 0x42), (30, 0x43)],
                rx_irq_enabled=True)
    uart.attach(bus, InterruptController())
    bus.write_word(P.UART_TX, ord("x"))
    uart.tick(15)  # 0x41 delivered to the FIFO, two bytes still scheduled
    assert list(uart._rx_fifo) == [0x41]

    fresh, fresh_bus = roundtrip(uart, Uart)
    assert list(fresh._rx_fifo) == [0x41]
    assert fresh.tx_bytes == b"x"
    assert fresh.rx_irq_enabled
    fresh.tick(50)
    uart.tick(50)
    assert [fresh_bus.read_word(P.UART_RX) for _ in range(3)] == \
           [bus.read_word(P.UART_RX) for _ in range(3)] == [0x41, 0x42, 0x43]


def test_lcd_mid_busy_window(bus):
    lcd = Lcd()
    lcd.attach(bus)
    bus.write_word(P.LCD_CMD, 0x38)
    for ch in b"4":
        bus.write_word(P.LCD_DATA, ch)
    assert bus.read_word(P.LCD_STATUS) == P.LCD_BUSY  # mid busy window

    fresh, fresh_bus = roundtrip(lcd, Lcd)
    assert fresh_bus.read_word(P.LCD_STATUS) == P.LCD_BUSY
    fresh.tick(200)
    lcd.tick(200)
    assert fresh_bus.read_word(P.LCD_STATUS) == bus.read_word(P.LCD_STATUS) == 0
    fresh_bus.write_word(P.LCD_DATA, ord("2"))
    bus.write_word(P.LCD_DATA, ord("2"))
    assert fresh.display_bytes == lcd.display_bytes == b"42"


def test_ultrasonic_mid_echo_pulse(bus):
    ultra = Ultrasonic(lambda index: 500)
    ultra.attach(bus)
    bus.write_word(P.ULTRA_TRIG, 1)
    ultra.tick(300)  # inside the 250..750 echo-high window
    assert bus.read_word(P.ULTRA_ECHO) == 1

    fresh, fresh_bus = roundtrip(ultra, lambda: Ultrasonic(lambda index: 500))
    assert fresh.trigger_count == 1
    assert fresh_bus.read_word(P.ULTRA_ECHO) == 1  # still mid-pulse
    fresh.tick(600)
    ultra.tick(600)
    assert fresh_bus.read_word(P.ULTRA_ECHO) == bus.read_word(P.ULTRA_ECHO) == 0


def test_harness_latches_survive(bus):
    harness = HarnessPorts()
    harness.attach(bus)
    bus.write_word(P.DONE_PORT, 0x77)
    bus.write_word(P.VIOLATION_PORT, 3)

    fresh, fresh_bus = roundtrip(harness, HarnessPorts)
    assert fresh.done and fresh.done_value == 0x77
    assert fresh.violation_writes == harness.violation_writes
    fresh_bus.write_word(P.VIOLATION_PORT, 5)
    assert [value for _, value in fresh.violation_writes] == [3, 5]


@pytest.mark.parametrize("make", [
    Gpio, Timer, Adc, Uart, Lcd, Ultrasonic, HarnessPorts,
], ids=lambda cls: cls.__name__.lower())
def test_pristine_round_trip_is_identity(make, bus):
    """Snapshot of a never-touched peripheral restores to itself."""
    peripheral = make()
    peripheral.attach(bus)
    fresh, _ = roundtrip(peripheral, make)
    assert fresh.snapshot_state() == peripheral.snapshot_state()
