"""CFG recovery, CFI policy compilation, and trace attestation.

The acceptance spine:

* the binary-derived policy matches the instrumenter/listing-derived
  view (return sites + indirect targets) on every Table IV app;
* trace replay accepts every benign Table IV run (both variants) and
  rejects every attack scenario (rop, indirect, injection, isr);
* a trace-verifying fleet rollout quarantines a device with a forged
  trace while leaving the healthy fleet active.
"""

import json

import pytest

from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.cfg import (
    BranchTraceRecorder,
    CfiPolicy,
    TraceReplayer,
    TransferKind,
    diff_against_listing,
    fold_edges,
    policy_for_program,
    recover_cfg,
    replay_trace,
)
from repro.device import build_device
from repro.fleet import CampaignConfig, FleetSimulation, Lifecycle


@pytest.fixture(scope="module")
def app_cfgs(app_builds):
    """{name: (variant, build, RecoveredCfg, CfiPolicy)} for both variants."""
    out = {}
    for name, (original, eilid) in app_builds.items():
        entries = []
        for variant, build in (("original", original), ("eilid", eilid.final)):
            cfg = recover_cfg(build.program)
            policy = policy_for_program(build.program)
            entries.append((variant, build, cfg, policy))
        out[name] = entries
    return out


# ---- recovery ---------------------------------------------------------------


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
class TestRecovery:
    def test_sweep_is_clean(self, name, app_cfgs):
        for _variant, _build, cfg, _policy in app_cfgs[name]:
            assert cfg.undecodable == (), \
                f"non-instruction words in executable sections: {cfg.undecodable}"

    def test_entry_and_main_are_functions(self, name, app_cfgs):
        for _variant, build, cfg, _policy in app_cfgs[name]:
            assert cfg.entry == build.program.entry
            names = {f.name for f in cfg.functions.values()}
            assert "__start" in names and "main" in names

    def test_blocks_partition_instructions(self, name, app_cfgs):
        for _variant, _build, cfg, _policy in app_cfgs[name]:
            covered = set()
            for func in cfg.functions.values():
                for block in func.blocks.values():
                    for decoded in block.insns:
                        assert decoded.addr not in covered, \
                            f"instruction 0x{decoded.addr:04x} in two blocks"
                        covered.add(decoded.addr)
            assert covered == set(cfg.insns)

    def test_block_successors_are_block_starts(self, name, app_cfgs):
        for _variant, _build, cfg, _policy in app_cfgs[name]:
            starts = {b.start for f in cfg.functions.values()
                      for b in f.blocks.values()}
            for func in cfg.functions.values():
                for block in func.blocks.values():
                    for succ in block.successors:
                        assert succ in starts or succ in cfg.insns

    def test_call_graph_reaches_main(self, name, app_cfgs):
        for _variant, _build, cfg, _policy in app_cfgs[name]:
            assert "main" in cfg.call_graph["__start"]

    def test_eilid_calls_the_shims(self, name, app_cfgs):
        _variant, _build, cfg, _policy = app_cfgs[name][1]
        callees = set()
        for targets in cfg.call_graph.values():
            callees |= targets
        assert any(c.startswith("NS_EILID_") for c in callees)


# ---- policy compilation + cross-check (acceptance criterion) ---------------


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
class TestPolicyCrossCheck:
    def test_policy_matches_listing_view(self, name, app_cfgs):
        """Binary-derived == listing-derived, for BOTH build variants."""
        for variant, build, _cfg, policy in app_cfgs[name]:
            divergences = diff_against_listing(policy, build.listing)
            assert divergences == [], f"{name}/{variant}: {divergences}"

    def test_indirect_targets_match_instrumenter_report(self, name,
                                                        app_builds, app_cfgs):
        """The CFG's registration scan recovers exactly the table the
        instrumenter registered (paper P3)."""
        _original, eilid = app_builds[name]
        _variant, _build, cfg, policy = app_cfgs[name][1]
        report = eilid.report
        if not report.table_registrations:
            assert not cfg.indirect_targets_registered
            return
        registered = {addr for _fname, addr in report.functions}
        assert cfg.indirect_targets_registered
        assert set(policy.indirect_targets) == registered

    def test_return_sites_cover_instrumented_calls(self, name, app_cfgs):
        _variant, _build, cfg, policy = app_cfgs[name][1]
        assert len(policy.return_sites) == len(
            {s.return_addr for s in cfg.call_sites})
        assert policy.return_sites


class TestPolicyArtifact:
    def test_json_roundtrip_preserves_digest(self, app_cfgs):
        _variant, _build, _cfg, policy = app_cfgs["fire_sensor"][1]
        clone = CfiPolicy.from_json(policy.to_json())
        assert clone.digest == policy.digest
        assert clone.return_sites == policy.return_sites
        assert clone.indirect_targets == policy.indirect_targets
        assert clone.transfers == policy.transfers

    def test_digest_is_stable_and_content_bound(self, app_cfgs):
        _variant, _build, _cfg, p_fire = app_cfgs["fire_sensor"][1]
        _variant, _build, _cfg, p_light = app_cfgs["light_sensor"][1]
        assert p_fire.digest == p_fire.digest
        assert p_fire.digest != p_light.digest

    def test_format_guard(self):
        with pytest.raises(ValueError):
            CfiPolicy.from_dict({"format": "something-else"})


# ---- trace recording --------------------------------------------------------


class TestTraceRecorder:
    def test_ring_bounds_and_drop_counter(self):
        recorder = BranchTraceRecorder(capacity=8)
        for index in range(20):
            recorder.record_edge(index, index + 1, "jump")
        assert len(recorder) == 8
        assert recorder.dropped == 12
        assert recorder.total == 20
        snapshot = recorder.snapshot()
        assert snapshot.windowed and snapshot.consistent()
        assert [src for src, _dst, _k in snapshot.edges] == list(range(12, 20))

    def test_snapshot_chain_verifies_from_prefix(self):
        recorder = BranchTraceRecorder(capacity=4)
        for index in range(9):
            recorder.record_edge(index, index * 2, "call")
        snapshot = recorder.snapshot()
        assert fold_edges(snapshot.prefix_digest, snapshot.edges) == snapshot.digest

    def test_injected_edge_breaks_the_chain(self):
        recorder = BranchTraceRecorder(capacity=16)
        recorder.record_edge(0xE000, 0xE010, "call")
        recorder.inject_edge(0xE010, 0xE020, "jump")
        assert not recorder.snapshot().consistent()

    def test_tampered_window_breaks_the_chain(self):
        recorder = BranchTraceRecorder(capacity=16)
        for index in range(5):
            recorder.record_edge(index, index + 2, "jump")
        snapshot = recorder.snapshot()
        edges = list(snapshot.edges)
        edges[2] = (edges[2][0], 0xDEAD, edges[2][2])
        assert fold_edges(snapshot.prefix_digest, tuple(edges)) != snapshot.digest

    def test_device_records_taken_edges_only(self, app_builds):
        original, _eilid = app_builds["light_sensor"]
        device = build_device(original.program, security="none",
                              peripherals=APPS["light_sensor"].make_peripherals())
        result = device.run(max_cycles=50_000)
        snapshot = device.trace_snapshot()
        assert snapshot.total > 0
        assert snapshot.total < result.steps  # straight-line steps are free
        assert snapshot.consistent()


# ---- trace replay -----------------------------------------------------------


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_benign_runs_replay_ok(name, app_runs, app_builds):
    """Acceptance: replay accepts all benign Table IV runs."""
    (dev0, res0), (dev1, res1) = app_runs[name]
    original, eilid = app_builds[name]
    for device, result, build in ((dev0, res0, original),
                                  (dev1, res1, eilid.final)):
        assert result.done
        policy = policy_for_program(build.program)
        verdict = replay_trace(policy, device.trace_snapshot())
        assert verdict.ok, f"{name}: {verdict}"


ATTACKS = ("return_address_smash", "pointer_hijack", "code_injection",
           "interrupt_context_tamper")


@pytest.mark.parametrize("attack_name", ATTACKS)
def test_attack_traces_are_rejected(attack_name):
    """Acceptance: replay rejects rop, indirect, injection and isr.

    Run against the undefended baseline so the hijack actually executes
    -- the verifier's replay is then the *only* line of defence, and it
    must fire.
    """
    import repro.attacks as attacks

    result = getattr(attacks, attack_name)("none")
    assert result.outcome is attacks.AttackOutcome.HIJACKED
    policy = policy_for_program(result.device.program)
    verdict = replay_trace(policy, result.device.trace_snapshot())
    assert not verdict.ok, f"{attack_name}: hijack trace replayed clean"
    assert verdict.failed_edge is not None


def test_eilid_defended_attack_leaves_clean_trace_and_violation_log():
    """On an EILID device the shadow-stack check fires *before* the
    corrupted address ever becomes control flow, so the trace replays
    clean -- the evidence lives in the violation log instead.  Trace
    replay and device-side enforcement are complementary, not
    redundant."""
    import repro.attacks as attacks

    result = attacks.return_address_smash("eilid")
    assert result.outcome is attacks.AttackOutcome.RESET
    policy = policy_for_program(result.device.program)
    verdict = replay_trace(policy, result.device.trace_snapshot())
    assert verdict.ok
    report = result.device.attestation_report()
    assert report.violation_reasons  # the verifier still sees the attack


def test_bend_to_valid_function_replays_clean_under_table_policy():
    """Function-level forward-edge CFI admits bends to registered
    entries (paper Sec. IV-A); the replayer reproduces that stance."""
    import repro.attacks as attacks

    result = attacks.pointer_bend_to_valid_function("eilid")
    assert result.outcome is attacks.AttackOutcome.ALLOWED
    policy = policy_for_program(result.device.program)
    assert policy.indirect_from_table
    verdict = replay_trace(policy, result.device.trace_snapshot())
    assert verdict.ok


def test_replayer_rejects_fabricated_edges(app_cfgs):
    _variant, _build, cfg, policy = app_cfgs["light_sensor"][1]
    replayer = TraceReplayer(policy)
    # A "jump" from an address that holds no control transfer at all.
    plain = next(a for a, d in sorted(cfg.insns.items())
                 if d.kind is TransferKind.NONE)
    verdict = replayer.replay_edges([(plain, policy.entry, "jump")])
    assert not verdict.ok
    # A direct jump diverted off its encoded target.
    jump = next(d for _a, d in sorted(cfg.insns.items())
                if d.kind is TransferKind.JUMP and d.target is not None)
    verdict = replayer.replay_edges([(jump.addr, (jump.target + 4) & 0xFFFF,
                                      "jump")])
    assert not verdict.ok
    # An interrupt entry into something that is not an IVT handler.
    verdict = replayer.replay_edges([(policy.entry, policy.entry, "irq")])
    assert not verdict.ok


def test_strict_vs_windowed_return_handling(app_cfgs):
    _variant, _build, _cfg, policy = app_cfgs["light_sensor"][1]
    replayer = TraceReplayer(policy)
    site = next(iter(policy.return_sites))
    ret_addr = next(a for a, t in policy.transfers.items() if t.kind == "ret")
    edge = [(ret_addr, site, "ret")]
    assert not replayer.replay_edges(edge, windowed=False).ok
    assert replayer.replay_edges(edge, windowed=True).ok
    # Even windowed, an underflowed return must land on a return site.
    bad = [(ret_addr, policy.entry, "ret")]
    assert not replayer.replay_edges(bad, windowed=True).ok


# ---- device bounds (satellite) ---------------------------------------------


class TestBoundedEvidence:
    def test_device_events_are_bounded(self, app_builds):
        original, _eilid = app_builds["light_sensor"]
        device = build_device(original.program, security="none",
                              max_events=16)
        for _ in range(50):
            device.hard_reset()
        assert len(device.events) == 16
        assert device.events_dropped == 34
        assert device.reset_count == 50

    def test_trace_capacity_is_configurable(self, app_builds):
        original, _eilid = app_builds["light_sensor"]
        device = build_device(original.program, security="none",
                              peripherals=APPS["light_sensor"].make_peripherals(),
                              trace_capacity=32)
        device.run(max_cycles=50_000)
        snapshot = device.trace_snapshot()
        assert len(snapshot.edges) == 32
        assert snapshot.dropped == snapshot.total - 32
        assert snapshot.consistent()

    def test_trace_recording_can_be_disabled(self, app_builds):
        original, _eilid = app_builds["light_sensor"]
        device = build_device(original.program, security="none",
                              peripherals=APPS["light_sensor"].make_peripherals(),
                              trace_capacity=0)
        assert device.trace is None
        assert device.cpu.trace_sink is None  # hot path stays hook-free
        result = device.run(max_cycles=50_000)
        assert result.done
        snapshot = device.trace_snapshot()
        assert snapshot.total == 0 and snapshot.consistent()
        report = device.attestation_report()
        assert report.trace_edges == 0


# ---- fleet integration ------------------------------------------------------


class TestFleetTraceAttestation:
    def test_healthy_fleet_attests_with_trace_verification(self):
        fleet = FleetSimulation(size=8, verify_traces=True)
        fleet.run_all(max_cycles=2_000)
        results = fleet.attest_all()
        assert all(r.ok for r in results.values())

    def test_forged_trace_quarantined_on_attest(self):
        fleet = FleetSimulation(size=6, verify_traces=True)
        fleet.run_all(max_cycles=1_000)
        fleet.forge_trace("dev-00003")
        results = fleet.attest_all()
        assert not results["dev-00003"].ok
        assert results["dev-00003"].detail == "trace-forged"
        assert fleet.registry.get("dev-00003").state is Lifecycle.QUARANTINED
        others = [r for device_id, r in results.items()
                  if device_id != "dev-00003"]
        assert all(r.ok for r in others)

    def test_rollout_quarantines_forged_trace_device(self):
        """Acceptance: a fleet rollout quarantines a forged-trace device."""
        fleet = FleetSimulation(size=30, verify_traces=True)
        fleet.run_all(max_cycles=1_000)
        fleet.forge_trace("dev-00012")
        report = fleet.rollout(version=1, config=CampaignConfig(
            verify_after_wave=True, failure_threshold=0.5))
        assert fleet.registry.get("dev-00012").state is Lifecycle.QUARANTINED
        assert report.failed == 1
        active = [r for r in fleet.registry if r.device_id != "dev-00012"]
        assert all(r.state is Lifecycle.ACTIVE for r in active)
        assert any("verify:trace-forged" in wave.statuses
                   for wave in report.waves)

    def test_trace_check_off_by_default(self):
        fleet = FleetSimulation(size=3)
        fleet.forge_trace("dev-00001")
        results = fleet.attest_all()
        assert all(r.ok for r in results.values())

    def test_stripped_trace_window_is_caught(self):
        """A compromised OS that ships an empty-but-self-consistent
        window (prefix == digest, counters zeroed) must not slip past:
        the MAC'd report's trace_edges/trace_dropped bind the counters."""
        from repro.cfg.trace import TraceSnapshot

        fleet = FleetSimulation(size=3, verify_traces=True)
        fleet.run_all(max_cycles=1_000)
        device = fleet.devices["dev-00001"]
        real = device.trace_snapshot()
        assert real.total > 0
        stripped = TraceSnapshot(edges=(), prefix_digest=real.digest,
                                 digest=real.digest, total=0, dropped=0,
                                 capacity=real.capacity)
        assert stripped.consistent()  # the forgery folds cleanly...
        device.trace_snapshot = lambda: stripped  # agent-side override
        results = fleet.attest_all()
        assert results["dev-00001"].detail == "trace-forged"  # ...but is caught
        assert fleet.registry.get("dev-00001").state is Lifecycle.QUARANTINED

    def test_inflated_drop_counter_is_caught(self):
        """Claiming extra drops would downgrade replay to lenient
        windowed mode; the MAC'd trace_dropped forbids it."""
        from dataclasses import replace

        fleet = FleetSimulation(size=2, verify_traces=True)
        fleet.run_all(max_cycles=1_000)
        device = fleet.devices["dev-00000"]
        real = device.trace_snapshot()
        trimmed = replace(real, edges=real.edges[2:],
                          prefix_digest=fold_edges(real.prefix_digest,
                                                   real.edges[:2]),
                          dropped=real.dropped + 2)
        assert trimmed.consistent()
        device.trace_snapshot = lambda: trimmed
        results = fleet.attest_all()
        assert results["dev-00000"].detail == "trace-forged"


def test_telemetry_totals_survive_event_ring_eviction():
    """Cumulative per-reason totals keep fleet telemetry exact even
    after the device's bounded event ring starts evicting."""
    from repro.eilid.trusted_sw import AttestationReport
    from repro.fleet.protocol import AttestResult
    from repro.fleet.telemetry import FleetTelemetry

    telemetry = FleetTelemetry()

    def heartbeat(count):
        report = AttestationReport(
            firmware_hash="h", firmware_version=0, reset_count=count,
            violation_reasons=("w-xor-x",) * min(count, 4),  # ring-bounded
            cycle=0, violation_count=count,
            violation_totals=(f"w-xor-x={count}",))
        telemetry.record_attest("dev", AttestResult(True, report=report,
                                                    attempts=1))

    for count in (3, 500, 2000):
        heartbeat(count)
    assert telemetry.violations["w-xor-x"] == 2000
    assert telemetry.resets == 2000


# ---- CLI --------------------------------------------------------------------


class TestCfgCli:
    def test_version_flag(self, capsys):
        import repro
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_cfg_build_and_diff(self, capsys):
        from repro.cli import main

        assert main(["cfg", "build", "light_sensor"]) == 0
        out = capsys.readouterr().out
        assert "policy digest:" in out and "main" in out
        assert main(["cfg", "diff", "light_sensor"]) == 0
        assert "matches" in capsys.readouterr().out

    def test_cfg_build_json_is_loadable(self, capsys):
        from repro.cli import main

        assert main(["cfg", "build", "light_sensor", "--json"]) == 0
        policy = CfiPolicy.from_json(capsys.readouterr().out)
        assert policy.return_sites

    def test_cfg_build_reports_registered_call_table(self, capsys):
        # The eilid build carries the EILID call table, so the policy's
        # indirect targets are registered (not a discovery fallback).
        from repro.cli import main

        assert main(["cfg", "build", "fire_sensor"]) == 0
        out = capsys.readouterr().out
        assert "indirect targets registered: True" in out
        assert "EILID call table" in out

        assert main(["cfg", "build", "fire_sensor", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["indirect_targets_registered"] is True
        assert doc["indirect_target_count"] == len(doc["indirect_targets"])
        assert doc["indirect_target_count"] > 0

    def test_cfg_build_reports_unregistered_fallback(self, capsys):
        # An uninstrumented build has no call table: the policy falls
        # back to every discovered entry and must say so loudly.
        from repro.cli import main

        assert main(["cfg", "build", "fire_sensor",
                     "--variant", "original"]) == 0
        out = capsys.readouterr().out
        assert "indirect targets registered: False" in out
        assert "UNREGISTERED fallback" in out

        assert main(["cfg", "build", "fire_sensor",
                     "--variant", "original", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["indirect_targets_registered"] is False
        assert doc["indirect_target_count"] == len(doc["indirect_targets"])

    def test_cfg_verify_trace_exit_codes(self, capsys):
        from repro.cli import main

        assert main(["cfg", "verify-trace", "light_sensor"]) == 0
        assert main(["cfg", "verify-trace", "--attack",
                     "return_address_smash"]) == 2

    def test_cfg_unknown_app_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["cfg", "build", "nonsense"]) == 1
