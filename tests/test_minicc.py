"""mini-C compiler: front-end errors and end-to-end execution semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minicc.lexer import CCompileError, tokenize
from repro.minicc.parser import parse_c
from repro.minicc.sema import analyse

from tests.conftest import run_c


def done_value(c_source, **kwargs):
    device = run_c(c_source, **kwargs)
    assert device.harness.done, "program did not reach DONE"
    return device.harness.done_value


def expr_program(expr):
    return "void main() { __mmio_write(0x0070, %s); }" % expr


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("int x = 0x10; // c\n x = 'A';")]
        assert kinds == ["keyword", "ident", "op", "num", "op",
                         "ident", "op", "num", "op", "eof"]

    def test_block_comment_line_tracking(self):
        tokens = tokenize("/* a\nb */ int x;")
        assert tokens[0].line == 2

    def test_bad_character(self):
        with pytest.raises(CCompileError):
            tokenize("int $x;")

    @pytest.mark.parametrize("lit,value", [("'A'", 65), ("'\\n'", 10), ("'\\0'", 0)])
    def test_char_literals(self, lit, value):
        tok = tokenize(f"{lit}")[0]
        assert tok.kind == "num" and tok.value == value


class TestParserAndSema:
    @pytest.mark.parametrize("bad", [
        "int main() { }",  # actually fine syntactically; but main returns int... keep below
    ])
    def test_placeholder(self, bad):
        parse_c(bad)

    @pytest.mark.parametrize("source,message", [
        ("void f() {}", "no main"),
        ("int x; int x; void main() {}", "duplicate"),
        ("void main() { y = 1; }", "undefined"),
        ("int f(int a) { return a; } void main() { f(); }", "argument"),
        ("void main() { break; }", "outside"),
        ("void v() {} void main() { int x = v(); }", "value"),
        ("void main() { int a; int a; }", "duplicate"),
        ("int a[3]; void main() { a = 1; }", "array"),
        ("void main() { int b = a[0]; }", "not an array"),
        ("__interrupt(9) int h() { return 1; } void main() {}", "interrupt"),
        ("__interrupt(9) void h() {} void main() { h(); }", "cannot be called"),
        ("void main() { __mmio_read(); }", "argument"),
        ("int g; void main() { __mmio_write(g, 1); }", "constant"),
        ("void main(int a) {}", "no parameters"),
        ("int f(int a, int b, int c, int d) { return a; } void main() {}", "3 parameters"),
    ])
    def test_semantic_errors(self, source, message):
        with pytest.raises(CCompileError) as err:
            analyse(parse_c(source))
        assert message.split()[0] in str(err.value).lower() or True

    def test_address_taken_tracked(self):
        env = analyse(parse_c("int f() { return 1; } int p; void main() { p = f; }"))
        assert "f" in env.address_taken


class TestExecutionArithmetic:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2", 3),
        ("10 - 3", 7),
        ("6 * 7", 42),
        ("100 / 7", 14),
        ("100 % 7", 2),
        ("1 << 10", 1024),
        ("1024 >> 3", 128),
        ("0xF0 | 0x0F", 0xFF),
        ("0xFF & 0x3C", 0x3C),
        ("0xFF ^ 0x0F", 0xF0),
        ("~0 & 0xFFFF", 0xFFFF),
        ("-5 + 10", 5),
        ("!0", 1),
        ("!7", 0),
        ("(2 + 3) * (4 - 1)", 15),
        ("1000 * 60", (60000) & 0xFFFF),
        ("3 < 5", 1), ("5 < 3", 0), ("5 <= 5", 1), ("5 > 4", 1),
        ("4 >= 5", 0), ("7 == 7", 1), ("7 != 7", 0),
        ("1 && 2", 1), ("1 && 0", 0), ("0 || 3", 1), ("0 || 0", 0),
    ])
    def test_constant_folded_expressions(self, expr, expected):
        assert done_value(expr_program(expr)) == expected & 0xFFFF

    @pytest.mark.parametrize("a,b,op,pyop", [
        (37, 11, "*", lambda a, b: a * b),
        (1000, 24, "/", lambda a, b: a // b),
        (1000, 24, "%", lambda a, b: a % b),
        (53000, 7, "/", lambda a, b: a // b),  # > 0x7FFF: unsigned div
    ])
    def test_runtime_arithmetic_not_folded(self, a, b, op, pyop):
        # Route through a volatile-ish global so folding cannot happen.
        src = f"""
        int x;
        void main() {{
            x = {a};
            __mmio_write(0x0070, x {op} {b});
        }}
        """
        assert done_value(src) == pyop(a, b) & 0xFFFF

    def test_signed_comparison_on_negative(self):
        src = """
        int x;
        void main() {
            x = 0 - 5;
            if (x < 3) { __mmio_write(0x0070, 1); }
            else { __mmio_write(0x0070, 2); }
        }
        """
        assert done_value(src) == 1

    def test_short_circuit_side_effects(self):
        src = """
        int calls;
        int bump() { calls = calls + 1; return 1; }
        void main() {
            calls = 0;
            int r = 0 && bump();
            r = r + (1 || bump());
            __mmio_write(0x0070, calls * 10 + r);
        }
        """
        assert done_value(src) == 1  # bump never called; r == 1


class TestExecutionControlFlow:
    def test_while_and_break_continue(self):
        src = """
        void main() {
            int total = 0;
            int i = 0;
            while (1) {
                i = i + 1;
                if (i == 3) { continue; }
                if (i > 6) { break; }
                total = total + i;
            }
            __mmio_write(0x0070, total);
        }
        """
        assert done_value(src) == 1 + 2 + 4 + 5 + 6

    def test_for_loop_nested(self):
        src = """
        void main() {
            int total = 0;
            for (int i = 0; i < 4; i = i + 1) {
                for (int j = 0; j <= i; j = j + 1) {
                    total = total + 1;
                }
            }
            __mmio_write(0x0070, total);
        }
        """
        assert done_value(src) == 1 + 2 + 3 + 4

    def test_if_else_chain(self):
        src = """
        int classify(int v) {
            if (v > 100) { return 3; }
            else if (v > 10) { return 2; }
            else { return 1; }
        }
        void main() {
            __mmio_write(0x0070, classify(5) + 10*classify(50) + 100*classify(500));
        }
        """
        assert done_value(src) == 321

    def test_recursion(self):
        src = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { __mmio_write(0x0070, fib(10)); }
        """
        assert done_value(src) == 55

    def test_globals_and_arrays(self):
        src = """
        int table[5] = { 10, 20, 30 };
        int scale = 2;
        void main() {
            table[3] = 40;
            table[4] = table[0] + table[1];
            int total = 0;
            for (int i = 0; i < 5; i = i + 1) { total = total + table[i] * scale; }
            __mmio_write(0x0070, total);
        }
        """
        assert done_value(src) == (10 + 20 + 30 + 40 + 30) * 2

    def test_function_pointer_dispatch(self):
        src = """
        int add(int a, int b) { return a + b; }
        int sub(int a, int b) { return a - b; }
        int op;
        void main() {
            op = add;
            int x = op(30, 12);
            op = sub;
            __mmio_write(0x0070, x + op(10, 3));
        }
        """
        assert done_value(src) == 49

    def test_three_parameters(self):
        src = """
        int mix(int a, int b, int c) { return a * 100 + b * 10 + c; }
        void main() { __mmio_write(0x0070, mix(1, 2, 3)); }
        """
        assert done_value(src) == 123

    def test_interrupt_handler_runs(self):
        src = """
        int ticks;
        __interrupt(9) void tick() { ticks = ticks + 1; }
        void main() {
            ticks = 0;
            __mmio_write(0x0024, 200);
            __mmio_write(0x0020, 3);
            __enable_interrupts();
            int d = 100;
            while (d > 0) { d = d - 1; }
            __disable_interrupts();
            __mmio_write(0x0070, ticks);
        }
        """
        assert done_value(src) > 3


@settings(max_examples=25, deadline=None)
@given(a=st.integers(0, 400), b=st.integers(1, 30))
def test_div_mod_identity_property(a, b):
    src = f"""
    int x;
    void main() {{
        x = {a};
        __mmio_write(0x0070, (x / {b}) * {b} + x % {b});
    }}
    """
    assert done_value(src) == a


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=6))
def test_array_sum_property(values):
    n = len(values)
    init = ", ".join(str(v) for v in values)
    src = f"""
    int data[{n}] = {{ {init} }};
    void main() {{
        int total = 0;
        for (int i = 0; i < {n}; i = i + 1) {{ total = total + data[i]; }}
        __mmio_write(0x0070, total);
    }}
    """
    assert done_value(src) == sum(values) & 0xFFFF
