"""Differential tests: snapshot/restore vs. uninterrupted execution.

A :meth:`Device.snapshot` / :meth:`Device.restore` cycle must be
architecturally invisible: a device that is periodically checkpointed
through the JSON wire form and resumed on a *fresh* device must produce
bit-identical StepRecords, monitor verdicts, cycle totals, trace
digests and attestation evidence against a reference device that never
stopped.  These tests run that lockstep for every Table IV application
and every control-flow attack, then check the restore-side decode-cache
invalidation contract against self-modifying code and the wire-form
rejection rules (codec / program / security mismatches).
"""

import json

import pytest

from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.attacks import (
    code_injection,
    interrupt_context_tamper,
    pointer_hijack,
    return_address_smash,
)
from repro.attacks.victims import build_victim
from repro.device import build_device
from repro.snapshot import DeviceSnapshot, SnapshotError
from repro.toolchain import link, parse_source

# Enough steps to cover startup + main loop; each run round-trips the
# device through the wire form several times mid-flight.
LOCKSTEP_STEPS = 12_000
CHECKPOINT_EVERY = 3_000
CONTINUATION_STEPS = 200

ATTACKS = {
    "code_injection": code_injection,
    "return_address_smash": return_address_smash,
    "pointer_hijack": pointer_hijack,
    "interrupt_context_tamper": interrupt_context_tamper,
}


def checkpointed_lockstep(program, security, make_peripherals,
                          max_steps=LOCKSTEP_STEPS,
                          checkpoint_every=CHECKPOINT_EVERY):
    """Step a continuous and a checkpointed device in lockstep.

    Every ``checkpoint_every`` steps the checkpointed device is
    serialised to JSON, discarded, and replaced by a fresh build that
    restores the snapshot -- every StepRecord (kind, PCs, cycles,
    instruction, access stream) and monitor verdict must still match.
    """
    reference = build_device(program, security=security,
                             peripherals=make_peripherals())
    live = build_device(program, security=security,
                        peripherals=make_peripherals())
    restores = 0
    for step in range(max_steps):
        if step and step % checkpoint_every == 0:
            wire = live.snapshot().to_json()
            live = build_device(program, security=security,
                                peripherals=make_peripherals())
            live.restore(DeviceSnapshot.from_json(wire))
            restores += 1
        record_r, violation_r = reference.step()
        record_l, violation_l = live.step()
        assert record_r == record_l, f"step {step} diverged"
        assert violation_r == violation_l, f"step {step} verdict diverged"
        if reference.harness.done:
            break
    assert restores > 0 or reference.harness.done
    assert reference.cycle == live.cycle
    assert reference.cpu.total_cycles == live.cpu.total_cycles
    assert reference.cpu.instruction_count == live.cpu.instruction_count
    assert reference.cpu.regs == live.cpu.regs
    assert reference.harness.done == live.harness.done
    assert reference.harness.done_value == live.harness.done_value
    assert reference.reset_count == live.reset_count
    assert reference.trace_snapshot() == live.trace_snapshot()
    assert reference.firmware_measurement() == live.firmware_measurement()
    assert reference.attestation_report() == live.attestation_report()
    return reference, live


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_table4_app_original_is_snapshot_invariant(name, app_builds):
    spec = APPS[name]
    original, _ = app_builds[name]
    checkpointed_lockstep(original.program, "none", spec.make_peripherals)


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_table4_app_eilid_is_snapshot_invariant(name, app_builds):
    spec = APPS[name]
    _, eilid = app_builds[name]
    checkpointed_lockstep(eilid.final.program, "eilid",
                          spec.make_peripherals)


# ---- attack traces -----------------------------------------------------------


@pytest.mark.parametrize("attack_name", sorted(ATTACKS))
@pytest.mark.parametrize("security", ["none", "eilid"])
def test_attack_state_survives_snapshot(attack_name, security):
    """Restore an attacked device -- violations, trace evidence and all
    -- into a fresh victim and keep stepping both in lockstep."""
    result = ATTACKS[attack_name](security)
    attacked = result.device
    wire = attacked.snapshot().to_json()

    fresh, _ = build_victim(security)
    fresh.restore(DeviceSnapshot.from_json(wire))

    # Re-snapshotting the restored device reproduces the wire form:
    # nothing was dropped, defaulted or replayed on the way through.
    assert fresh.snapshot().to_dict() == json.loads(wire)
    assert fresh.cycle == attacked.cycle
    assert fresh.reset_count == attacked.reset_count
    assert fresh.violation_count == attacked.violation_count
    assert fresh.cpu.regs == attacked.cpu.regs
    assert fresh.trace_snapshot() == attacked.trace_snapshot()
    assert fresh.attestation_report() == attacked.attestation_report()

    for step in range(CONTINUATION_STEPS):
        record_a, violation_a = attacked.step()
        record_f, violation_f = fresh.step()
        assert record_a == record_f, f"post-restore step {step} diverged"
        assert violation_a == violation_f


# ---- self-modifying code vs. the decode cache --------------------------------


_SMC_SOURCE = """    .text
__start:
    mov #0x0a00, r1
target:
    mov #0x1111, r11
end:
    jmp end
    .vector 15, __start
"""


def _smc_device():
    program = link([parse_source(_SMC_SOURCE, "smc.s")], name="smc")
    device = build_device(program, security="none")
    device.run_steps(2)  # execute `target`, warming its decode-cache entry
    assert device.cpu.get_reg(11) == 0x1111
    return device, program


def test_restore_after_smc_write_drops_stale_decodes():
    """A snapshot taken after self-modifying code overwrote an already
    decoded instruction must not resume through the stale decode."""
    device_a, program = _smc_device()
    target = program.symbols["target"]
    assert target in device_a.cpu._dcache

    # Self-modifying write: patch the immediate word of the decoded
    # instruction, then point the PC back at it.
    device_a.bus.poke_word(target + 2, 0x2222)
    device_a.cpu.set_reg(0, target)
    wire = device_a.snapshot().to_json()

    # The restore target has the *stale* instruction warm in its cache.
    device_b, _ = _smc_device()
    assert target in device_b.cpu._dcache
    device_b.restore(DeviceSnapshot.from_json(wire))
    assert target not in device_b.cpu._dcache  # restore invalidated it

    record_a, _ = device_a.step()
    record_b, _ = device_b.step()
    assert record_a == record_b
    assert record_b.insn.render() == "mov #0x2222, r11"
    assert device_b.cpu.get_reg(11) == 0x2222


# ---- wire-form rejection rules -----------------------------------------------


def _light_sensor_device(app_builds, security="none"):
    original, _ = app_builds["light_sensor"]
    spec = APPS["light_sensor"]
    return build_device(original.program, security=security,
                        peripherals=spec.make_peripherals())


def test_codec_version_mismatch_is_rejected(app_builds):
    device = _light_sensor_device(app_builds)
    doc = device.snapshot().to_dict()
    doc["codec"] = 999
    with pytest.raises(SnapshotError, match="codec"):
        DeviceSnapshot.from_dict(doc)
    with pytest.raises(SnapshotError, match="codec"):
        device.restore(doc)


def test_program_mismatch_is_rejected(app_builds):
    device = _light_sensor_device(app_builds)
    other_build, _ = app_builds["fire_sensor"]
    other = build_device(other_build.program, security="none",
                         peripherals=APPS["fire_sensor"].make_peripherals())
    with pytest.raises(SnapshotError, match="program"):
        other.restore(device.snapshot())


def test_security_mismatch_is_rejected(app_builds):
    device = _light_sensor_device(app_builds, security="none")
    hardened = _light_sensor_device(app_builds, security="casu")
    with pytest.raises(SnapshotError, match="security"):
        hardened.restore(device.snapshot())


def test_json_round_trip_is_lossless(app_builds):
    device = _light_sensor_device(app_builds)
    device.run_steps(500)
    snapshot = device.snapshot()
    doc = snapshot.to_dict()
    assert DeviceSnapshot.from_json(snapshot.to_json()).to_dict() == doc
    assert doc["codec"] == 1
    assert doc["program"] == device.program.name
    # Wire form is pure JSON: a strict dump round-trips losslessly.
    assert json.loads(json.dumps(doc)) == doc
