"""Model checker, monitor property FSMs, runtime oracles."""


from repro.verification import (
    ControlFlowOracle,
    Fsm,
    Transition,
    check_invariant,
    check_transition_property,
    reachable_states,
)
from repro.verification.properties import (
    check_all,
    pmem_guard_fsm,
    pmem_guard_fsm_buggy,
    rom_atomicity_fsm,
    PMEM_GUARD_PROPERTIES,
)


class TestModelChecker:
    def test_reachability(self):
        fsm = Fsm(
            name="toy",
            states=("A", "B", "C"),
            inputs=("go",),
            initial="A",
            transitions=[
                Transition("A", lambda i: i["go"], "B"),
                Transition("B", lambda i: i["go"], "C"),
            ],
        )
        assert reachable_states(fsm) == {"A", "B", "C"}

    def test_unreachable_state_not_explored(self):
        fsm = Fsm(
            name="toy",
            states=("A", "B", "DEAD"),
            inputs=("go",),
            initial="A",
            transitions=[Transition("A", lambda i: i["go"], "B")],
        )
        assert "DEAD" not in reachable_states(fsm)

    def test_invariant_holds(self):
        fsm = Fsm("toy", ("A",), ("x",), "A", [])
        assert check_invariant(fsm, lambda s: s == "A").holds

    def test_invariant_counterexample_path(self):
        fsm = Fsm(
            "toy",
            ("A", "BAD"),
            ("go",),
            "A",
            [Transition("A", lambda i: i["go"], "BAD")],
        )
        result = check_invariant(fsm, lambda s: s != "BAD")
        assert not result.holds
        states = [s for s, _ in result.counterexample]
        assert states[0] == "A" and states[-1] == "BAD"

    def test_transition_property_counterexample(self):
        fsm = Fsm(
            "toy",
            ("A", "B"),
            ("go",),
            "A",
            [Transition("A", lambda i: i["go"], "B")],
        )
        result = check_transition_property(
            fsm, lambda s, i, n: not (s == "A" and i["go"]) or n == "A"
        )
        assert not result.holds

    def test_first_matching_transition_wins(self):
        fsm = Fsm(
            "toy",
            ("A", "B", "C"),
            ("go",),
            "A",
            [
                Transition("A", lambda i: i["go"], "B"),
                Transition("A", lambda i: i["go"], "C"),
            ],
        )
        assert fsm.step("A", {"go": True}) == "B"

    def test_no_match_self_loops(self):
        fsm = Fsm("toy", ("A", "B"), ("go",), "A",
                  [Transition("A", lambda i: i["go"], "B")])
        assert fsm.step("A", {"go": False}) == "A"


class TestMonitorProperties:
    def test_all_monitor_properties_hold(self):
        results = check_all()
        assert len(results) >= 12
        failing = [r for r in results if not r.holds]
        assert not failing, "\n".join(str(r) for r in failing)

    def test_buggy_mutant_caught(self):
        buggy = pmem_guard_fsm_buggy()
        result = check_transition_property(
            buggy, PMEM_GUARD_PROPERTIES[0].predicate, "mutant"
        )
        assert not result.holds
        # The counterexample is exactly the missed case: a PMEM write
        # from ROM without an open update session.
        _state, inputs = result.counterexample[-1]
        assert inputs["pmem_write"] and inputs["pc_in_rom"] and not inputs["update_open"]

    def test_rom_atomicity_run_trace(self):
        fsm = rom_atomicity_fsm()
        benign = [
            {"next_in_rom": True, "at_entry": True, "in_exit": False, "irq": False},
            {"next_in_rom": True, "at_entry": False, "in_exit": False, "irq": False},
            {"next_in_rom": False, "at_entry": False, "in_exit": True, "irq": False},
        ]
        assert fsm.run(benign) == ["OK", "IN_ROM", "IN_ROM", "OK"]

    def test_rom_atomicity_attack_trace(self):
        fsm = rom_atomicity_fsm()
        attack = [
            {"next_in_rom": True, "at_entry": False, "in_exit": False, "irq": False},
        ]
        assert fsm.run(attack)[-1] == "VIOL"

    def test_fsm_mirrors_concrete_monitor(self):
        """Abstract FSM and concrete sub-monitor agree on a scenario."""
        from repro.casu.monitor import PmemGuardMonitor
        from repro.cpu.core import StepKind, StepRecord
        from repro.memory.bus import Access, AccessKind
        from repro.memory.map import MemoryLayout

        layout = MemoryLayout.default()
        concrete = PmemGuardMonitor()
        abstract = pmem_guard_fsm()

        for pc, update_open in [(0xE010, False), (layout.secure_rom.start, False),
                                (layout.secure_rom.start, True), (0xE010, True)]:
            concrete.update_session_open = update_open
            record = StepRecord(
                kind=StepKind.INSTRUCTION, pc=pc, next_pc=pc + 2, cycles=1,
                accesses=[Access(AccessKind.WRITE, 0xE100, 1, 2, pc, prev=0)],
            )
            concrete_violates = concrete.check(record, layout) is not None
            abstract_next = abstract.step("OK", {
                "pmem_write": True,
                "pc_in_rom": layout.in_secure_rom(pc),
                "update_open": update_open,
            })
            assert concrete_violates == (abstract_next == "VIOL"), (pc, update_open)


class TestOracles:
    def test_benign_eilid_app_is_clean(self, app_builds):
        from repro.apps.registry import APPS
        from repro.device import build_device

        _original, eilid = app_builds["fire_sensor"]
        spec = APPS["fire_sensor"]
        device = build_device(eilid.final.program, security="eilid",
                              peripherals=spec.make_peripherals())
        oracle = ControlFlowOracle()
        result = device.run(observer=oracle.observe)
        assert result.done
        assert oracle.clean
        assert oracle.returns_checked > 100
        assert oracle.retis_checked > 10

    def test_attacked_baseline_detected_by_oracle(self):
        from repro.attacks.harness import AttackHarness

        harness = AttackHarness("none")
        oracle = ControlFlowOracle()
        harness.device.run(
            break_at={harness.symbol("process")},
            stop_on_done=False,
            observer=oracle.observe,
        )
        sp = harness.device.cpu.sp
        harness.device.bus.poke_word(sp, harness.symbol("unlock"))
        harness.device.run(max_cycles=50_000, observer=oracle.observe)
        assert not oracle.clean
        deviation = oracle.deviations[0]
        assert deviation.kind == "return"
        assert deviation.actual == harness.symbol("unlock")

    def test_attacked_eilid_resets_with_no_oracle_deviation(self):
        """EILID is preventive: the device resets *before* the corrupted
        return executes, so the oracle never sees a bad transfer."""
        from repro.attacks.harness import AttackHarness

        harness = AttackHarness("eilid")
        oracle = ControlFlowOracle()
        harness.device.run(
            break_at={harness.symbol("process")},
            stop_on_done=False,
            observer=oracle.observe,
        )
        sp = harness.device.cpu.sp
        harness.device.bus.poke_word(sp, harness.symbol("unlock"))
        result = harness.device.run(max_cycles=50_000, observer=oracle.observe)
        assert result.violations
        assert oracle.clean
