"""Table IV applications: correctness, equivalence, overhead bands.

The reproduction target is the *shape* of Table IV (see EXPERIMENTS.md):
every app runs to completion under EILID with zero violations and
byte-identical observable output; run-time overhead stays within the
paper's band (2-15%) averaging ~7%; binary growth stays within ~4-25%
averaging ~11%; the per-app ordering of the extremes is preserved.
"""

import pytest

from repro.apps.registry import TABLE_IV_ORDER
from repro.eval.paper_data import PAPER_TABLE4


def output_events(device):
    events = []
    for peripheral in device.peripherals.values():
        events.extend(peripheral.events)
    events.sort(key=lambda e: (e.cycle, e.port))
    return [(e.port, e.value) for e in events if e.port != "harness.done"]


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
class TestPerApp:
    def test_original_completes(self, name, app_runs):
        (_dev0, res0), _ = app_runs[name]
        assert res0.done

    def test_eilid_completes_without_violation(self, name, app_runs):
        _, (_dev1, res1) = app_runs[name]
        assert res1.done
        assert not res1.violations

    def test_same_done_value(self, name, app_runs):
        (_d0, res0), (_d1, res1) = app_runs[name]
        assert res0.done_value == res1.done_value

    def test_observable_outputs_identical(self, name, app_runs):
        (dev0, _), (dev1, _) = app_runs[name]
        assert output_events(dev0) == output_events(dev1)

    def test_instrumented_is_slower(self, name, app_runs):
        (_d0, res0), (_d1, res1) = app_runs[name]
        assert res1.cycles > res0.cycles

    def test_runtime_overhead_band(self, name, app_runs):
        (_d0, res0), (_d1, res1) = app_runs[name]
        overhead = 100.0 * (res1.cycles - res0.cycles) / res0.cycles
        assert 1.0 < overhead < 20.0, f"{name}: {overhead:.2f}%"

    def test_size_overhead_band(self, name, app_builds):
        original, eilid = app_builds[name]
        overhead = 100.0 * (eilid.final.app_code_bytes - original.app_code_bytes) \
            / original.app_code_bytes
        assert 3.0 < overhead < 30.0, f"{name}: {overhead:.2f}%"

    def test_binary_sizes_in_paper_scale(self, name, app_builds):
        original, _ = app_builds[name]
        # The paper's apps are 233-604 bytes; ours use a stack-machine
        # codegen, so allow the same order of magnitude.
        assert 150 <= original.app_code_bytes <= 900

    def test_convergence_in_three_builds(self, name, app_builds):
        _, eilid = app_builds[name]
        assert eilid.build_count == 3 and eilid.converged


class TestAggregates:
    def test_average_runtime_overhead_near_paper(self, app_runs):
        overheads = []
        for name in TABLE_IV_ORDER:
            (_d0, res0), (_d1, res1) = app_runs[name]
            overheads.append(100.0 * (res1.cycles - res0.cycles) / res0.cycles)
        average = sum(overheads) / len(overheads)
        assert 5.0 < average < 10.0  # paper: 7.35%

    def test_average_size_overhead_near_paper(self, app_builds):
        overheads = []
        for name in TABLE_IV_ORDER:
            original, eilid = app_builds[name]
            overheads.append(
                100.0 * (eilid.final.app_code_bytes - original.app_code_bytes)
                / original.app_code_bytes
            )
        average = sum(overheads) / len(overheads)
        assert 7.0 < average < 16.0  # paper: 10.78%

    def test_extremes_ordering_matches_paper(self, app_runs):
        """Fire Sensor is the paper's worst runtime overhead, Lcd Sensor
        the best; the reproduction preserves both extremes."""
        overheads = {}
        for name in TABLE_IV_ORDER:
            (_d0, res0), (_d1, res1) = app_runs[name]
            overheads[name] = (res1.cycles - res0.cycles) / res0.cycles
        assert max(overheads, key=overheads.get) == "fire_sensor"
        assert min(overheads, key=overheads.get) == "lcd_sensor"

    def test_runtime_scale_matches_paper(self, app_runs):
        """Original run-times land in the paper's 251-4930 us range."""
        for name in TABLE_IV_ORDER:
            (_d0, res0), _ = app_runs[name]
            us = res0.cycles / 100.0
            paper_us = PAPER_TABLE4[name].run_us_orig
            assert 0.25 * paper_us <= us <= 4.0 * paper_us, f"{name}: {us:.0f}us"


class TestAppBehaviour:
    def test_light_sensor_led_toggles(self, app_runs):
        (dev0, _), _ = app_runs["light_sensor"]
        led_values = dev0.peripherals["gpio"].event_values("gpio.out")
        assert 1 in led_values and 0 in led_values

    def test_ultrasonic_reports_distances(self, app_runs):
        (dev0, _), _ = app_runs["ultrasonic_ranger"]
        reported = dev0.peripherals["uart"].tx_bytes
        assert len(reported) == 60
        assert len(set(reported)) > 1  # distances vary with the schedule

    def test_fire_sensor_alarms(self, app_runs):
        (dev0, res0), _ = app_runs["fire_sensor"]
        assert res0.done_value > 0  # some alarms fired
        assert dev0.peripherals["timer"].fire_count > 10  # ISR exercised

    def test_syringe_pump_steps(self, app_runs):
        (_d0, res0), _ = app_runs["syringe_pump"]
        assert res0.done_value == 7 + 5 + 8 + 4 + 6 + 5 + 3 + 9

    def test_temp_sensor_uart_stream(self, app_runs):
        (dev0, _), _ = app_runs["temp_sensor"]
        assert len(dev0.peripherals["uart"].tx_log) == 40

    def test_charlieplexing_frames(self, app_runs):
        (_d0, res0), _ = app_runs["charlieplexing"]
        assert res0.done_value == 25

    def test_lcd_sensor_display(self, app_runs):
        (dev0, _), _ = app_runs["lcd_sensor"]
        display = dev0.peripherals["lcd"].display_bytes
        assert len(display) == 3 * 40  # three digits per frame
        assert all(0x30 <= b <= 0x39 for b in display)
