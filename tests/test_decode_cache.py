"""Differential tests: decoded-instruction cache vs. uncached interpreter.

The cache (see :mod:`repro.cpu.core`) must be architecturally invisible:
for every Table IV application and every attack trace, a cached device
and an uncached device must produce bit-identical StepRecords (including
the monitor-visible access stream), cycle totals, monitor verdicts and
attestation evidence.  These tests run both interpreters in lockstep
and compare every record, then check the invalidation contract against
self-modifying and attacker-injected code.
"""

import pytest

import repro.cpu.core as cpu_core
from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.attacks import (
    code_injection,
    interrupt_context_tamper,
    pointer_hijack,
    return_address_smash,
)
from repro.device import build_device
from repro.toolchain import link, parse_source

# Enough lockstep steps to cover each app's startup, main loop and (for
# the short apps) the complete run; full-run equivalence is additionally
# covered by the attack differentials and the aggregate asserts below.
LOCKSTEP_STEPS = 15_000

ATTACKS = {
    "code_injection": code_injection,
    "return_address_smash": return_address_smash,
    "pointer_hijack": pointer_hijack,
    "interrupt_context_tamper": interrupt_context_tamper,
}


@pytest.fixture
def uncached_default():
    """Flip the process-wide interpreter default to the uncached path."""
    cpu_core.DECODE_CACHE_DEFAULT = False
    try:
        yield
    finally:
        cpu_core.DECODE_CACHE_DEFAULT = True


def lockstep(program, security, make_peripherals, max_steps=LOCKSTEP_STEPS):
    """Step a cached and an uncached device in lockstep, comparing
    every StepRecord (kind, PCs, cycles, instruction, access stream)
    and every monitor verdict."""
    cached = build_device(program, security=security,
                          peripherals=make_peripherals(), decode_cache=True)
    plain = build_device(program, security=security,
                         peripherals=make_peripherals(), decode_cache=False)
    assert cached.cpu._dcache is not None
    assert plain.cpu._dcache is None
    for step in range(max_steps):
        record_c, violation_c = cached.step()
        record_p, violation_p = plain.step()
        assert record_c == record_p, f"step {step} diverged"
        assert violation_c == violation_p, f"step {step} verdict diverged"
        if cached.harness.done:
            break
    assert cached.cycle == plain.cycle
    assert cached.cpu.total_cycles == plain.cpu.total_cycles
    assert cached.cpu.instruction_count == plain.cpu.instruction_count
    assert cached.cpu.regs == plain.cpu.regs
    assert cached.harness.done == plain.harness.done
    assert cached.harness.done_value == plain.harness.done_value
    assert cached.reset_count == plain.reset_count
    assert cached.trace_snapshot() == plain.trace_snapshot()
    assert cached.firmware_measurement() == plain.firmware_measurement()
    return cached, plain


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_table4_app_original_is_cache_invariant(name, app_builds):
    spec = APPS[name]
    original, _ = app_builds[name]
    lockstep(original.program, "none", spec.make_peripherals)


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_table4_app_eilid_is_cache_invariant(name, app_builds):
    spec = APPS[name]
    _, eilid = app_builds[name]
    lockstep(eilid.final.program, "eilid", spec.make_peripherals)


@pytest.mark.parametrize("attack_name", sorted(ATTACKS))
@pytest.mark.parametrize("security", ["none", "eilid"])
def test_attack_outcomes_are_cache_invariant(attack_name, security,
                                             uncached_default):
    """Each Table IV attack trace ends in the same outcome, violation
    reasons, cycle count and attestation evidence on both interpreters."""
    attack = ATTACKS[attack_name]
    plain = attack(security)  # DECODE_CACHE_DEFAULT is False here
    cpu_core.DECODE_CACHE_DEFAULT = True
    cached = attack(security)
    assert cached.outcome is plain.outcome
    assert [v.reason for v in cached.violations] == \
           [v.reason for v in plain.violations]
    assert cached.device.cycle == plain.device.cycle
    assert cached.device.reset_count == plain.device.reset_count
    assert cached.device.cpu.regs == plain.device.cpu.regs
    assert cached.device.trace_snapshot() == plain.device.trace_snapshot()
    assert cached.device.attestation_report() == \
           plain.device.attestation_report()


# ---- invalidation contract ---------------------------------------------------


def _make_cpu(asm):
    from repro.cpu import Cpu, InterruptController
    from repro.memory.bus import Bus

    source = "    .text\n__start:\n" + asm + "\nend:\n    jmp end\n    .vector 15, __start\n"
    program = link([parse_source(source, "smc.s")], name="smc")
    bus = Bus(program.layout)
    for addr, chunk in program.segments():
        bus.load_bytes(addr, chunk)
    cpu = Cpu(bus, InterruptController(), decode_cache=True)
    cpu.reset()
    return cpu, program


def test_cpu_write_to_cached_code_forces_redecode():
    # Execute `mov #0x1111, r11`, then overwrite its immediate word
    # through the CPU-visible bus (self-modifying code) and jump back:
    # the stale decode must not execute again.
    cpu, _ = _make_cpu("    mov #0x1111, r11\n    jmp end\n")
    target = cpu.pc
    record = cpu.step()
    assert record.insn.render() == "mov #0x1111, r11"
    assert cpu.get_reg(11) == 0x1111
    assert target in cpu._dcache
    # Now write the immediate slot through the CPU-visible bus path
    # (what an in-ROM or attacker-hijacked store would do).
    cpu.bus.write_word(target + 2, 0x2222)
    assert target not in cpu._dcache  # entry invalidated
    cpu.set_reg(0, target)
    record = cpu.step()
    assert record.insn.render() == "mov #0x2222, r11"
    assert cpu.get_reg(11) == 0x2222


def test_backdoor_poke_into_cached_code_forces_redecode():
    cpu, program = _make_cpu("    mov #0x1111, r11\n    jmp end\n")
    start = cpu.pc
    cpu.step()
    assert cpu.get_reg(11) == 0x1111
    assert start in cpu._dcache
    # Attacker/programmer back door: poke a new immediate in place.
    cpu.bus.poke_word(start + 2, 0x2222)
    assert start not in cpu._dcache
    cpu.set_reg(0, start)
    cpu.step()
    assert cpu.get_reg(11) == 0x2222


def test_load_bytes_into_cached_code_forces_redecode():
    cpu, program = _make_cpu("    mov #0x1111, r11\n    jmp end\n")
    start = cpu.pc
    cpu.step()
    assert start in cpu._dcache
    cpu.bus.load_bytes(start + 2, b"\x22\x22")
    assert start not in cpu._dcache
    cpu.set_reg(0, start)
    cpu.step()
    assert cpu.get_reg(11) == 0x2222


def test_cache_hit_replays_fetch_access_stream():
    """Monitors must see the same FETCH records on hits as on misses."""
    cpu, _ = _make_cpu("    mov #0x1234, r10\n    jmp end\n")
    start = cpu.pc
    miss_record = cpu.step()
    cpu.set_reg(0, start)
    hit_record = cpu.step()
    assert start in cpu._dcache
    assert miss_record.accesses == hit_record.accesses
    fetches = [a for a in hit_record.accesses if a.kind.value == "fetch"]
    assert [a.addr for a in fetches] == [start, start + 2]
    assert all(a.pc == start for a in fetches)
