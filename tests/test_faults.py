"""CFG-driven fault-injection campaigns (:mod:`repro.faults`).

Covers the acceptance contract end to end: site enumeration from a
Table IV application's recovered CFG yields a deep pool (>= 200
sites), seeded plan expansion is deterministic, thread and process
backends produce identical tallies for the same seed, and the
detection ordering eilid >= casu >= none holds because the monitor
sets nest.  Also pins the wire-format versioning shared with the
fleet's record codec and the fault-sweep surfaces in repro.api and
the CLI.
"""

import json

import pytest

from repro.api import FaultSpec, FirmwareSpec, ScenarioSpec, Session, SpecError
from repro.api.firmware import build_firmware
from repro.cfg import recover_cfg
from repro.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultCampaign,
    FaultPlan,
    OUTCOMES,
    enumerate_sites,
    expand_plan,
)
from repro.fleet.registry import DeviceRecord, FleetError
from repro.casu.update import UpdateKey
from repro.fleet.store import record_from_dict, record_to_dict
from repro.obs.events import EVENT_KINDS, open_event_log
from repro.snapshot import WIRE_VERSION

APP = "light_sensor"  # smallest Table IV app: fastest golden runs
SEED = 7


@pytest.fixture(scope="module")
def light_sensor_sites():
    spec = FirmwareSpec(kind="app", app=APP, variant="original")
    build = build_firmware(spec)
    cfg = recover_cfg(build.program, name=APP)
    return spec, enumerate_sites(cfg)


# ---- site enumeration --------------------------------------------------------


def test_site_pool_is_deep_enough(light_sensor_sites):
    """Acceptance: a Table IV app CFG yields >= 200 injectable sites."""
    _, sites = light_sensor_sites
    assert len(sites) >= 200
    kinds = {site.kind for site in sites}
    assert kinds == set(FAULT_KINDS)


def test_enumeration_is_deterministic(light_sensor_sites):
    spec, sites = light_sensor_sites
    cfg = recover_cfg(build_firmware(spec).program, name=APP)
    assert enumerate_sites(cfg) == sites


def test_kind_filter_and_unknown_kind(light_sensor_sites):
    spec, sites = light_sensor_sites
    cfg = recover_cfg(build_firmware(spec).program, name=APP)
    flips = enumerate_sites(cfg, kinds=("imem-flip",))
    assert flips and all(site.kind == "imem-flip" for site in flips)
    assert flips == [site for site in sites if site.kind == "imem-flip"]
    with pytest.raises(ValueError, match="bogus"):
        enumerate_sites(cfg, kinds=("bogus",))


# ---- plan expansion ----------------------------------------------------------


def test_plan_expansion_is_seed_deterministic(light_sensor_sites):
    _, sites = light_sensor_sites
    plan_a = expand_plan(sites, seed=SEED, count=40, name=APP)
    plan_b = expand_plan(sites, seed=SEED, count=40, name=APP)
    assert plan_a == plan_b
    assert len(plan_a) == 40
    assert expand_plan(sites, seed=SEED + 1, count=40).faults != plan_a.faults


def test_plan_covers_the_full_pool_by_default(light_sensor_sites):
    _, sites = light_sensor_sites
    plan = expand_plan(sites, seed=0, name=APP)
    assert len(plan) == len(sites) >= 200
    # Every fault is fully parameterised: the plan alone reproduces
    # the sweep, no RNG state travels to the workers.
    for fault in plan.faults:
        assert fault["kind"] in FAULT_KINDS
        assert isinstance(fault["pc"], int)


def test_plan_wire_round_trip(light_sensor_sites):
    _, sites = light_sensor_sites
    plan = expand_plan(sites, seed=3, count=8, name=APP)
    doc = json.loads(json.dumps(plan.to_dict()))
    assert doc["codec"] == WIRE_VERSION
    assert FaultPlan.from_dict(doc) == plan
    doc["codec"] = 999
    with pytest.raises(Exception, match="codec"):
        FaultPlan.from_dict(doc)


# ---- the sweep (acceptance) --------------------------------------------------


@pytest.fixture(scope="module")
def sweep_reports(light_sensor_sites):
    """One seeded plan swept on both backends, all three profiles."""
    spec, sites = light_sensor_sites
    plan = expand_plan(sites, seed=SEED, count=12, name=APP)
    reports = {}
    for backend in ("thread", "process"):
        campaign = FaultCampaign(spec, plan, backend=backend, workers=2)
        reports[backend] = campaign.run()
    return reports


def test_backends_tally_identically(sweep_reports):
    """Acceptance: process and thread sweeps of the same seed agree
    outcome-for-outcome, not just in aggregate."""
    thread, process = sweep_reports["thread"], sweep_reports["process"]
    assert [t.to_dict() for t in thread.tallies] == \
           [t.to_dict() for t in process.tallies]
    assert thread.outcomes == process.outcomes


def test_detection_ordering_nests_with_monitor_sets(sweep_reports):
    """Acceptance: eilid >= casu >= none detections (same image, and
    eilid's monitor set is a strict superset of casu's)."""
    report = sweep_reports["thread"]
    none, casu, eilid = (report.tally(p) for p in ("none", "casu", "eilid"))
    assert none.detected == 0
    assert eilid.detected >= casu.detected >= none.detected
    assert casu.detected > 0  # the seeded plan actually trips monitors


def test_every_fault_graded_once(sweep_reports):
    report = sweep_reports["thread"]
    for profile in FAULT_PROFILES:
        outcomes = report.outcomes[profile]
        assert len(outcomes) == report.faults == 12
        assert [doc["id"] for doc in outcomes] == sorted(
            doc["id"] for doc in outcomes)
        assert all(doc["outcome"] in OUTCOMES for doc in outcomes)
        assert report.tally(profile).total == 12


def test_report_renders_paper_style_table(sweep_reports):
    text = sweep_reports["thread"].render()
    assert "Fault sweep: light_sensor" in text
    for profile in FAULT_PROFILES:
        assert profile in text
    doc = json.loads(json.dumps(sweep_reports["thread"].to_dict()))
    assert doc["faults"] == 12 and len(doc["profiles"]) == 3


def test_campaign_emits_events(light_sensor_sites):
    spec, sites = light_sensor_sites
    assert "fault-inject" in EVENT_KINDS and "fault-outcome" in EVENT_KINDS
    plan = expand_plan(sites, seed=1, count=2, name=APP)
    log = open_event_log(None)
    FaultCampaign(spec, plan, profiles=("none",), events=log).run()
    assert len(log.events(kind="fault-inject")) == 2
    outcomes = log.events(kind="fault-outcome")
    assert len(outcomes) == 2
    assert all(doc["data"]["outcome"] in OUTCOMES for doc in outcomes)
    assert len(log.events(kind="campaign-end")) == 1


def test_unknown_profile_and_backend_rejected(light_sensor_sites):
    spec, sites = light_sensor_sites
    plan = expand_plan(sites, seed=0, count=1)
    with pytest.raises(ValueError, match="profile"):
        FaultCampaign(spec, plan, profiles=("none", "super"))
    with pytest.raises(ValueError, match="backend"):
        FaultCampaign(spec, plan, backend="fork")


# ---- shared wire-format versioning (fleet record codec) ----------------------


class TestRecordCodecVersioning:
    def _record(self):
        return DeviceRecord("d", UpdateKey.derive("d"), "TI MSP430", "casu")

    def test_records_carry_the_shared_codec_version(self):
        doc = record_to_dict(self._record())
        assert doc["codec"] == WIRE_VERSION

    def test_mismatched_codec_is_a_clear_fleet_error(self):
        doc = record_to_dict(self._record())
        doc["codec"] = 999
        with pytest.raises(FleetError, match="codec version 999"):
            record_from_dict(doc)
        # The message names both sides, not a bare KeyError.
        with pytest.raises(FleetError, match="parent and worker"):
            record_from_dict(doc)

    def test_legacy_records_without_codec_still_load(self):
        doc = record_to_dict(self._record())
        del doc["codec"]
        assert record_from_dict(doc) == self._record()


# ---- the api surface ---------------------------------------------------------


class TestFaultSpec:
    def test_defaults_validate_and_round_trip(self):
        spec = FaultSpec()
        spec.validate()
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kwargs,field", [
        ({"kinds": ("bogus",)}, "kinds"),
        ({"profiles": ("none", "super")}, "profiles"),
        ({"backend": "fork"}, "backend"),
        ({"workers": 0}, "workers"),
        ({"count": -1}, "count"),
        ({"seed": "x"}, "seed"),
    ])
    def test_bad_fields_raise_spec_error(self, kwargs, field):
        with pytest.raises(SpecError) as err:
            FaultSpec(**kwargs).validate()
        assert field in str(err.value)

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError):
            FaultSpec.from_dict({"seeds": 1})


def test_session_fault_sweep(light_sensor_sites):
    spec = ScenarioSpec(name="sweep",
                        firmware=FirmwareSpec(kind="app", app=APP,
                                              variant="original"))
    session = Session(spec)
    report = session.fault_sweep(FaultSpec(seed=SEED, count=4))
    assert session.fault_report is report
    assert report.faults == 4
    assert [t.profile for t in report.tallies] == list(FAULT_PROFILES)


def test_session_fault_sweep_validates_the_plan():
    spec = ScenarioSpec(name="sweep",
                        firmware=FirmwareSpec(kind="app", app=APP,
                                              variant="original"))
    with pytest.raises(SpecError, match="backend"):
        Session(spec).fault_sweep(FaultSpec(backend="fork"))


# ---- the cli surface ---------------------------------------------------------


class TestFaultsCli:
    def _json(self, capsys, argv):
        from repro.cli import main

        code = main(argv + ["--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        return doc

    def test_enumerate(self, capsys):
        doc = self._json(capsys, ["faults", "enumerate", APP])
        assert doc["schema"] == "eilid.cli.faults-enumerate"
        assert doc["total"] >= 200
        assert set(doc["kinds"]) == set(FAULT_KINDS)
        assert doc["total"] == sum(doc["kinds"].values()) == len(doc["sites"])

    def test_enumerate_kind_filter(self, capsys):
        doc = self._json(capsys,
                         ["faults", "enumerate", APP, "--kinds", "insn-skip"])
        assert set(doc["kinds"]) == {"insn-skip"}

    def test_sweep(self, capsys):
        doc = self._json(capsys, ["faults", "sweep", APP, "--seed", str(SEED),
                                  "--count", "3", "--profiles", "none,eilid"])
        assert doc["schema"] == "eilid.cli.faults-sweep"
        assert doc["faults"] == 3
        assert [p["profile"] for p in doc["profiles"]] == ["none", "eilid"]

    def test_unknown_kind_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["faults", "enumerate", APP, "--kinds", "nope"]) == 1
