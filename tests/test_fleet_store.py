"""Durable verifier state + process-sharded campaigns.

The properties this file guards:

* every store backend round-trips DeviceRecord documents (including
  the freshness counters the replay defences depend on) and a
  simulation restarted on the store *restores* devices instead of
  re-enrolling them;
* a campaign killed mid-way resumes from the store without
  re-offering applied devices;
* the process backend produces the same fleet end-state as the thread
  backend -- applied versions, adversarial rejections, quarantines --
  and a seeded loss x reorder grid shows updates stay idempotent and
  no healthy device is ever quarantined on either backend.
"""

import os
import subprocess
import sys

import pytest

from repro.fleet import (
    CampaignConfig,
    CampaignStatus,
    FleetRegistry,
    FleetSimulation,
    JsonlStore,
    Lifecycle,
    MemoryStore,
    SqliteStore,
    open_store,
    record_from_dict,
    record_to_dict,
)
from repro.fleet.registry import NONCE_RESTART_SLACK, DeviceRecord
from repro.casu.update import UpdateKey

BACKENDS = ("thread", "process")


def make_store(kind, tmp_path, name="fleet"):
    if kind == "memory":
        return MemoryStore()
    if kind == "jsonl":
        return JsonlStore(str(tmp_path / f"{name}.jsonl"))
    return SqliteStore(str(tmp_path / f"{name}.db"))


# ---- the codec and the backends --------------------------------------------


class TestStoreBackends:
    def test_record_codec_round_trips_every_field(self):
        record = DeviceRecord(
            device_id="dev-1", key=UpdateKey.derive("dev-1"),
            platform="TI MSP430", security="casu",
            state=Lifecycle.QUARANTINED, firmware_version=7,
            firmware_hash="ab" * 32, enrolled_at=3, last_seen=123456,
            attest_count=9, violation_count=2, reset_count=1,
            update_failures=4, nonce_high_water=41,
            violation_totals={"stack-tamper": 2, "cfi-return": 1})
        clone = record_from_dict(record_to_dict(record))
        assert clone == record

    @pytest.mark.parametrize("kind", ("memory", "jsonl", "sqlite"))
    def test_save_load_last_wins(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        doc = record_to_dict(DeviceRecord("d", UpdateKey.derive("d"),
                                          "TI MSP430", "casu"))
        store.save_record(doc)
        doc2 = dict(doc, firmware_version=3, nonce_high_water=17)
        store.save_record(doc2)
        store.save_meta({"clock": 5, "packages": {"1": {"target": 1,
                                                        "payload": "beef"}}})
        store.flush()
        assert store.load_records() == {"d": doc2}
        assert store.load_meta()["clock"] == 5
        store.close()

    @pytest.mark.parametrize("kind", ("jsonl", "sqlite"))
    def test_durable_backends_survive_reopen(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        path = store.path
        doc = record_to_dict(DeviceRecord("d", UpdateKey.derive("d"),
                                          "TI MSP430", "casu",
                                          nonce_high_water=12))
        store.save_record(doc)
        store.save_meta({"clock": 2})
        store.close()
        again = open_store(path)
        assert again.backend == kind
        assert again.load_records()["d"]["nonce_high_water"] == 12
        assert again.load_meta() == {"clock": 2}
        again.close()

    def test_jsonl_ignores_torn_tail_line(self, tmp_path):
        store = make_store("jsonl", tmp_path)
        doc = record_to_dict(DeviceRecord("d", UpdateKey.derive("d"),
                                          "TI MSP430", "casu"))
        store.save_record(doc)
        store.close()
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "device_id": "t')  # kill mid-append
        again = JsonlStore(store.path)
        assert list(again.load_records()) == ["d"]
        again.close()

    def test_jsonl_compaction_folds_the_log(self, tmp_path):
        store = make_store("jsonl", tmp_path)
        doc = record_to_dict(DeviceRecord("d", UpdateKey.derive("d"),
                                          "TI MSP430", "casu"))
        for version in range(10):
            store.save_record(dict(doc, firmware_version=version))
        store.close()  # compacts
        with open(store.path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        again = JsonlStore(store.path)
        assert again.load_records()["d"]["firmware_version"] == 9
        again.close()

    def test_jsonl_compacts_on_open_past_redundancy_factor(self, tmp_path):
        # Verifiers driven by cron never close() cleanly; the open
        # path folds a bloated log so it cannot grow without bound.
        path = str(tmp_path / "bloated.jsonl")
        doc = record_to_dict(DeviceRecord("d", UpdateKey.derive("d"),
                                          "TI MSP430", "casu"))
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for version in range(200):
                handle.write(json.dumps(
                    {"kind": "record", **dict(doc, firmware_version=version)})
                    + "\n")
        store = JsonlStore(path)
        with open(path, encoding="utf-8") as handle:
            assert len([line for line in handle if line.strip()]) == 1
        assert store.load_records()["d"]["firmware_version"] == 199
        store.close()

    def test_jsonl_live_compaction_bounds_a_long_session(self, tmp_path):
        # A long-running verifier (many campaigns, one open store)
        # re-saves every record each sweep; the in-process compaction
        # must keep the log bounded without any close/reopen.
        store = make_store("jsonl", tmp_path)
        doc = record_to_dict(DeviceRecord("d", UpdateKey.derive("d"),
                                          "TI MSP430", "casu"))
        for version in range(1000):
            store.save_record(dict(doc, firmware_version=version))
        with open(store.path, encoding="utf-8") as handle:
            lines = len([line for line in handle if line.strip()])
        # 1 live record: the threshold is max(64, 4 * live) appends.
        assert lines <= 65
        assert store.load_records()["d"]["firmware_version"] == 999
        # The reopened handle keeps appending correctly post-compact.
        store.save_record(dict(doc, firmware_version=1000))
        store.close()
        again = JsonlStore(store.path)
        assert again.load_records()["d"]["firmware_version"] == 1000
        again.close()

    def test_jsonl_live_compaction_during_multi_campaign_run(self, tmp_path):
        # Regression for the observability PR: successive campaigns
        # over one open JSONL store must not grow the log unboundedly.
        path = str(tmp_path / "fleet.jsonl")
        fleet = FleetSimulation(size=6, store=path)
        for version in range(1, 9):
            report = fleet.rollout(version=version)
            assert report.status is CampaignStatus.COMPLETE
        fleet.registry.flush()
        with open(path, encoding="utf-8") as handle:
            lines = len([line for line in handle if line.strip()])
        # 7 live documents (6 records + meta): bounded by the
        # open-handle threshold, not by campaigns * devices.
        assert lines <= max(64, 4 * 7) + 7

    def test_store_close_is_idempotent(self, tmp_path):
        for kind in ("jsonl", "sqlite"):
            store = make_store(kind, tmp_path, name=f"close-{kind}")
            store.save_record(record_to_dict(DeviceRecord(
                "d", UpdateKey.derive("d"), "TI MSP430", "casu")))
            store.close()
            store.close()  # must be a no-op, not a crash
            with make_store(kind, tmp_path, name=f"ctx-{kind}") as ctx:
                ctx.close()  # __exit__ after an explicit close

    def test_open_store_dispatches_on_suffix(self, tmp_path):
        assert open_store(None).backend == "memory"
        assert open_store(":memory:").backend == "memory"
        sqlite_store = open_store(str(tmp_path / "a.db"))
        jsonl_store = open_store(str(tmp_path / "a.jsonl"))
        assert sqlite_store.backend == "sqlite"
        assert jsonl_store.backend == "jsonl"
        sqlite_store.close()
        jsonl_store.close()


# ---- registry persistence ---------------------------------------------------


class TestRegistryPersistence:
    @pytest.mark.parametrize("kind", ("jsonl", "sqlite"))
    def test_registry_round_trips_through_store(self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        registry = FleetRegistry(store=store)
        registry.enroll("a")
        record = registry.enroll("b")
        record.firmware_version = 4
        record.nonce_high_water = 99
        record.last_seen = 1234
        registry.save(record)
        registry.quarantine("a")
        registry.flush()
        store.close()

        reloaded = FleetRegistry(store=open_store(store.path))
        assert reloaded.ids() == ["a", "b"]
        assert reloaded.clock == registry.clock
        b = reloaded.get("b")
        # nonce high water reloads with the restart reservation added
        assert (b.firmware_version, b.nonce_high_water, b.last_seen) \
            == (4, 99 + NONCE_RESTART_SLACK, 1234)
        assert b.key.secret == record.key.secret
        assert reloaded.get("a").state is Lifecycle.QUARANTINED

    def test_registry_without_store_stays_plain(self):
        registry = FleetRegistry()
        record = registry.enroll("a")
        registry.save(record)  # no-op, must not blow up
        registry.flush()
        assert not registry.durable


# ---- simulation restart -----------------------------------------------------


class TestSimulationRestart:
    @pytest.mark.parametrize("kind", ("jsonl", "sqlite"))
    def test_restart_preserves_lifecycle_versions_and_freshness(
            self, kind, tmp_path):
        store = make_store(kind, tmp_path)
        path = store.path
        fleet = FleetSimulation(size=6, seed=2, store=store)
        fleet.attest_all()
        assert fleet.rollout(version=1).applied == 6
        results = fleet.attest_all()  # re-pins post-update hashes
        assert all(result.ok for result in results.values())
        snapshot = {record.device_id: (record.state, record.firmware_version,
                                       record.firmware_hash,
                                       record.nonce_high_water,
                                       record.last_seen)
                    for record in fleet.registry}
        fleet.registry.store.close()

        # "New process": everything rebuilt from disk, nothing
        # re-enrolled.  Nonce high-water marks come back with the
        # restart reservation added -- ahead, never behind.
        restarted = FleetSimulation(size=6, seed=2, store=path)
        for record in restarted.registry:
            assert snapshot[record.device_id] == (
                record.state, record.firmware_version, record.firmware_hash,
                record.nonce_high_water - NONCE_RESTART_SLACK,
                record.last_seen)
        results = restarted.attest_all()
        assert all(result.ok for result in results.values())
        for record in restarted.registry:
            # Freshness kept counting forward, never backwards.
            device_id = record.device_id
            assert record.nonce_high_water > snapshot[device_id][3]
            assert record.last_seen >= snapshot[device_id][4]
            assert record.firmware_version == 1
        # And the restored replicas still accept the next real update.
        assert restarted.rollout(version=2).applied == 6
        restarted.registry.store.close()

    def test_restart_reserves_nonces_past_uncommitted_saves(self, tmp_path):
        """Regression: a SQLite save lost to a kill before the commit
        must not let the next run reissue the consumed nonce."""
        store = make_store("sqlite", tmp_path)
        path = store.path
        fleet = FleetSimulation(size=1, store=store)
        victim = fleet.registry.ids()[0]
        committed = fleet.registry.get(victim).nonce_high_water
        # Consume nonces after the last commit, then "SIGKILL": close
        # the connection without committing the saves.
        fleet.attest_all([victim])  # saves, flushes -> committed
        committed = fleet.registry.get(victim).nonce_high_water
        fleet.session(victim).attest()  # consumed but never saved
        fleet.registry.store._conn.close()  # kill: rollback to `committed`
        fleet.registry.store._closed = True

        restarted = FleetSimulation(size=1, store=path)
        floor = restarted.registry.get(victim).nonce_high_water
        assert floor >= committed + NONCE_RESTART_SLACK > committed + 1
        # The reservation is committed write-ahead at load: a SECOND
        # crash-without-commit still restarts above this run's base,
        # never reissuing its challenges.
        restarted.registry.store._conn.close()
        restarted.registry.store._closed = True
        again = FleetSimulation(size=1, store=path)
        assert again.registry.get(victim).nonce_high_water \
            >= floor + NONCE_RESTART_SLACK
        again.registry.store.close()

    def test_firmware_spec_mismatch_refused_on_restore(self, tmp_path):
        from repro.api.spec import FirmwareSpec
        from repro.fleet.registry import FleetError

        store = make_store("jsonl", tmp_path)
        path = store.path
        fleet = FleetSimulation(size=2, store=store)
        fleet.registry.store.close()
        other = FirmwareSpec(kind="asm", source=".text\n.global main\n"
                             "main:\n jmp main\n", variant="original",
                             name="other-node", link_rom=True)
        with pytest.raises(FleetError):
            FleetSimulation(size=2, store=path, firmware=other)
        # The original spec restores fine.
        restored = FleetSimulation(size=2, store=path)
        assert all(result.ok for result in restored.attest_all().values())
        restored.registry.store.close()

    def test_restore_replays_only_versions_the_device_applied(self,
                                                              tmp_path):
        """Regression: a device that skipped v1 (targeted campaign)
        must not get v1's bytes on restore -- with a longer v1 payload
        its hash would diverge and a healthy device would quarantine."""
        store = make_store("sqlite", tmp_path)
        path = store.path
        fleet = FleetSimulation(size=4, seed=3, store=store)
        ids = fleet.registry.ids()
        # v1 (long payload) goes to half the fleet only; v2 (short) to all.
        report = fleet.rollout(version=1, payload=bytes([0xAA]) * 64,
                               device_ids=ids[:2])
        assert report.applied == 2
        assert fleet.rollout(version=2, payload=bytes(range(16))).applied == 4
        assert all(result.ok for result in fleet.attest_all().values())
        skipped = fleet.registry.get(ids[2])
        assert skipped.applied_versions == [2]  # never saw v1
        fleet.registry.store.close()

        restarted = FleetSimulation(size=4, seed=3, store=path)
        results = restarted.attest_all()
        assert all(result.ok for result in results.values()), \
            {k: v.detail for k, v in results.items() if not v.ok}
        assert not restarted.registry.by_state(Lifecycle.QUARANTINED)
        restarted.registry.store.close()

    def test_rollout_rejects_rebinding_a_version_to_new_bytes(self,
                                                              tmp_path):
        from repro.fleet.registry import FleetError

        fleet = FleetSimulation(size=4, seed=3,
                                store=make_store("jsonl", tmp_path))
        fleet.rollout(version=1, payload=bytes(16), device_ids=fleet.registry.ids()[:2])
        with pytest.raises(FleetError):
            fleet.rollout(version=1, payload=bytes(range(16)), resume=True)
        # Same bytes resume cleanly.
        report = fleet.rollout(version=1, payload=bytes(16), resume=True)
        assert report.applied == 2 and report.resumed == 2
        fleet.registry.store.close()

    def test_enroll_command_accepts_a_restored_post_rollout_fleet(
            self, tmp_path):
        """Regression: after a rollout clears golden hashes pending
        re-attestation, `fleet enroll --store` must not report the
        restored (healthy) fleet as an enrollment failure."""
        from repro.cli import main as cli_main

        path = str(tmp_path / "fleet.db")
        assert cli_main(["fleet", "enroll", "--devices", "6",
                         "--store", path]) == 0
        assert cli_main(["fleet", "rollout", "--devices", "6",
                         "--store", path]) == 0
        assert cli_main(["fleet", "enroll", "--devices", "6",
                         "--store", path]) == 0

    def test_restart_across_real_processes_via_cli(self, tmp_path):
        """save -> NEW interpreter -> load -> attest, end to end."""
        path = str(tmp_path / "cli-fleet.db")
        env = dict(os.environ, PYTHONPATH="src")
        enroll = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet", "enroll",
             "--devices", "5", "--store", path],
            capture_output=True, text=True, env=env, cwd=os.getcwd())
        assert enroll.returncode == 0, enroll.stderr
        status = subprocess.run(
            [sys.executable, "-m", "repro.cli", "fleet", "status",
             "--devices", "5", "--store", path],
            capture_output=True, text=True, env=env, cwd=os.getcwd())
        assert status.returncode == 0, status.stderr
        assert "fleet of 5 devices" in status.stdout

    def test_replay_from_previous_process_rejected(self, tmp_path):
        """Acceptance: a report captured in run 1 does not verify in a
        run-2 session resumed from the durable store."""
        from repro.fleet.protocol import (
            VERIFIER_ID,
            Challenge,
            MsgKind,
            VerifierSession,
        )

        store = make_store("sqlite", tmp_path)
        path = store.path
        fleet = FleetSimulation(size=1, store=store)
        victim = fleet.registry.ids()[0]
        record = fleet.registry.get(victim)
        link = fleet.transport.link(victim)
        nonce = record.nonce_high_water + 1
        record.nonce_high_water = nonce
        link.down.send(VERIFIER_ID, victim, MsgKind.ATTEST_REQ.value,
                       Challenge(nonce))
        fleet.agents[victim].pump()
        captured = [envelope.body for envelope in link.up.drain()
                    if envelope.kind == MsgKind.ATTEST_REPORT.value][0]
        fleet.registry.save(record)
        fleet.registry.flush()
        store.close()

        restarted = FleetSimulation(size=1, store=path)
        rerecord = restarted.registry.get(victim)
        # Persisted high water plus the restart reservation: strictly
        # ahead of every nonce the previous run ever issued.
        assert rerecord.nonce_high_water == nonce + NONCE_RESTART_SLACK

        class SilentAgent:
            def pump(self):
                pass

        relink = restarted.transport.link(victim)
        session = VerifierSession(rerecord, SilentAgent(), relink,
                                  max_attempts=2)
        relink.up.send(victim, VERIFIER_ID, MsgKind.ATTEST_REPORT.value,
                       captured)
        result = session.attest()
        assert not result.ok and result.detail == "replay"
        assert rerecord.state is Lifecycle.QUARANTINED
        restarted.registry.store.close()


# ---- resumable campaigns ----------------------------------------------------


class TestResume:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_killed_campaign_resumes_without_reoffering(self, backend,
                                                        tmp_path):
        store = make_store("sqlite", tmp_path)
        path = store.path
        fleet = FleetSimulation(size=20, seed=7, store=store)
        config = CampaignConfig(backend=backend, workers=2)
        # "Kill" after 60% of the fleet: offer to a subset, then the
        # process dies (we close the store without finishing).
        partial_ids = fleet.registry.manageable_ids()[:12]
        partial = fleet.rollout(version=1, config=config,
                                device_ids=partial_ids)
        assert partial.applied == 12
        fleet.registry.store.close()

        restarted = FleetSimulation(size=20, seed=7, store=path)
        resumed = restarted.rollout(version=1, config=config, resume=True)
        assert resumed.resumed == 12  # applied devices never re-offered
        assert resumed.applied == 8
        assert resumed.status is CampaignStatus.COMPLETE
        assert restarted.registry.version_histogram() == {1: 20}
        # Re-running the finished campaign is a durable no-op.
        done = restarted.rollout(version=1, config=config, resume=True)
        assert done.status is CampaignStatus.EMPTY
        assert done.resumed == 20 and done.applied == 0
        restarted.registry.store.close()


# ---- process backend parity + the loss x reorder sweep ----------------------


class TestProcessBackend:
    def test_process_rollout_matches_thread_end_state(self):
        outcomes = {}
        for backend in BACKENDS:
            fleet = FleetSimulation(size=24, seed=9)
            report = fleet.rollout(
                version=1, tamper_fraction=0.125, rollback_fraction=0.125,
                config=CampaignConfig(backend=backend, workers=2,
                                      failure_threshold=0.5))
            outcomes[backend] = (
                report.status, report.applied, report.failed,
                dict(fleet.registry.state_histogram()),
                dict(fleet.registry.version_histogram()),
            )
        assert outcomes["thread"] == outcomes["process"]

    def test_process_quarantines_propagate_to_parent(self):
        # A worker-side ROM rejection (tampered package -> BAD_MAC ack)
        # must quarantine the device in the PARENT registry, and the
        # parent replicas of applied devices must be synced so the next
        # heartbeat in this process attests clean.
        fleet = FleetSimulation(size=16, seed=1)
        report = fleet.rollout(version=1, tamper_fraction=0.25,
                               config=CampaignConfig(backend="process",
                                                     workers=2,
                                                     failure_threshold=1.0))
        assert report.applied == 12 and report.failed == 4
        assert len(fleet.registry.by_state(Lifecycle.QUARANTINED)) == 4
        results = fleet.attest_all(fleet.registry.manageable_ids())
        assert all(result.ok for result in results.values())
        assert all(device.update_engine.current_version == 1
                   for device_id, device in fleet.devices.items()
                   if fleet.registry.get(device_id).state
                   is Lifecycle.ACTIVE)

    def test_verify_after_wave_attests_the_updated_image(self):
        """Regression: post-wave verification on the process backend
        must attest the synced replica, not a stale parent copy --
        which would roll every merged record back to the old version."""
        fleet = FleetSimulation(size=12, seed=4)
        report = fleet.rollout(version=1, config=CampaignConfig(
            backend="process", workers=2, verify_after_wave=True))
        assert report.status is CampaignStatus.COMPLETE
        assert report.applied == 12 and report.failed == 0
        assert fleet.registry.version_histogram() == {1: 12}
        # Resume sees everything applied -- nothing to re-offer.
        again = fleet.rollout(version=1, config=CampaignConfig(
            backend="process", workers=2), resume=True)
        assert again.status is CampaignStatus.EMPTY and again.resumed == 12

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("loss,reorder", [(0.0, 0.0), (0.15, 0.0),
                                              (0.0, 0.3), (0.15, 0.3)])
    def test_seeded_loss_reorder_grid_keeps_updates_safe(
            self, backend, loss, reorder, tmp_path):
        """The property sweep: under loss and reordering, on both
        backends, updates stay idempotent, no healthy device is ever
        quarantined, and the store round-trip preserves everything."""
        store = make_store("jsonl", tmp_path,
                           name=f"{backend}-{loss}-{reorder}")
        path = store.path
        fleet = FleetSimulation(size=10, seed=int(loss * 100 + reorder * 10),
                                max_attempts=10, store=store)
        config = CampaignConfig(backend=backend, workers=2)
        report = fleet.rollout(version=1, config=config)
        assert report.status is CampaignStatus.COMPLETE
        assert report.applied == 10
        assert not fleet.registry.by_state(Lifecycle.QUARANTINED)
        # Idempotence: resuming the finished campaign offers nothing.
        again = fleet.rollout(version=1, config=config, resume=True)
        assert again.status is CampaignStatus.EMPTY and again.resumed == 10
        def comparable(registry, slack=0):
            docs = {}
            for record in registry:
                doc = record_to_dict(record)
                doc["nonce_high_water"] -= slack
                docs[record.device_id] = doc
            return docs

        before = comparable(fleet.registry)
        fleet.registry.store.close()
        # Store round-trip preserves lifecycle, versions, freshness
        # (nonces restart ahead by the reservation, never behind).
        restarted = FleetSimulation(size=10, store=path)
        assert comparable(restarted.registry, NONCE_RESTART_SLACK) == before
        assert all(result.ok
                   for result in restarted.attest_all().values())
        restarted.registry.store.close()
