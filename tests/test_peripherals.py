"""Peripheral models: registers, schedules, interrupts, event logs."""

import pytest

from repro.cpu import InterruptController
from repro.memory import Bus
from repro.peripherals import (
    Adc,
    AdcSchedule,
    Gpio,
    HarnessPorts,
    Lcd,
    Timer,
    Uart,
    Ultrasonic,
)
from repro.peripherals import ports as P


@pytest.fixture
def bus():
    return Bus()


@pytest.fixture
def ic():
    return InterruptController()


def attach(peripheral, bus, ic=None):
    peripheral.attach(bus, ic)
    return peripheral


class TestGpio:
    def test_out_logged(self, bus):
        gpio = attach(Gpio(), bus)
        bus.write_word(P.GPIO_OUT, 0x55)
        bus.write_word(P.GPIO_OUT, 0xAA)
        assert gpio.event_values("gpio.out") == [0x55, 0xAA]
        assert bus.read_word(P.GPIO_OUT) == 0xAA

    def test_input_schedule(self, bus):
        gpio = attach(Gpio(input_schedule=lambda cycle: 1 if cycle >= 100 else 0), bus)
        assert bus.read_word(P.GPIO_IN) == 0
        gpio.tick(150)
        assert bus.read_word(P.GPIO_IN) == 1

    def test_reset_clears_output(self, bus):
        gpio = attach(Gpio(), bus)
        bus.write_word(P.GPIO_OUT, 7)
        gpio.reset()
        assert gpio.out == 0
        assert gpio.event_values("gpio.out") == [7]  # log survives reset


class TestTimer:
    def test_counts_when_enabled(self, bus):
        timer = attach(Timer(), bus)
        bus.write_word(P.TIMER_CCR, 1000)
        bus.write_word(P.TIMER_CTL, P.TIMER_ENABLE)
        timer.tick(250)
        assert bus.read_word(P.TIMER_COUNT) == 250

    def test_disabled_does_not_count(self, bus):
        timer = attach(Timer(), bus)
        timer.tick(500)
        assert timer.count == 0

    def test_wraps_and_raises_irq(self, bus, ic):
        timer = attach(Timer(), bus, ic)
        bus.write_word(P.TIMER_CCR, 100)
        bus.write_word(P.TIMER_CTL, P.TIMER_ENABLE | P.TIMER_IRQ_ENABLE)
        timer.tick(250)
        assert timer.fire_count == 2
        assert ic.pending_index() == P.TIMER_VECTOR

    def test_no_irq_without_enable_bit(self, bus, ic):
        timer = attach(Timer(), bus, ic)
        bus.write_word(P.TIMER_CCR, 100)
        bus.write_word(P.TIMER_CTL, P.TIMER_ENABLE)
        timer.tick(150)
        assert ic.pending_index() is None


class TestAdc:
    def test_sample_indexed_schedule(self, bus):
        attach(Adc(AdcSchedule({2: AdcSchedule.steps(2, [100, 200])})), bus)
        values = []
        for _ in range(4):
            bus.write_word(P.ADC_CTL, P.ADC_START | 2)
            values.append(bus.read_word(P.ADC_DATA))
        assert values == [100, 100, 200, 200]

    def test_channels_independent(self, bus):
        adc = attach(Adc(AdcSchedule({0: AdcSchedule.constant(7)})), bus)
        bus.write_word(P.ADC_CTL, P.ADC_START | 0)
        first = bus.read_word(P.ADC_DATA)
        bus.write_word(P.ADC_CTL, P.ADC_START | 1)  # default triangle
        bus.read_word(P.ADC_DATA)
        assert first == 7
        assert adc.channel_counts == {0: 1, 1: 1}

    def test_no_sample_without_start_bit(self, bus):
        adc = attach(Adc(), bus)
        bus.write_word(P.ADC_CTL, 2)
        assert adc.sample_count == 0

    def test_ramp_schedule_monotonic(self):
        ramp = AdcSchedule.ramp(10, low=0, high=90)
        values = [ramp(i) for i in range(10)]
        assert values == sorted(values)
        assert values[0] == 0 and values[-1] == 90


class TestUart:
    def test_tx_log(self, bus):
        uart = attach(Uart(), bus)
        for byte in b"hi":
            bus.write_word(P.UART_TX, byte)
        assert uart.tx_bytes == b"hi"

    def test_rx_schedule_and_status(self, bus):
        uart = attach(Uart(rx_schedule=[(100, 0x41)]), bus)
        assert bus.read_word(P.UART_STATUS) == P.UART_TX_READY
        uart.tick(150)
        assert bus.read_word(P.UART_STATUS) & P.UART_RX_AVAILABLE
        assert bus.read_word(P.UART_RX) == 0x41
        assert not bus.read_word(P.UART_STATUS) & P.UART_RX_AVAILABLE

    def test_rx_irq(self, bus, ic):
        uart = attach(Uart(rx_schedule=[(10, 1)], rx_irq_enabled=True), bus, ic)
        uart.tick(20)
        assert ic.pending_index() == P.UART_VECTOR

    def test_fifo_order(self, bus):
        uart = attach(Uart(rx_schedule=[(10, 1), (20, 2), (30, 3)]), bus)
        uart.tick(50)
        assert [bus.read_word(P.UART_RX) for _ in range(3)] == [1, 2, 3]

    def test_byte_wise_word_read_pops_fifo_once(self, bus):
        # Regression: reading a side-effecting data register byte-wise
        # (low byte then high byte, one logical word read) used to
        # re-invoke the read handler for each byte, popping the RX FIFO
        # twice.  The side effect fires only on the data (low) byte.
        uart = attach(Uart(rx_schedule=[(10, 0x41), (20, 0x42)]), bus)
        uart.tick(50)
        low = bus.read_byte(P.UART_RX)
        high = bus.read_byte(P.UART_RX + 1)
        assert (low, high) == (0x41, 0x00)
        assert len(uart._rx_fifo) == 1  # only one architectural pop
        assert bus.read_word(P.UART_RX) == 0x42

    def test_high_byte_read_has_no_side_effect(self, bus):
        uart = attach(Uart(rx_schedule=[(10, 0x41)]), bus)
        uart.tick(50)
        bus.read_byte(P.UART_RX + 1)  # status-style peek at the high byte
        assert len(uart._rx_fifo) == 1  # FIFO untouched
        assert bus.read_word(P.UART_RX) == 0x41


class TestLcd:
    def test_busy_window(self, bus):
        lcd = attach(Lcd(), bus)
        assert bus.read_word(P.LCD_STATUS) == 0
        bus.write_word(P.LCD_CMD, 0x38)
        assert bus.read_word(P.LCD_STATUS) == P.LCD_BUSY
        lcd.tick(200)
        assert bus.read_word(P.LCD_STATUS) == 0

    def test_display_bytes(self, bus):
        lcd = attach(Lcd(), bus)
        for ch in b"42":
            bus.write_word(P.LCD_DATA, ch)
        assert lcd.display_bytes == b"42"


class TestUltrasonic:
    def test_echo_pulse_width(self, bus):
        ultra = attach(Ultrasonic(lambda index: 500), bus)
        bus.write_word(P.ULTRA_TRIG, 1)
        assert bus.read_word(P.ULTRA_ECHO) == 0  # transit delay
        ultra.tick(250)
        assert bus.read_word(P.ULTRA_ECHO) == 1
        ultra.tick(600)
        assert bus.read_word(P.ULTRA_ECHO) == 0

    def test_trigger_indexed_schedule(self, bus):
        widths = []
        ultra = attach(Ultrasonic(lambda index: 100 + index * 50), bus)
        for _ in range(3):
            bus.write_word(P.ULTRA_TRIG, 1)
            widths.append(ultra.echo_end - ultra.echo_start)
        assert widths == [100, 150, 200]


class TestHarness:
    def test_done_latch(self, bus):
        harness = attach(HarnessPorts(), bus)
        assert not harness.done
        bus.write_word(P.DONE_PORT, 0x77)
        assert harness.done and harness.done_value == 0x77
        harness.reset()
        assert harness.done  # latches across reset by design

    def test_violation_writes_logged(self, bus):
        harness = attach(HarnessPorts(), bus)
        bus.write_word(P.VIOLATION_PORT, 3)
        assert harness.violation_writes[0][1] == 3
