"""Fleet subsystem: registry, transport, protocol, campaigns, CLI codes.

The scale-sensitive negative paths the subsystem exists for:

* every device in a wave rejects tampered packages (device-side MAC
  check on the modelled ROM path) and rollback packages (monotonic
  version check);
* the campaign's failure threshold halts the rollout and skips the
  remaining waves;
* honest devices still land on the new version even over a lossy,
  reordering channel.
"""

from collections import Counter

import pytest

from repro.casu.update import UpdatePackage, UpdateStatus
from repro.cli import main as cli_main
from repro.fleet import (
    CampaignConfig,
    CampaignStatus,
    FleetSimulation,
    Lifecycle,
    MsgKind,
    SimChannel,
    VerifierSession,
)
from repro.fleet.registry import FleetError, FleetRegistry
from repro.fleet.simulation import UPDATE_TARGET, default_payload


@pytest.fixture(scope="module")
def small_fleet():
    """A 60-device fleet shared by read-mostly tests."""
    fleet = FleetSimulation(size=60, seed=3)
    fleet.attest_all()
    return fleet


# ---- registry --------------------------------------------------------------


class TestRegistry:
    def test_enroll_derives_per_device_keys(self):
        registry = FleetRegistry()
        a = registry.enroll("a")
        b = registry.enroll("b")
        assert a.key.secret != b.key.secret
        assert a.state is Lifecycle.ENROLLED

    def test_duplicate_enroll_rejected(self):
        registry = FleetRegistry()
        registry.enroll("a")
        with pytest.raises(FleetError):
            registry.enroll("a")

    def test_unknown_lookup_rejected(self):
        with pytest.raises(FleetError):
            FleetRegistry().get("ghost")

    def test_quarantined_not_manageable(self):
        registry = FleetRegistry()
        registry.enroll("a")
        registry.enroll("b")
        registry.quarantine("a")
        assert registry.manageable_ids() == ["b"]


# ---- transport -------------------------------------------------------------


class TestTransport:
    def test_lossless_channel_is_fifo(self):
        channel = SimChannel()
        for index in range(5):
            channel.send("v", "d", "k", index)
        assert [env.body for env in channel.drain()] == [0, 1, 2, 3, 4]

    def test_loss_drops_deterministically(self):
        sent = [SimChannel(loss=0.5, seed=s).send("v", "d", "k", 0)
                for s in range(32)]
        dropped = sum(1 for env in sent if env is None)
        assert 0 < dropped < 32
        # Same seeds -> same fates.
        again = [SimChannel(loss=0.5, seed=s).send("v", "d", "k", 0)
                 for s in range(32)]
        assert [e is None for e in sent] == [e is None for e in again]

    def test_reorder_changes_delivery_order(self):
        channel = SimChannel(reorder=0.9, seed=1)
        for index in range(20):
            channel.send("v", "d", "k", index)
        order = [env.body for env in channel.drain()]
        assert sorted(order) == list(range(20))
        assert order != list(range(20))

    def test_full_partition_is_modellable(self):
        # loss=1.0 (the closed interval) models a fully partitioned
        # channel: every message dropped, deterministically.
        channel = SimChannel(loss=1.0, seed=0)
        assert all(channel.send("v", "d", "k", index) is None
                   for index in range(10))
        assert channel.drain() == []
        assert channel.stats.dropped == 10
        with pytest.raises(ValueError):
            SimChannel(loss=1.01)
        with pytest.raises(ValueError):
            SimChannel(reorder=-0.1)

    def test_fully_partitioned_fleet_degrades_cleanly(self):
        # Every exchange times out, nothing is quarantined, and no
        # verifier state is corrupted: devices stay ENROLLED (their
        # offers roll back to the pre-wave state, not to ACTIVE).
        fleet = FleetSimulation(size=6, loss=1.0)
        assert all(result.detail == "unreachable"
                   for result in fleet.attest_all().values())
        report = fleet.rollout(version=1)
        assert report.status is CampaignStatus.HALTED
        assert report.applied == 0
        assert report.waves[0].statuses["unreachable"] == report.waves[0].size
        assert not fleet.registry.by_state(Lifecycle.QUARANTINED)
        assert len(fleet.registry.by_state(Lifecycle.ENROLLED)) == 6
        assert fleet.registry.version_histogram() == {0: 6}


# ---- protocol --------------------------------------------------------------


class TestProtocol:
    def test_enroll_records_golden_hash(self, small_fleet):
        record = next(iter(small_fleet.registry))
        assert record.firmware_hash is not None
        assert record.firmware_version == 0

    def test_attest_activates(self, small_fleet):
        assert small_fleet.registry.by_state(Lifecycle.ACTIVE)

    def test_attest_over_lossy_link_retries(self):
        fleet = FleetSimulation(size=5, loss=0.3, seed=11)
        results = fleet.attest_all()
        assert all(result.ok for result in results.values())
        assert any(result.attempts > 1 for result in results.values())

    def test_corrupted_firmware_quarantined_with_violation_log(self):
        fleet = FleetSimulation(size=3)
        fleet.attest_all()
        victim = fleet.registry.ids()[1]
        fleet.corrupt_firmware(victim)
        result = fleet.attest_all([victim])[victim]
        assert not result.ok and result.detail == "hash-mismatch"
        assert fleet.registry.get(victim).state is Lifecycle.QUARANTINED
        assert fleet.telemetry.violations["illegal-instruction"] >= 1

    def test_forged_report_mac_quarantines(self):
        fleet = FleetSimulation(size=2)
        victim = fleet.registry.ids()[0]
        # Device signs with a key that doesn't match the registry's.
        from repro.casu.update import UpdateKey

        fleet.devices[victim].update_engine.key = UpdateKey.derive("mallory")
        result = fleet.attest_all([victim])[victim]
        assert not result.ok and result.detail == "bad-mac"
        assert fleet.registry.get(victim).state is Lifecycle.QUARANTINED

    def test_nonces_strictly_increase_across_sessions(self):
        # The high-water mark lives on the record, not the session: a
        # fresh session never reissues an old challenge nonce.
        fleet = FleetSimulation(size=1)
        victim = fleet.registry.ids()[0]
        record = fleet.registry.get(victim)
        first = record.nonce_high_water
        assert first > 0  # enrollment consumed nonce(s)
        fleet.attest_all()
        fresh = VerifierSession(record, fleet.agents[victim],
                                fleet.transport.link(victim))
        assert fresh.attest().ok
        assert record.nonce_high_water > first + 1

    def test_replayed_report_rejected_and_quarantined(self):
        """Regression: a captured SignedReport from an earlier session
        used to verify in a later one because nonces restarted at 1."""
        from repro.fleet.protocol import VERIFIER_ID, Challenge

        fleet = FleetSimulation(size=2)
        victim = fleet.registry.ids()[0]
        record = fleet.registry.get(victim)
        link = fleet.transport.link(victim)
        agent = fleet.agents[victim]
        # Capture one authentic report off the wire (attacker on the
        # uplink): challenge the device directly and pocket the reply.
        nonce = record.nonce_high_water + 1
        record.nonce_high_water = nonce
        link.down.send(VERIFIER_ID, victim, MsgKind.ATTEST_REQ.value,
                       Challenge(nonce))
        agent.pump()
        captured = [envelope.body for envelope in link.up.drain()
                    if envelope.kind == MsgKind.ATTEST_REPORT.value][0]
        assert captured.verify(record.key, b"attest")  # it IS authentic

        # "Next process run": a brand-new session over the same record,
        # the real device silenced, the attacker serving the capture.
        class SilentAgent:
            def pump(self):
                pass

        replayed = VerifierSession(record, SilentAgent(), link,
                                   max_attempts=2)
        link.up.send(victim, VERIFIER_ID, MsgKind.ATTEST_REPORT.value,
                     captured)
        result = replayed.attest()
        assert not result.ok and result.detail == "replay"
        assert record.state is Lifecycle.QUARANTINED

    def test_replayed_update_ack_rejected_and_quarantined(self):
        from repro.fleet.protocol import VERIFIER_ID
        from repro.fleet.simulation import UPDATE_TARGET, default_payload

        fleet = FleetSimulation(size=1)
        victim = fleet.registry.ids()[0]
        record = fleet.registry.get(victim)
        link = fleet.transport.link(victim)
        # A real offer produces a real, capturable ack.
        session = fleet.session(victim)
        package = UpdatePackage.make(record.key, UPDATE_TARGET,
                                     default_payload(1), version=1)
        captured = []
        original_drain = link.up.drain

        def tapping_drain():
            envelopes = original_drain()
            captured.extend(e.body for e in envelopes
                            if e.kind == MsgKind.UPDATE_ACK.value)
            return envelopes

        link.up.drain = tapping_drain
        assert session.offer_update(package).applied
        link.up.drain = original_drain
        assert captured

        class SilentAgent:
            def pump(self):
                pass

        fresh = VerifierSession(record, SilentAgent(), link, max_attempts=2)
        link.up.send(victim, VERIFIER_ID, MsgKind.UPDATE_ACK.value,
                     captured[0])
        offer = fresh.offer_update(UpdatePackage.make(
            record.key, UPDATE_TARGET, default_payload(2), version=2))
        assert offer.status is None and offer.detail == "replay"
        assert record.state is Lifecycle.QUARANTINED

    def test_stale_report_quarantines_instead_of_rolling_back(self):
        # A verified report whose device-local cycle runs backwards is
        # served-up old evidence; last_seen must never move backwards.
        fleet = FleetSimulation(size=1)
        victim = fleet.registry.ids()[0]
        fleet.run_all(max_cycles=500)
        fleet.attest_all()
        record = fleet.registry.get(victim)
        seen = record.last_seen
        assert seen is not None and seen > 0
        fleet.devices[victim].cycle = 0  # device "rewound" to its past
        result = fleet.attest_all([victim])[victim]
        assert not result.ok and result.detail == "stale-report"
        assert record.state is Lifecycle.QUARANTINED
        assert record.last_seen == seen  # untouched, not rolled back

    def test_forged_ack_mac_distinguished_from_unreachable(self):
        """Regression: a forged-MAC ack used to count as 'unreachable'
        and the device was never quarantined."""
        fleet = FleetSimulation(size=2)
        victim, honest = fleet.registry.ids()
        # After enrollment, swap the device's key: its acks no longer
        # authenticate under the key the registry provisioned.
        from repro.casu.update import UpdateKey

        fleet.devices[victim].update_engine.key = UpdateKey.derive("mallory")
        report = fleet.rollout(version=1,
                               config=CampaignConfig(failure_threshold=1.0))
        statuses = Counter()
        for wave in report.waves:
            statuses.update(wave.statuses)
        assert statuses["bad-ack-mac"] == 1
        assert statuses["unreachable"] == 0
        assert fleet.registry.get(victim).state is Lifecycle.QUARANTINED
        assert fleet.registry.get(honest).state is Lifecycle.ACTIVE
        assert fleet.telemetry.update_statuses["bad-ack-mac"] == 1


# ---- campaigns -------------------------------------------------------------


class TestRollout:
    def test_honest_rollout_completes(self):
        fleet = FleetSimulation(size=120)
        report = fleet.rollout(version=1)
        assert report.status is CampaignStatus.COMPLETE
        assert report.applied == 120 and report.failed == 0
        assert len(report.waves) == 3
        assert all(device.update_engine.current_version == 1
                   for device in fleet.devices.values())
        assert fleet.registry.version_histogram() == {1: 120}

    def test_honest_rollout_survives_lossy_reordering_channel(self):
        fleet = FleetSimulation(size=80, loss=0.1, reorder=0.2, seed=5,
                                max_attempts=8)
        report = fleet.rollout(version=1)
        assert report.status is CampaignStatus.COMPLETE
        assert report.applied == 80
        assert all(device.update_engine.current_version == 1
                   for device in fleet.devices.values())

    def test_every_tampered_package_rejected_device_side(self):
        fleet = FleetSimulation(size=100)
        report = fleet.rollout(version=1, tamper_fraction=0.08,
                               config=CampaignConfig(failure_threshold=0.2))
        assert report.status is CampaignStatus.COMPLETE
        # All 8 tampered devices rejected on the MAC check; none landed.
        rejected = sum(wave.statuses[UpdateStatus.BAD_MAC.value]
                       for wave in report.waves)
        assert rejected == 8 and report.failed == 8
        assert report.applied == 92
        for record in fleet.registry:
            device = fleet.devices[record.device_id]
            if record.state is Lifecycle.QUARANTINED:
                assert device.update_engine.current_version == 0
                assert device.peek_word(UPDATE_TARGET) == 0  # never copied
            else:
                assert device.update_engine.current_version == 1

    def test_every_rollback_package_rejected_device_side(self):
        fleet = FleetSimulation(size=100)
        assert fleet.rollout(version=2).status is CampaignStatus.COMPLETE
        report = fleet.rollout(version=3, rollback_fraction=0.06,
                               config=CampaignConfig(failure_threshold=0.2))
        assert report.status is CampaignStatus.COMPLETE
        rejected = sum(wave.statuses[UpdateStatus.STALE_VERSION.value]
                       for wave in report.waves)
        assert rejected == 6 and report.failed == 6
        # Rollback victims keep their authentic v2 firmware and stay
        # manageable (not quarantined -- their link wasn't forging MACs).
        stale = [record for record in fleet.registry
                 if record.firmware_version == 2]
        assert len(stale) == 6
        assert all(record.state is Lifecycle.ACTIVE for record in stale)

    def test_failure_threshold_halts_and_skips_later_waves(self):
        fleet = FleetSimulation(size=200)
        report = fleet.rollout(version=1, tamper_fraction=0.5)
        assert report.halted
        assert report.status is CampaignStatus.HALTED
        assert "threshold" in report.halt_reason
        assert len(report.waves) == 1  # halted after the canary wave
        assert report.skipped == 200 - report.waves[0].size
        # Devices in skipped waves were never marked UPDATING.
        untouched = fleet.registry.by_state(Lifecycle.ENROLLED)
        assert len(untouched) == report.skipped

    def test_wave_plan_covers_everyone_once(self):
        fleet = FleetSimulation(size=37)
        report = fleet.rollout(version=1)
        assert sum(wave.size for wave in report.waves) == 37

    def test_campaign_throughput_reported(self):
        fleet = FleetSimulation(size=50)
        report = fleet.rollout(version=1)
        assert report.elapsed_s > 0
        assert report.devices_per_sec > 0

    def test_attest_after_rollout_keeps_fleet_manageable(self):
        # Regression: a successful update must not look like firmware
        # tampering on the next heartbeat (the verifier's pinned hash
        # is stale by construction after an apply).
        fleet = FleetSimulation(size=10)
        fleet.attest_all()
        report = fleet.rollout(version=1)
        assert report.applied == 10
        results = fleet.attest_all()
        assert all(result.ok for result in results.values())
        assert len(fleet.registry.by_state(Lifecycle.ACTIVE)) == 10
        assert fleet.rollout(version=2).applied == 10  # still manageable

    def test_rejections_feed_telemetry(self):
        fleet = FleetSimulation(size=50)
        fleet.rollout(version=1, tamper_fraction=0.1,
                      config=CampaignConfig(failure_threshold=0.5))
        assert fleet.telemetry.update_statuses[UpdateStatus.BAD_MAC.value] == 5
        assert fleet.telemetry.rejection_count() == 5
        assert fleet.telemetry.device_rejection_count() == 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(wave_fractions=(0.5, 0.2, 1.0))
        with pytest.raises(ValueError):
            CampaignConfig(wave_fractions=(0.5,))
        with pytest.raises(ValueError):
            CampaignConfig(batch_size=0)
        with pytest.raises(ValueError):
            CampaignConfig(workers=-1)
        with pytest.raises(ValueError):
            CampaignConfig(failure_threshold=-0.1)
        with pytest.raises(ValueError):
            CampaignConfig(backend="fiber")

    def test_simulation_validates_eagerly(self):
        with pytest.raises(ValueError):
            FleetSimulation(size=-1)
        with pytest.raises(ValueError):
            FleetSimulation(size=0, loss=5.0)

    def test_adversaries_drawn_from_manageable_fleet(self):
        # Quarantined devices never receive offers, so they must not
        # absorb part of the requested adversarial fraction.
        fleet = FleetSimulation(size=50)
        for device_id in fleet.registry.ids()[:10]:
            fleet.registry.quarantine(device_id)
        report = fleet.rollout(version=1, tamper_fraction=0.2,
                               config=CampaignConfig(failure_threshold=1.0))
        rejected = sum(wave.statuses[UpdateStatus.BAD_MAC.value]
                       for wave in report.waves)
        assert rejected == 8  # 20% of the 40 manageable, not of all 50


# ---- device attestation hook ----------------------------------------------


class TestAttestationReport:
    def test_report_tracks_update(self, small_fleet):
        fleet = FleetSimulation(size=1)
        device = next(iter(fleet.devices.values()))
        before = device.attestation_report()
        package = UpdatePackage.make(device.update_engine.key, UPDATE_TARGET,
                                     default_payload(1), version=1)
        assert device.apply_update(package).ok
        after = device.attestation_report()
        assert after.firmware_version == 1
        assert after.firmware_hash != before.firmware_hash

    def test_report_message_is_canonical(self, small_fleet):
        device = next(iter(small_fleet.devices.values()))
        report = device.attestation_report()
        assert report.message() == report.message()
        assert report.firmware_hash.encode() in report.message()


# ---- CLI exit codes --------------------------------------------------------


class TestCliExitCodes:
    def test_fleet_rollout_complete_exit_0(self, capsys):
        assert cli_main(["fleet", "rollout", "--devices", "40"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out

    def test_fleet_rollout_halted_exit_3(self, capsys):
        code = cli_main(["fleet", "rollout", "--devices", "40",
                         "--tamper-fraction", "0.5"])
        assert code == 3
        assert "halted" in capsys.readouterr().out

    def test_fleet_rollout_rejections_below_threshold_exit_0(self, capsys):
        code = cli_main(["fleet", "rollout", "--devices", "50",
                         "--tamper-fraction", "0.04",
                         "--rollback-fraction", "0.04",
                         "--failure-threshold", "0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rejected-bad-mac" in out and "rejected-stale-version" in out

    def test_fleet_enroll_exit_0(self, capsys):
        assert cli_main(["fleet", "enroll", "--devices", "10"]) == 0
        assert "enrolled 10/10" in capsys.readouterr().out

    def test_fleet_status_exit_0(self, capsys):
        assert cli_main(["fleet", "status", "--devices", "10"]) == 0
        assert "fleet of 10 devices" in capsys.readouterr().out

    def test_attack_hijack_exit_2(self, capsys):
        code = cli_main(["attack", "return_address_smash",
                         "--security", "none"])
        assert code == 2
        assert "hijacked" in capsys.readouterr().out

    def test_attack_detected_exit_0(self, capsys):
        code = cli_main(["attack", "return_address_smash",
                         "--security", "eilid"])
        assert code == 0
        assert "reset" in capsys.readouterr().out

    def test_unknown_attack_exit_1(self, capsys):
        assert cli_main(["attack", "nonsense"]) == 1

    def test_bad_fleet_flags_exit_1(self, capsys):
        assert cli_main(["fleet", "rollout", "--devices", "5",
                         "--waves", "0.5,0.2,1.0"]) == 1
        assert cli_main(["fleet", "status", "--devices", "5",
                         "--loss", "-0.5"]) == 1
        assert cli_main(["fleet", "rollout", "--devices", "5",
                         "--batch-size", "0"]) == 1
        assert cli_main(["fleet", "rollout", "--devices", "5",
                         "--failure-threshold", "-0.1"]) == 1
        assert cli_main(["fleet", "enroll", "--devices", "0",
                         "--loss", "5.0"]) == 1
        assert cli_main(["fleet", "enroll", "--devices", "-3"]) == 1
        assert "error" in capsys.readouterr().err

    def test_argparse_errors_exit_1_not_2(self, capsys):
        # exit 2 is reserved for security failures; bad flag *types*
        # and unknown subcommands must exit 1 like other usage errors.
        assert cli_main(["fleet", "rollout", "--devices", "abc"]) == 1
        assert cli_main(["no-such-command"]) == 1
        assert "error" in capsys.readouterr().err


class TestShippedDeviceState:
    """Process-backend workers must see mutated replicas' true state.

    A device whose version counter ran ahead out of band answers the
    campaign's offer with its real (higher) version, which the
    verifier records.  The thread backend (live devices) is ground
    truth; the process backend only matches it if the parent ships
    the mutated replica's snapshot instead of the honest record
    rebuild -- a rebuilt worker device sits at the record's version
    and silently takes the downgrade.
    """

    def _run(self, **config_kwargs):
        fleet = FleetSimulation(size=4)
        victim = fleet.registry.ids()[1]
        fleet.devices[victim].update_engine.current_version = 5
        fleet.mark_mutated(victim)
        report = fleet.rollout(version=1, config=CampaignConfig(
            failure_threshold=1.0, **config_kwargs))
        return fleet, victim, report

    def test_process_matches_thread_for_mutated_replicas(self):
        results = {}
        for backend in ("thread", "process"):
            fleet, victim, report = self._run(backend=backend, workers=2)
            results[backend] = (
                report.applied, report.failed,
                fleet.registry.get(victim).state,
                fleet.registry.get(victim).firmware_version)
        assert results["process"] == results["thread"]
        # The verifier learned the device's true version -- the
        # replica did not silently take the downgrade.
        _, _, _, version = results["process"]
        assert version == 5

    def test_legacy_rebuild_misses_the_mutation(self):
        # ship_device_state=False documents the pre-snapshot gap this
        # closes: the worker rebuilds an honest device at the record's
        # version, which accepts the downgrade the real device refuses.
        fleet, victim, report = self._run(backend="process", workers=2,
                                          ship_device_state=False)
        assert report.applied == 4 and report.failed == 0
        assert fleet.registry.get(victim).firmware_version == 1

    def test_forced_shipping_keeps_honest_rollouts_identical(self):
        fleet = FleetSimulation(size=4)
        report = fleet.rollout(version=1, config=CampaignConfig(
            backend="process", workers=2, ship_device_state=True))
        assert report.status is CampaignStatus.COMPLETE
        assert report.applied == 4
        assert all(record.firmware_version == 1
                   for record in fleet.registry)
