"""Assembler front-end, expression evaluator, linker, listing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AsmSyntaxError, LinkError, RangeError, SymbolError
from repro.toolchain import link, parse_source, render_listing, parse_listing
from repro.toolchain.expr import eval_expr, is_pure_literal, referenced_symbols
from repro.toolchain.operand_spec import parse_operand, SpecKind
from repro.toolchain.parser import split_operands, strip_comment


class TestExpr:
    @pytest.mark.parametrize("text,expected", [
        ("42", 42), ("0x10", 16), ("0b101", 5), ("0o17", 15), ("'A'", 65),
        ("'\\n'", 10), ("1+2*3", 7), ("(1+2)*3", 9), ("10/3", 3), ("10%3", 1),
        ("1<<4", 16), ("0xFF>>4", 15), ("0xF0|0x0F", 255), ("0xFF&0x0F", 15),
        ("0xFF^0x0F", 0xF0), ("-5", -5), ("~0", -1), ("2*-3", -6),
        ("1+2+3+4", 10), ("100-10-5", 85),
    ])
    def test_literals_and_operators(self, text, expected):
        assert eval_expr(text) == expected

    def test_symbols(self):
        assert eval_expr("base+4", {"base": 0x200}) == 0x204

    def test_undefined_symbol(self):
        with pytest.raises(SymbolError):
            eval_expr("nope")

    @pytest.mark.parametrize("bad", ["", "1+", "(1", "1)", "`", "1 2"])
    def test_syntax_errors(self, bad):
        with pytest.raises(AsmSyntaxError):
            eval_expr(bad)

    def test_division_by_zero(self):
        with pytest.raises(AsmSyntaxError):
            eval_expr("1/0")

    @pytest.mark.parametrize("text,expected", [
        ("42", True), ("0x10", True), ("-1", True), ("'x'", True),
        ("1+1", False), ("sym", False), ("", False),
    ])
    def test_is_pure_literal(self, text, expected):
        assert is_pure_literal(text) is expected

    def test_referenced_symbols(self):
        assert referenced_symbols("a + b*2 - a") == {"a", "b"}

    @given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000),
           c=st.integers(1, 100))
    def test_arithmetic_matches_python(self, a, b, c):
        assert eval_expr(f"({a}) + ({b}) * ({c})") == a + b * c
        assert eval_expr(f"(({a}) - ({b})) / ({c})") == (a - b) // c


class TestOperandParsing:
    @pytest.mark.parametrize("text,kind", [
        ("r10", SpecKind.REG), ("pc", SpecKind.REG), ("sp", SpecKind.REG),
        ("#42", SpecKind.IMM), ("#label", SpecKind.IMM),
        ("&0x200", SpecKind.ABS), ("&var", SpecKind.ABS),
        ("@r5", SpecKind.IND), ("@r5+", SpecKind.AUTOINC),
        ("4(r10)", SpecKind.IDX), ("-2(r1)", SpecKind.IDX),
        ("label", SpecKind.SYM), ("label+2", SpecKind.SYM),
    ])
    def test_operand_kinds(self, text, kind):
        assert parse_operand(text).kind is kind

    @pytest.mark.parametrize("bad", ["", "#", "&", "@", "@zz", "(r10)", "4()"])
    def test_bad_operands(self, bad):
        with pytest.raises(AsmSyntaxError):
            parse_operand(bad)

    def test_render_roundtrip(self):
        for text in ("r10", "#42", "&0x200", "@r5", "@r5+", "4(r10)", "label"):
            spec = parse_operand(text)
            again = parse_operand(spec.render())
            assert again.kind is spec.kind and again.reg == spec.reg


class TestParserBasics:
    def test_strip_comment_respects_strings(self):
        assert strip_comment("mov #';', r5 ; real comment") == "mov #';', r5 "

    def test_split_operands_nested(self):
        assert split_operands("4(r10), r11") == ["4(r10)", "r11"]
        assert split_operands('"a,b", 2') == ['"a,b"', "2"]

    def test_labels_stack(self):
        unit = parse_source("a:\nb: c: mov #1, r4\n", "t.s")
        labels = unit.labels
        assert labels == ["a", "b", "c"]

    def test_sections_and_directives(self):
        unit = parse_source(
            "    .data\nv:\n    .word 1, 2, 3\n    .text\n    nop\n"
            "    .bss\nbuf:\n    .space 16\n",
            "t.s",
        )
        assert len(unit.statements(".data")) == 2
        assert len(unit.statements(".text")) == 1
        assert len(unit.statements(".bss")) == 2

    def test_equates_and_globals(self):
        unit = parse_source("    .equ PORT, 0x10\n    .global main\n", "t.s")
        assert unit.equates == {"PORT": "0x10"}
        assert unit.globals_ == {"main"}

    def test_vector_directive(self):
        unit = parse_source("    .vector 9, handler\n", "t.s")
        assert unit.vectors == {9: "handler"}

    def test_duplicate_vector_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_source("    .vector 9, a\n    .vector 9, b\n", "t.s")

    @pytest.mark.parametrize("bad", [
        "    .unknown 3",
        "    bogus r1, r2",
        "    mov r1",  # arity
        "    ret r1",  # arity
        "    .section .nope",
        "    .align 3",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(AsmSyntaxError):
            parse_source(bad + "\n", "t.s")

    def test_ascii_escapes(self):
        unit = parse_source('    .asciz "a\\n\\"b"\n', "t.s")
        stmt = unit.statements(".text")[0]
        assert stmt.string == 'a\n"b'


MINIMAL = """
    .text
__start:
    mov #0x0a00, r1
halt:
    jmp halt
    .vector 15, __start
"""


class TestLinker:
    def test_layout_bases(self):
        program = link([parse_source(MINIMAL, "t.s")])
        assert program.section_extent(".text").base == 0xE000
        assert program.entry == 0xE000

    def test_data_and_bss_placement(self):
        src = MINIMAL + "    .data\nv:\n    .word 7\n    .bss\nb:\n    .space 4\n"
        program = link([parse_source(src, "t.s")])
        assert program.symbols["v"] == 0x0200
        assert program.symbols["b"] == 0x0202

    def test_duplicate_label_across_units(self):
        a = parse_source(MINIMAL, "a.s")
        b = parse_source("    .text\n__start:\n    nop\n", "b.s")
        with pytest.raises(SymbolError):
            link([a, b])

    def test_undefined_symbol_in_operand(self):
        src = "    .text\n__start:\n    mov #missing, r4\n    .vector 15, __start\n"
        with pytest.raises(SymbolError):
            link([parse_source(src, "t.s")])

    def test_missing_reset_vector(self):
        with pytest.raises(LinkError):
            link([parse_source("    .text\nmain:\n    nop\n", "t.s")])

    def test_jump_out_of_range(self):
        body = "    .text\n__start:\n    jmp far\n" + "    nop\n" * 600 + \
               "far:\n    nop\n    .vector 15, __start\n"
        with pytest.raises(RangeError):
            link([parse_source(body, "t.s")])

    def test_equate_chain(self):
        src = MINIMAL + "    .equ A, B+1\n    .equ B, 5\n"
        program = link([parse_source(src, "t.s")])
        assert program.symbols["A"] == 6

    def test_equate_cycle_detected(self):
        src = MINIMAL + "    .equ A, B\n    .equ B, A\n"
        with pytest.raises(SymbolError):
            link([parse_source(src, "t.s")])

    def test_section_overflow(self):
        src = "    .text\n__start:\n" + "    nop\n" * 5000 + "    .vector 15, __start\n"
        with pytest.raises(LinkError):
            link([parse_source(src, "t.s")])

    def test_current_location_symbol(self):
        src = "    .text\n__start:\n    jmp $\n    .vector 15, __start\n"
        program = link([parse_source(src, "t.s")])
        rec = [r for r in program.records if r.insn is not None][0]
        assert rec.insn.offset == -1  # self-loop

    def test_unit_sizes(self):
        src = MINIMAL + "    .data\nv:\n    .word 1, 2\n"
        program = link([parse_source(src, "t.s")])
        assert program.unit_sizes["t.s"][".data"] == 4
        assert program.code_size(units={"t.s"}) == program.unit_sizes["t.s"][".text"] + 4

    def test_default_handler_fills_vectors(self):
        src = MINIMAL.replace("halt:", "__default_handler:\n    reti\nhalt:")
        program = link([parse_source(src, "t.s")])
        assert program.vectors[0] == program.symbols["__default_handler"]


class TestListing:
    def test_roundtrip_addresses_and_sizes(self):
        src = MINIMAL + "    .data\nmsg:\n    .asciz \"hi\"\n"
        program = link([parse_source(src, "t.s")])
        text = render_listing(program)
        index = parse_listing(text)
        assert index.label_address("__start") == 0xE000
        assert index.labels["halt"] == program.symbols["halt"]
        assert index.symbols["msg"] == program.symbols["msg"]

    def test_next_address(self):
        src = (
            "    .text\n__start:\n    mov #0x1234, r10\n    nop\nhalt:\n"
            "    jmp halt\n    .vector 15, __start\n"
        )
        program = link([parse_source(src, "t.s")])
        index = parse_listing(render_listing(program))
        assert index.next_address(0xE000) == 0xE004  # two-word mov
        assert index.next_address(0xE004) == 0xE006  # one-word nop

    def test_call_note_annotation(self):
        src = (
            "    .text\n__start:\n    call #main\nhalt:\n    jmp halt\n"
            "main:\n    ret\n    .vector 15, __start\n"
        )
        program = link([parse_source(src, "t.s")])
        index = parse_listing(render_listing(program))
        calls = list(index.instructions("call"))
        assert calls[0].note == "main"

    def test_unit_ranges(self):
        a = parse_source(MINIMAL, "a.s")
        b = parse_source("    .text\nmain:\n    nop\n    ret\n", "b.s")
        program = link([a, b])
        index = parse_listing(render_listing(program))
        assert index.in_unit(program.symbols["main"], "b.s")
        assert not index.in_unit(program.symbols["main"], "a.s")
        assert index.in_unit(0xE000, "a.s")

    def test_jump_targets_absolute_in_listing(self):
        program = link([parse_source(MINIMAL, "t.s")])
        text = render_listing(program)
        assert "jmp 0x" in text
