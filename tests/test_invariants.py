"""The repo invariant checker (tools/check_invariants.py).

The checker is CI's guard for contracts a general linter can't see:
closed event kinds, enveloped CLI JSON, deterministic fault/analysis
paths.  These tests pin both directions -- the real repo is clean, and
seeded violations in a synthetic tree are caught.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "check_invariants", REPO_ROOT / "tools" / "check_invariants.py")
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


EVENTS_STUB = '''
EVENT_KINDS = (
    "enroll",
    "alert",
)
'''

CLI_STUB = '''
def _print_json(doc):
    pass


def envelope(schema, **payload):
    return {"schema": schema, **payload}


def good(outcome):
    _print_json(envelope("x", ok=True))
    _print_json(outcome.to_dict())
'''


def _tree(tmp_path: Path, **files: str) -> Path:
    """Materialise a minimal repo tree; files are root-relative paths."""
    defaults = {
        "src/repro/obs/events.py": EVENTS_STUB,
        "src/repro/cli.py": CLI_STUB,
    }
    defaults.update(files)
    for rel, text in defaults.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


# ---- the real repo is clean -------------------------------------------------


def test_repo_is_clean():
    assert checker.run_checks(REPO_ROOT) == []


def test_cli_exit_code_clean(capsys):
    assert checker.main(["--root", str(REPO_ROOT)]) == 0
    assert "invariants ok" in capsys.readouterr().out


def test_event_kinds_parse_without_import():
    kinds = checker.load_event_kinds(REPO_ROOT)
    assert "analysis-finding" in kinds
    assert "fault-outcome" in kinds


# ---- rule 1: closed event kinds ---------------------------------------------


def test_bad_emit_kind_is_caught(tmp_path):
    root = _tree(tmp_path, **{
        "src/repro/thing.py":
            'class T:\n'
            '    def go(self):\n'
            '        self.events.emit("bogus-kind", {})\n',
    })
    problems = checker.run_checks(root)
    assert len(problems) == 1
    assert "bogus-kind" in problems[0]
    assert "src/repro/thing.py:3" in problems[0].replace("\\", "/")


def test_known_kind_and_log_receiver_pass(tmp_path):
    root = _tree(tmp_path, **{
        "src/repro/thing.py":
            'class T:\n'
            '    def go(self, log):\n'
            '        self.events.emit("enroll", {})\n'
            '        log.emit("alert", {})\n'
            '        self.registry.events.emit("enroll", {})\n',
    })
    assert checker.run_checks(root) == []


def test_plain_self_emit_is_not_an_event_log(tmp_path):
    # minicc's codegen emits asm text via self.emit("...") -- that is
    # not an event log and must not be checked against EVENT_KINDS.
    root = _tree(tmp_path, **{
        "src/repro/minicc/codegen.py":
            'class Gen:\n'
            '    def line(self):\n'
            '        self.emit("mov r1, r2")\n',
    })
    assert checker.run_checks(root) == []


# ---- rule 2: CLI JSON goes through the envelope -----------------------------


def test_raw_dict_to_print_json_is_caught(tmp_path):
    root = _tree(tmp_path, **{
        "src/repro/cli.py": CLI_STUB +
            '\n\ndef bad():\n'
            '    _print_json({"ad": "hoc"})\n',
    })
    problems = checker.run_checks(root)
    assert len(problems) == 1
    assert "_print_json" in problems[0]
    assert "(in bad)" in problems[0]


def test_blessed_local_passes(tmp_path):
    root = _tree(tmp_path, **{
        "src/repro/cli.py": CLI_STUB +
            '\n\ndef via_local(outcome):\n'
            '    doc = outcome.to_dict()\n'
            '    doc["extra"] = 1\n'
            '    _print_json(doc)\n'
            '\n\ndef via_setdefault(payload):\n'
            '    payload.setdefault("schema", "eilid.x")\n'
            '    _print_json(payload)\n',
    })
    assert checker.run_checks(root) == []


# ---- rule 3: deterministic paths --------------------------------------------


@pytest.mark.parametrize("snippet,needle", [
    ("import time\n\ndef f():\n    return time.time()\n", "wall-clock"),
    ("import time\n\ndef f():\n    return time.perf_counter()\n", "wall-clock"),
    ("import random\n\ndef f():\n    return random.random()\n", "unseeded"),
    ("import random\n\ndef f():\n    return random.Random()\n", "without a seed"),
])
def test_nondeterminism_in_plan_is_caught(tmp_path, snippet, needle):
    root = _tree(tmp_path, **{"src/repro/faults/plan.py": snippet})
    problems = checker.run_checks(root)
    assert len(problems) == 1
    assert needle in problems[0]


def test_seeded_random_in_analyze_passes(tmp_path):
    root = _tree(tmp_path, **{
        "src/repro/analyze/runner.py":
            "import random\n\ndef f(seed):\n"
            "    return random.Random(seed).random()\n",
    })
    # random.Random(seed) is fine; .random() on the *instance* is fine
    # too -- only the module-level functions are unseeded.
    assert checker.run_checks(root) == []
