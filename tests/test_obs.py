"""The observability layer: event-log DB, metrics/spans, telemetry folds.

The properties this file guards:

* every event-log backend round-trips the same documents, recovers
  its sequence counter across reopen, and answers the longitudinal
  queries (device timeline, device rollup, campaign rollup, trends)
  identically;
* the metrics registry is genuinely off when disabled -- no series
  mutate -- and spans time their blocks when enabled;
* telemetry delta-folding stays correct across device resets,
  concurrent (process-backend-shaped) feeding, and a fleet restored
  from a durable store whose ``_seen`` baselines must re-sync so the
  first post-restart heartbeat does not re-fold old history;
* malformed ``reason=count`` entries are counted, surfaced in
  ``fleet status``, and never crash the fold.
"""

import json
import threading

import pytest

from repro.fleet import CampaignStatus, FleetSimulation
from repro.fleet.telemetry import FleetTelemetry, parse_violation_totals
from repro.obs import (
    EVENT_KINDS,
    JsonlEventLog,
    METRICS,
    MemoryEventLog,
    MetricsRegistry,
    ObsError,
    SqliteEventLog,
    open_event_log,
)

BACKENDS = ("memory", "jsonl", "sqlite")


def make_log(kind, tmp_path, name="events"):
    if kind == "memory":
        return MemoryEventLog()
    if kind == "jsonl":
        return JsonlEventLog(str(tmp_path / f"{name}.jsonl"))
    return SqliteEventLog(str(tmp_path / f"{name}.db"))


def emit_fixture(log):
    """A tiny two-campaign history every query test folds."""
    log.emit("enroll", device="d1", platform="TI MSP430")
    log.emit("enroll", device="d2", platform="TI MSP430")
    first = log.start_campaign(target_version=1, backend="thread")
    log.emit("offer", device="d1", campaign=first, status="applied")
    log.emit("offer", device="d2", campaign=first, status="rejected-bad-mac")
    log.emit("quarantine", device="d2", campaign=first,
             reason="rejected-bad-mac")
    log.emit("wave-commit", campaign=first, index=0, size=2)
    log.emit("campaign-end", campaign=first, status="complete", applied=1,
             failed=1, devices_per_sec=100.0, elapsed_s=0.02)
    second = log.start_campaign(target_version=2, backend="thread")
    log.emit("offer", device="d1", campaign=second, status="applied")
    log.emit("attest", device="d1", campaign=second, ok=True, detail="")
    log.emit("attest", device="d2", ok=False, detail="quarantined")
    log.emit("violation-delta", device="d1", deltas={"cfi-return": 2},
             resets=1)
    log.emit("campaign-end", campaign=second, status="complete", applied=1,
             failed=0, devices_per_sec=200.0, elapsed_s=0.01)
    log.flush()
    return first, second


# ---- the event log ----------------------------------------------------------


class TestEventLog:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_emit_validates_kind_and_sequences(self, kind, tmp_path):
        log = make_log(kind, tmp_path)
        with pytest.raises(ObsError, match="unknown event kind"):
            log.emit("reboot", device="d1")
        first = log.emit("enroll", device="d1")
        second = log.emit("attest", device="d1", ok=True)
        assert (first["seq"], second["seq"]) == (1, 2)
        assert second["kind"] == "attest"
        assert second["data"] == {"ok": True}
        assert len(log) == 2
        log.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_filters_are_anded(self, kind, tmp_path):
        log = make_log(kind, tmp_path)
        first, second = emit_fixture(log)
        assert len(log.events(kind="offer")) == 3
        assert len(log.events(kind="offer", device="d1")) == 2
        assert len(log.events(kind="offer", device="d1",
                              campaign=second)) == 1
        offers = log.events(kind="offer")
        assert len(log.events(since=offers[0]["seq"])) == len(log) - offers[0]["seq"]
        log.close()

    @pytest.mark.parametrize("kind", ("jsonl", "sqlite"))
    def test_durable_backends_recover_seq_across_reopen(self, kind, tmp_path):
        log = make_log(kind, tmp_path)
        path = log.path
        log.emit("enroll", device="d1")
        campaign = log.start_campaign(target_version=1)
        log.close()
        again = open_event_log(path)
        assert again.backend == kind
        # The next event and the next campaign id continue the old
        # sequence -- that is what keeps ids unique across restarts.
        doc = again.emit("attest", device="d1", ok=True)
        assert doc["seq"] == 3
        assert again.start_campaign(target_version=2) == "c4"
        assert campaign == "c2"
        again.close()

    def test_jsonl_ignores_torn_tail_line(self, tmp_path):
        log = make_log("jsonl", tmp_path)
        log.emit("enroll", device="d1")
        log.close()
        with open(log.path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "kind": "att')  # kill mid-append
        again = JsonlEventLog(log.path)
        assert [doc["kind"] for doc in again.events()] == ["enroll"]
        assert again.emit("attest", device="d1", ok=True)["seq"] == 2
        again.close()

    def test_sqlite_batches_until_flush(self, tmp_path):
        path = str(tmp_path / "events.db")
        log = SqliteEventLog(path)
        log.emit("enroll", device="d1")
        log.flush()
        log.emit("enroll", device="d2")  # uncommitted
        other = SqliteEventLog(path)
        assert len(other.events()) == 1  # only the flushed event landed
        other.close()
        log.close()  # close commits the rest
        final = SqliteEventLog(path)
        assert len(final.events()) == 2
        final.close()

    def test_open_event_log_dispatches_on_suffix(self, tmp_path):
        assert open_event_log(None).backend == "memory"
        assert open_event_log(":memory:").backend == "memory"
        sqlite_log = open_event_log(str(tmp_path / "a.db"))
        jsonl_log = open_event_log(str(tmp_path / "a.log"))
        assert sqlite_log.backend == "sqlite"
        assert jsonl_log.backend == "jsonl"
        sqlite_log.close()
        jsonl_log.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_queries_agree_across_backends(self, kind, tmp_path):
        log = make_log(kind, tmp_path)
        first, second = emit_fixture(log)

        timeline = [doc["kind"] for doc in log.device_timeline("d1")]
        assert timeline == ["enroll", "offer", "offer", "attest",
                            "violation-delta"]

        rollup = log.device_rollup()
        assert rollup["d1"]["offers"] == 2
        assert rollup["d1"]["campaigns"] == 2
        assert rollup["d1"]["violations"] == 2
        assert rollup["d1"]["quarantine_reason"] is None
        assert rollup["d2"]["quarantine_reason"] == "rejected-bad-mac"
        assert rollup["d2"]["attest_failures"] == 1
        assert rollup["d2"]["last_seen_ts"] >= rollup["d2"]["first_seen_ts"]
        assert rollup["d2"]["last_seen_seq"] > 0

        campaigns = log.campaign_rollup()
        assert [entry["campaign"] for entry in campaigns] == [first, second]
        assert campaigns[0]["offers"] == {"applied": 1,
                                          "rejected-bad-mac": 1}
        assert campaigns[0]["quarantined"] == 1
        assert campaigns[0]["quarantine_reasons"] == {"rejected-bad-mac": 1}
        assert campaigns[0]["waves"] == 1
        assert campaigns[1]["quarantined"] == 0

        trends = log.trends()
        assert trends["target_versions"] == [1, 2]
        assert trends["devices_per_sec"] == [100.0, 200.0]
        log.close()


# ---- the metrics registry ---------------------------------------------------


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 2.5)
        for value in (1.0, 3.0):
            registry.observe("h", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 5}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        registry.reset()
        assert registry.counter("a") == 0
        assert registry.histogram("h")["count"] == 0

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 1.0)
        with registry.span("s"):
            pass
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {},
                            "spans": []}
        # The disabled span is the shared no-op singleton: zero alloc.
        assert registry.span("x") is registry.span("y")

    def test_span_times_its_block(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            pass
        with registry.span("phase"):
            pass
        histogram = registry.histogram("phase.ms")
        assert histogram["count"] == 2
        assert histogram["min"] >= 0.0

    def test_run_steps_batch_instrumentation(self):
        from repro.api.firmware import build_firmware
        from repro.device import build_device
        from repro.fleet.simulation import fleet_firmware_spec

        program = build_firmware(fleet_firmware_spec()).program
        was_enabled = METRICS.enabled
        try:
            METRICS.enable(True)
            before = METRICS.counter("interpreter.steps")
            device = build_device(program, security="none")
            device.run_steps(100, stop_on_done=False)
            assert METRICS.counter("interpreter.steps") == before + 100
            # Disabled: the loop still runs, nothing is recorded.
            METRICS.enable(False)
            device.run_steps(50, stop_on_done=False)
            METRICS.enable(True)
            assert METRICS.counter("interpreter.steps") == before + 100
        finally:
            METRICS.enable(was_enabled)


# ---- telemetry folding ------------------------------------------------------


class _Report:
    def __init__(self, violation_totals=(), reset_count=0):
        self.violation_totals = list(violation_totals)
        self.reset_count = reset_count
        self.firmware_version = 1


class _Result:
    def __init__(self, ok=True, detail="", attempts=1, report=None):
        self.ok = ok
        self.detail = detail
        self.attempts = attempts
        self.report = report


class TestTelemetryFolding:
    def test_parse_violation_totals_counts_malformed(self):
        totals, malformed = parse_violation_totals(
            ["cfi-return=3", "garbage", "stack-tamper=notanint", "x=1"])
        assert totals == {"cfi-return": 3, "x": 1}
        assert malformed == 2

    def test_malformed_totals_counted_and_rendered(self):
        telemetry = FleetTelemetry()
        telemetry.record_attest("d1", _Result(
            report=_Report(violation_totals=["cfi-return=1", "broken"])))
        assert telemetry.malformed_totals == 1
        assert telemetry.as_dict()["malformed_totals"] == 1
        assert "1 malformed violation-total entry" in telemetry.render()

    def test_deltas_fold_across_device_resets(self):
        # Cumulative totals never reset on the device; reset_count
        # climbs independently.  The fold must track both as deltas.
        telemetry = FleetTelemetry()
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=2"], reset_count=1)))
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=5", "stack-tamper=1"], reset_count=3)))
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=5", "stack-tamper=1"], reset_count=3)))  # no change
        assert telemetry.violations == {"cfi-return": 5, "stack-tamper": 1}
        assert telemetry.resets == 3
        assert telemetry.attestations == 3

    def test_violation_delta_events_emitted_only_on_change(self):
        log = MemoryEventLog()
        telemetry = FleetTelemetry(events=log)
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=2"], reset_count=0)))
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=2"], reset_count=0)))
        deltas = log.events(kind="violation-delta")
        assert len(deltas) == 1
        assert deltas[0]["data"] == {"deltas": {"cfi-return": 2}, "resets": 0}

    def test_concurrent_workers_fold_exactly_once(self):
        # The process backend's shape: many worker threads feed one
        # FleetTelemetry.  Each device's cumulative series arrives in
        # order per device but interleaved across devices.
        telemetry = FleetTelemetry()
        devices = [f"d{i}" for i in range(8)]

        def feed(device_id):
            for count in range(1, 26):
                telemetry.record_attest(device_id, _Result(report=_Report(
                    [f"cfi-return={count}"], reset_count=0)))

        threads = [threading.Thread(target=feed, args=(device_id,))
                   for device_id in devices]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Per device the cumulative max was 25, so exactly 25 fold.
        assert telemetry.violations == {"cfi-return": 25 * len(devices)}
        assert telemetry.attestations == 25 * len(devices)

    def test_seed_baseline_never_overwrites_live_state(self):
        telemetry = FleetTelemetry()
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=4"], reset_count=1)))
        telemetry.seed_baseline("d1", {"cfi-return": 1}, 0)  # stale record
        telemetry.record_attest("d1", _Result(report=_Report(
            ["cfi-return=4"], reset_count=1)))
        assert telemetry.violations == {"cfi-return": 4}

    def test_restored_fleet_does_not_refold_old_violations(self, tmp_path):
        # The cross-layer property: protocol persists the accepted
        # report's totals on the record, the store round-trips them,
        # and the restored fleet seeds its telemetry baselines -- so a
        # restart never re-counts violations the old process folded.
        store_path = str(tmp_path / "fleet.db")
        fleet = FleetSimulation(size=3, store=store_path)
        victim = fleet.registry.ids()[0]
        fleet.corrupt_firmware(victim)
        device = fleet.devices[victim]
        assert device.violation_totals  # the fault fired
        fleet.session(victim).attest()
        old_violations = dict(fleet.telemetry.violations)
        assert old_violations  # the live fold saw the delta
        assert fleet.registry.get(victim).violation_totals
        fleet.registry.flush()
        fleet.registry.store.close()

        restored = FleetSimulation(store=store_path)
        # The replica reports the same cumulative totals; a seeded
        # baseline means zero *new* violations fold on the heartbeat.
        restored.attest_all()
        assert dict(restored.telemetry.violations) == {}
        restored.registry.store.close()


# ---- end-to-end: events flow from every layer -------------------------------


class TestFleetEventFlow:
    def test_rollout_emits_full_history(self):
        fleet = FleetSimulation(size=10)
        report = fleet.rollout(version=1)
        assert report.status is CampaignStatus.COMPLETE
        log = fleet.events
        kinds = {doc["kind"] for doc in log.events()}
        assert {"enroll", "campaign-start", "offer", "wave-commit",
                "campaign-end"} <= kinds
        campaigns = log.campaign_rollup()
        assert len(campaigns) == 1
        assert campaigns[0]["applied"] == 10
        assert campaigns[0]["status"] == "complete"
        assert campaigns[0]["waves"] == len(report.waves)
        assert campaigns[0]["devices_per_sec"] > 0

    def test_tampered_offers_quarantine_with_campaign_tag(self):
        fleet = FleetSimulation(size=10, seed=3)
        from repro.fleet import CampaignConfig

        report = fleet.rollout(version=1, tamper_fraction=0.2,
                               config=CampaignConfig(failure_threshold=0.9))
        assert report.failed > 0
        quarantines = fleet.events.events(kind="quarantine")
        assert len(quarantines) == report.failed
        assert all(doc["campaign"] is not None for doc in quarantines)
        rollup = fleet.events.campaign_rollup()[0]
        assert rollup["quarantined"] == report.failed
        assert sum(rollup["quarantine_reasons"].values()) == report.failed

    def test_process_backend_emits_merge_quarantines_once(self):
        # Workers have no event log; the parent emits quarantine events
        # while merging shard outcomes -- exactly one per quarantined
        # device, tagged with the campaign.
        from repro.fleet import CampaignConfig

        fleet = FleetSimulation(size=12, seed=5)
        report = fleet.rollout(version=1, tamper_fraction=0.25,
                               config=CampaignConfig(
                                   backend="process", workers=2,
                                   failure_threshold=0.9))
        assert report.failed > 0
        quarantines = fleet.events.events(kind="quarantine")
        assert len(quarantines) == report.failed
        assert len({doc["device"] for doc in quarantines}) == report.failed
        assert all(doc["campaign"] is not None for doc in quarantines)

    def test_events_are_json_safe(self, tmp_path):
        fleet = FleetSimulation(size=4,
                                events=str(tmp_path / "events.jsonl"))
        fleet.rollout(version=1)
        fleet.attest_all()
        for doc in fleet.events.events():
            assert doc == json.loads(json.dumps(doc))
        assert doc["kind"] in EVENT_KINDS
        fleet.events.close()
