"""Hardware-monitor sub-FSMs against synthetic step records."""

import pytest

from repro.casu.monitor import (
    HardwareMonitor,
    MonitorPolicy,
    RomConfig,
    ViolationReason,
)
from repro.cpu.core import StepKind, StepRecord
from repro.memory.bus import Access, AccessKind
from repro.memory.map import MemoryLayout
from repro.peripherals.ports import VIOLATION_PORT

LAYOUT = MemoryLayout.default()
ROM = LAYOUT.secure_rom
ENTRY = ROM.start
LEAVE = ROM.start + 0x40
ROM_CONFIG = RomConfig(entry_points=(ENTRY,), exit_ranges=((LEAVE, LEAVE + 2),))


def step(pc, next_pc=None, accesses=(), kind=StepKind.INSTRUCTION, vector=None,
         illegal=None):
    return StepRecord(
        kind=kind,
        pc=pc,
        next_pc=next_pc if next_pc is not None else pc + 2,
        cycles=1,
        accesses=list(accesses),
        vector=vector,
        illegal_word=illegal,
    )


def fetch(addr, pc):
    return Access(AccessKind.FETCH, addr, 0, 2, pc)


def write(addr, value, pc):
    return Access(AccessKind.WRITE, addr, value, 2, pc, prev=0)


def read(addr, pc):
    return Access(AccessKind.READ, addr, 0, 2, pc)


def eilid_monitor():
    return HardwareMonitor(LAYOUT, MonitorPolicy.eilid(), ROM_CONFIG)


def casu_monitor():
    return HardwareMonitor(LAYOUT, MonitorPolicy.casu(), ROM_CONFIG)


class TestWxorX:
    def test_fetch_from_pmem_ok(self):
        assert eilid_monitor().observe(step(0xE000, accesses=[fetch(0xE000, 0xE000)])) is None

    def test_fetch_from_rom_ok(self):
        monitor = eilid_monitor()
        assert monitor.observe(step(ENTRY, accesses=[fetch(ENTRY, ENTRY)])) is None

    @pytest.mark.parametrize("addr", [0x0200, 0x0300, 0x1000])
    def test_fetch_from_ram_violates(self, addr):
        violation = eilid_monitor().observe(step(addr, accesses=[fetch(addr, addr)]))
        assert violation is not None
        assert violation.reason is ViolationReason.W_XOR_X

    def test_data_read_from_ram_ok(self):
        assert eilid_monitor().observe(
            step(0xE000, accesses=[read(0x0200, 0xE000)])
        ) is None


class TestPmemGuard:
    def test_write_from_app_violates(self):
        violation = casu_monitor().observe(
            step(0xE010, accesses=[write(0xE100, 1, 0xE010)])
        )
        assert violation.reason is ViolationReason.PMEM_WRITE

    def test_ivt_write_violates(self):
        violation = casu_monitor().observe(
            step(0xE010, accesses=[write(0xFFFE, 1, 0xE010)])
        )
        assert violation.reason is ViolationReason.PMEM_WRITE

    def test_rom_write_without_session_violates(self):
        monitor = casu_monitor()
        violation = monitor.observe(step(ENTRY, accesses=[write(0xE100, 1, ENTRY)]))
        assert violation.reason is ViolationReason.PMEM_WRITE

    def test_update_session_from_rom_allowed(self):
        monitor = casu_monitor()
        monitor.open_update_session()
        assert monitor.observe(step(ENTRY, accesses=[write(0xE100, 1, ENTRY)])) is None

    def test_update_session_from_app_still_violates(self):
        monitor = casu_monitor()
        monitor.open_update_session()
        violation = monitor.observe(step(0xE010, accesses=[write(0xE100, 1, 0xE010)]))
        assert violation.reason is ViolationReason.PMEM_WRITE

    def test_session_cleared_on_reset(self):
        monitor = casu_monitor()
        monitor.open_update_session()
        monitor.reset()
        assert not monitor.update_session_open


class TestSecureRamGuard:
    SHADOW = LAYOUT.secure_dmem.start + 4

    def test_app_read_violates(self):
        violation = eilid_monitor().observe(
            step(0xE010, accesses=[read(self.SHADOW, 0xE010)])
        )
        assert violation.reason is ViolationReason.SECURE_RAM_ACCESS

    def test_app_write_violates(self):
        violation = eilid_monitor().observe(
            step(0xE010, accesses=[write(self.SHADOW, 1, 0xE010)])
        )
        assert violation.reason is ViolationReason.SECURE_RAM_ACCESS

    def test_rom_access_allowed(self):
        assert eilid_monitor().observe(
            step(ENTRY, accesses=[write(self.SHADOW, 1, ENTRY)])
        ) is None

    def test_casu_policy_does_not_guard(self):
        # The shadow-stack guard is the EILID hardware extension.
        assert casu_monitor().observe(
            step(0xE010, accesses=[write(self.SHADOW, 1, 0xE010)])
        ) is None


class TestRomAtomicity:
    def test_entry_at_entry_point_ok(self):
        assert eilid_monitor().observe(step(0xE010, next_pc=ENTRY)) is None

    def test_mid_rom_entry_violates(self):
        violation = eilid_monitor().observe(step(0xE010, next_pc=ENTRY + 8))
        assert violation.reason is ViolationReason.ROM_ENTRY

    def test_exit_from_leave_ok(self):
        assert eilid_monitor().observe(step(LEAVE + 2, next_pc=0xE010)) is None

    def test_mid_rom_exit_violates(self):
        violation = eilid_monitor().observe(step(ENTRY + 4, next_pc=0xE010))
        assert violation.reason is ViolationReason.ROM_EXIT

    def test_irq_inside_rom_violates(self):
        violation = eilid_monitor().observe(
            step(ENTRY + 4, next_pc=0xFFF2, kind=StepKind.INTERRUPT, vector=9)
        )
        assert violation.reason is ViolationReason.IRQ_IN_ROM

    def test_irq_outside_rom_ok(self):
        assert eilid_monitor().observe(
            step(0xE010, next_pc=0xFFF2, kind=StepKind.INTERRUPT, vector=9)
        ) is None

    def test_rom_internal_transfer_ok(self):
        assert eilid_monitor().observe(step(ENTRY, next_pc=ENTRY + 20)) is None


class TestViolationPort:
    @pytest.mark.parametrize("code,reason", [
        (1, ViolationReason.CFI_RETURN),
        (2, ViolationReason.CFI_RFI),
        (3, ViolationReason.CFI_INDIRECT),
        (4, ViolationReason.SHADOW_OVERFLOW),
        (5, ViolationReason.SHADOW_UNDERFLOW),
        (6, ViolationReason.TABLE_OVERFLOW),
        (7, ViolationReason.BAD_SELECTOR),
    ])
    def test_rom_write_maps_reason_codes(self, code, reason):
        violation = eilid_monitor().observe(
            step(ENTRY + 10, accesses=[write(VIOLATION_PORT, code, ENTRY + 10)])
        )
        assert violation.reason is reason

    def test_app_write_is_an_attack(self):
        violation = eilid_monitor().observe(
            step(0xE010, accesses=[write(VIOLATION_PORT, 1, 0xE010)])
        )
        assert violation.reason is ViolationReason.SECURE_PORT


class TestIllegalInstruction:
    def test_illegal_step_violates(self):
        violation = eilid_monitor().observe(
            step(0xE010, kind=StepKind.ILLEGAL, illegal=0x0000)
        )
        assert violation.reason is ViolationReason.ILLEGAL_INSN


class TestComposition:
    def test_first_violation_wins(self):
        # A fetch from RAM combined with a PMEM write: W-xor-X is
        # checked first in the composition order.
        record = step(0x0200, accesses=[fetch(0x0200, 0x0200), write(0xE000, 1, 0x0200)])
        violation = eilid_monitor().observe(record)
        assert violation.reason is ViolationReason.W_XOR_X

    def test_benign_step_passes_everything(self):
        record = step(0xE010, accesses=[fetch(0xE010, 0xE010), write(0x0300, 5, 0xE010)])
        assert eilid_monitor().observe(record) is None
