"""The attack matrix (DESIGN.md Sec. 6): who defends against what."""

import pytest

from repro.attacks import (
    AttackOutcome,
    code_injection,
    interrupt_context_tamper,
    pmem_overwrite,
    pointer_bend_to_valid_function,
    pointer_hijack,
    return_address_smash,
    rom_mid_entry_jump,
    shadow_stack_tamper,
)
from repro.casu.monitor import ViolationReason

H = AttackOutcome.HIJACKED
R = AttackOutcome.RESET
A = AttackOutcome.ALLOWED

# attack -> {security: (expected outcome, expected first reason or None)}
MATRIX = {
    return_address_smash: {
        "none": (H, None),
        "casu": (H, None),  # CASU guards immutability, not control flow
        "eilid": (R, ViolationReason.CFI_RETURN),
    },
    interrupt_context_tamper: {
        "none": (H, None),
        "casu": (H, None),
        "eilid": (R, ViolationReason.CFI_RFI),
    },
    pointer_hijack: {
        "none": (H, None),
        "casu": (H, None),
        "eilid": (R, ViolationReason.CFI_INDIRECT),
    },
    code_injection: {
        "none": (H, None),
        "casu": (R, ViolationReason.W_XOR_X),
        "eilid": (R, ViolationReason.CFI_RETURN),  # P1 fires before the fetch
    },
    pmem_overwrite: {
        "none": (H, None),
        "casu": (R, ViolationReason.PMEM_WRITE),
        "eilid": (R, ViolationReason.PMEM_WRITE),
    },
    shadow_stack_tamper: {
        "none": (H, None),
        "casu": (H, None),  # the guard is the EILID extension
        "eilid": (R, ViolationReason.SECURE_RAM_ACCESS),
    },
    rom_mid_entry_jump: {
        "none": (H, None),
        "casu": (R, ViolationReason.ROM_ENTRY),
        "eilid": (R, ViolationReason.ROM_ENTRY),
    },
}


@pytest.mark.parametrize("attack", list(MATRIX), ids=lambda a: a.__name__)
@pytest.mark.parametrize("security", ["none", "casu", "eilid"])
def test_attack_matrix(attack, security):
    expected_outcome, expected_reason = MATRIX[attack][security]
    result = attack(security)
    assert result.outcome is expected_outcome, str(result)
    if expected_reason is not None:
        assert result.violations
        assert result.violations[0].reason is expected_reason


class TestFunctionLevelLimitation:
    """Paper Sec. IV-A: bending a pointer to *another valid function
    entry* is admitted by function-level forward-edge CFI."""

    def test_bend_hijacks_baseline(self):
        assert pointer_bend_to_valid_function("none").outcome is H

    def test_bend_allowed_on_eilid_by_design(self):
        result = pointer_bend_to_valid_function("eilid")
        assert result.outcome is A
        assert not result.violations  # silently admitted, as documented


class TestEilidDetectionTiming:
    def test_rop_reset_happens_before_gadget_runs(self):
        """P1 is preventive: the corrupted return target is never
        fetched (contrast with CFA, which only detects after the fact)."""
        result = return_address_smash("eilid")
        assert result.outcome is R
        # No hijack evidence: the unlock GPIO write never happened.
        assert "unlock" in result.detail

    def test_recursion_overflow_resets(self):
        """Paper Sec. VII: recursion is unsupported; exhausting the
        shadow stack is detected as an overflow reset, not corruption."""
        from repro.device import build_device
        from repro.eilid.iterbuild import IterativeBuild
        from repro.minicc import compile_c

        source = """
        int deep(int n) {
            if (n == 0) { return 0; }
            return deep(n - 1) + 1;
        }
        void main() { __mmio_write(0x0070, deep(200)); }
        """
        asm = compile_c(source, "deep")
        result = IterativeBuild().build_eilid(asm, "deep.s")
        device = build_device(result.final.program, security="eilid")
        run = device.run(max_cycles=500_000)
        assert run.violations
        assert run.violations[0].reason is ViolationReason.SHADOW_OVERFLOW

    def test_bounded_recursion_within_capacity_is_fine(self):
        from repro.device import build_device
        from repro.eilid.iterbuild import IterativeBuild
        from repro.minicc import compile_c

        source = """
        int deep(int n) {
            if (n == 0) { return 0; }
            return deep(n - 1) + 1;
        }
        void main() { __mmio_write(0x0070, deep(20)); }
        """
        asm = compile_c(source, "deep")
        result = IterativeBuild().build_eilid(asm, "deep.s")
        device = build_device(result.final.program, security="eilid")
        run = device.run(max_cycles=500_000)
        assert run.done and run.done_value == 20 and not run.violations
