"""Writer round-trip: render(parse(x)) links to an identical image."""

import pytest

from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.minicc import compile_c
from repro.toolchain import link, parse_source
from repro.toolchain.writer import render_unit


def image_of(source, name):
    program = link([parse_source(source, name)], name="rt")
    return program.segments(), dict(program.symbols)


SIMPLE = """
    .text
    .global main
__start:
    mov #0x0a00, r1
    call #main
__halt:
    jmp __halt
main:
    mov.b #0x12, r10
    push @r10+
    mov 4(r1), r11
    clr r12
    ret
    .data
value:
    .word 0x1234, value, 'A'
msg:
    .asciz "hi\\n"
    .bss
buf:
    .space 8
    .vector 15, __start
"""


def test_simple_roundtrip_identical_image():
    first = image_of(SIMPLE, "t.s")
    rendered = render_unit(parse_source(SIMPLE, "t.s"))
    second = image_of(rendered, "t.s")
    assert first == second


def test_double_roundtrip_is_stable():
    rendered1 = render_unit(parse_source(SIMPLE, "t.s"))
    rendered2 = render_unit(parse_source(rendered1, "t.s"))
    assert rendered1 == rendered2


@pytest.mark.parametrize("name", TABLE_IV_ORDER)
def test_app_sources_roundtrip(name):
    asm = compile_c(APPS[name].c_source, name)
    unit = parse_source(asm, f"{name}.s")
    rendered = render_unit(unit)
    again = parse_source(rendered, f"{name}.s")
    assert [type(s).__name__ for s in unit.statements(".text")] == [
        type(s).__name__ for s in again.statements(".text")
    ]
    assert unit.vectors == again.vectors
    assert unit.globals_ == again.globals_
