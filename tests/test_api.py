"""The public scenario API (repro.api).

Covers the ISSUE-4 acceptance surface: spec serialisation round-trips
across all four workload shapes, rejection of malformed documents with
errors naming the bad field, the Session pipeline (build -> run ->
attest -> verify) for app / mini-C / attack / fleet scenarios, stream
semantics at fleet scale, and the build_device knob validation shim.
"""

import json

import pytest

from repro.api import (
    FirmwareSpec,
    FleetSpec,
    LimitsSpec,
    RolloutSpec,
    ScenarioSpec,
    Session,
    SpecError,
    build_peripherals,
    run_scenario,
)

MINI_C = """
void main() {
    int total = 0;
    for (int i = 1; i <= 4; i = i + 1) {
        total = total + i;
    }
    __mmio_write(0x0070, total);
}
"""

RAW_ASM = """
    .text
    .global main
main:
    mov #1, &0x0070
idle:
    jmp idle
"""


def app_spec(variant="eilid", security="eilid"):
    return ScenarioSpec(
        name="app-shape",
        firmware=FirmwareSpec(kind="app", app="light_sensor", variant=variant),
        security=security,
    )


def minicc_spec():
    return ScenarioSpec(
        name="minicc-shape",
        firmware=FirmwareSpec(kind="minicc", source=MINI_C, variant="eilid",
                              name="mini"),
        security="eilid",
    )


def attack_spec(attack="pmem_overwrite", security="casu"):
    return ScenarioSpec(name="attack-shape", attack=attack, security=security)


def fleet_spec(size=10, **kwargs):
    return ScenarioSpec(name="fleet-shape", security="casu",
                        fleet=FleetSpec(size=size, **kwargs))


# ---- serialisation ---------------------------------------------------------


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", [
        app_spec(),
        minicc_spec(),
        attack_spec(),
        fleet_spec(rollout=RolloutSpec(version=2, tamper_fraction=0.1)),
    ], ids=["app", "minicc", "attack", "fleet"])
    def test_dict_spec_dict_identity(self, spec):
        doc = spec.validate().to_dict()
        assert doc["schema"] == "eilid.scenario"
        assert doc["version"] == 1
        rebuilt = ScenarioSpec.from_dict(doc)
        assert rebuilt.to_dict() == doc
        assert rebuilt.workload == spec.workload
        # and the JSON leg of the trip
        assert ScenarioSpec.from_json(spec.to_json()).to_dict() == doc

    def test_json_document_drives_a_session(self):
        doc = json.dumps(minicc_spec().to_dict())
        outcome = Session(doc).run()
        assert outcome.done and outcome.done_value == 10

    def test_with_copies(self):
        spec = app_spec()
        casu = spec.with_(security="casu")
        assert casu.security == "casu" and spec.security == "eilid"

    def test_limits_round_trip(self):
        spec = app_spec()
        spec.limits = LimitsSpec(max_events=16, trace_capacity=128,
                                 decode_cache=False, max_cycles=1000,
                                 max_steps=50)
        doc = spec.to_dict()
        assert ScenarioSpec.from_dict(doc).limits == spec.limits


class TestSpecRejection:
    def assert_field(self, field, fn):
        with pytest.raises(SpecError) as excinfo:
            fn()
        assert excinfo.value.field == field
        assert field in str(excinfo.value)

    def test_unknown_security_profile(self):
        self.assert_field(
            "security", lambda: app_spec(security="fortress").validate())

    def test_malformed_peripheral_name(self):
        spec = app_spec()
        spec.peripherals = {"adcc": {}}
        self.assert_field("peripherals", spec.validate)

    def test_unknown_peripheral_config_key(self):
        spec = app_spec()
        spec.peripherals = {"adc": {"chanels": {}}}
        self.assert_field("peripherals.adc", spec.validate)

    def test_malformed_peripheral_config_values(self):
        spec = app_spec()
        spec.peripherals = {"adc": {"channels": {"x": [1, 2]}}}
        self.assert_field("peripherals.adc.channels", spec.validate)
        spec.peripherals = {"uart": {"rx": [[10]]}}
        self.assert_field("peripherals.uart.rx", spec.validate)
        spec.peripherals = {"gpio": {"inputs": "high"}}
        self.assert_field("peripherals.gpio.inputs", spec.validate)
        spec.peripherals = {"gpio": {"inputs": ["--5"]}}
        self.assert_field("peripherals.gpio.inputs", spec.validate)

    def test_unknown_app(self):
        self.assert_field("firmware.app", lambda: ScenarioSpec(
            firmware=FirmwareSpec(kind="app", app="nonsense")).validate())

    def test_unknown_firmware_kind(self):
        self.assert_field("firmware.kind", lambda: ScenarioSpec(
            firmware=FirmwareSpec(kind="rust", source="x")).validate())

    def test_source_kinds_require_source(self):
        self.assert_field("firmware.source", lambda: ScenarioSpec(
            firmware=FirmwareSpec(kind="minicc")).validate())

    def test_unknown_attack(self):
        self.assert_field(
            "attack", lambda: attack_spec(attack="nonsense").validate())

    def test_attack_and_fleet_exclusive(self):
        spec = attack_spec()
        spec.fleet = FleetSpec(size=1)
        self.assert_field("attack", spec.validate)

    def test_attack_rejects_custom_firmware(self):
        # would be silently ignored otherwise: the harness owns it
        spec = attack_spec()
        spec.firmware = FirmwareSpec(kind="minicc", source="void main() {}")
        self.assert_field("firmware", spec.validate)

    def test_attack_rejects_custom_limits(self):
        spec = attack_spec()
        spec.limits = LimitsSpec(trace_capacity=16)
        self.assert_field("limits", spec.validate)

    def test_fleet_partial_firmware_rejected(self):
        # kind customised but source forgotten: must fail loudly, not
        # silently fall back to the built-in fleet-node image
        spec = fleet_spec()
        spec.firmware = FirmwareSpec(kind="asm")
        self.assert_field("firmware.source", spec.validate)

    def test_bad_wave_fractions(self):
        self.assert_field("fleet.rollout.wave_fractions", lambda: fleet_spec(
            rollout=RolloutSpec(wave_fractions=(0.5, 0.2, 1.0))).validate())
        self.assert_field("fleet.rollout.wave_fractions", lambda: fleet_spec(
            rollout=RolloutSpec(wave_fractions=(-2.0, 1.0))).validate())
        self.assert_field("fleet.rollout.wave_fractions", lambda: fleet_spec(
            rollout=RolloutSpec(wave_fractions=(0.0, 1.0))).validate())

    def test_fleet_loss_out_of_range(self):
        self.assert_field("fleet.loss",
                          lambda: fleet_spec(loss=5.0).validate())

    def test_unknown_top_level_key(self):
        doc = app_spec().to_dict()
        doc["securty"] = "eilid"
        self.assert_field("scenario", lambda: ScenarioSpec.from_dict(doc))

    def test_unknown_nested_key(self):
        doc = app_spec().to_dict()
        doc["firmware"]["varant"] = "eilid"
        self.assert_field("firmware", lambda: ScenarioSpec.from_dict(doc))

    def test_wrong_schema(self):
        doc = app_spec().to_dict()
        doc["schema"] = "eilid.other"
        self.assert_field("schema", lambda: ScenarioSpec.from_dict(doc))

    def test_bad_json_text(self):
        self.assert_field("scenario",
                          lambda: ScenarioSpec.from_json("{nope"))


class TestBuildDeviceShim:
    def test_unknown_knob_typo_raises_with_accepted_names(self, app_builds):
        from repro.device import build_device

        program = app_builds["light_sensor"][0].program
        with pytest.raises(TypeError) as excinfo:
            build_device(program, security="none", trace_capcity=64)
        message = str(excinfo.value)
        assert "trace_capcity" in message
        for knob in ("max_events", "trace_capacity", "decode_cache"):
            assert knob in message

    def test_known_knobs_still_pass(self, app_builds):
        from repro.device import build_device

        program = app_builds["light_sensor"][0].program
        device = build_device(program, security="none", trace_capacity=8,
                              max_events=4, decode_cache=False)
        assert device.trace.capacity == 8


# ---- the pipeline ----------------------------------------------------------


class TestPipelineApp:
    def test_table4_app_scenario(self):
        result = run_scenario(app_spec())
        assert result.ok
        assert result.build.instrumented_calls > 0
        assert result.build.build_count == 3  # the Fig. 2 iteration
        assert result.run.done and not result.run.violations
        assert result.attest.report["firmware_hash"]
        assert result.verify.ok and result.verify.edges_checked > 0
        doc = result.to_dict()
        json.dumps(doc)  # fully serialisable
        for stage in ("build", "run", "attest", "verify"):
            assert doc[stage]["schema"].startswith("eilid.")
            assert doc[stage]["version"] == 1

    def test_original_variant_runs_unmonitored(self):
        outcome = Session(app_spec(variant="original", security="none")).run()
        assert outcome.done and not outcome.violations

    def test_minicc_scenario(self):
        result = run_scenario(minicc_spec())
        assert result.ok and result.run.done_value == 10

    def test_asm_scenario(self):
        spec = ScenarioSpec(
            name="raw",
            firmware=FirmwareSpec(kind="asm", source=RAW_ASM,
                                  variant="original", name="raw"),
            security="casu",
        )
        result = run_scenario(spec)
        assert result.run.done and result.ok

    def test_bounded_trace_ring_reports_drops(self):
        spec = minicc_spec()
        spec.limits = LimitsSpec(trace_capacity=4)
        session = Session(spec)
        assert session.run().done
        verify = session.verify()
        assert verify.dropped > 0  # the evidence window is honest

    def test_trace_capacity_zero_disables_recording(self):
        spec = minicc_spec()
        spec.limits = LimitsSpec(trace_capacity=0)
        session = Session(spec)
        assert session.run().done
        assert session.device.trace is None
        verify = session.verify()
        assert verify.ok and verify.edges_checked == 0

    def test_declarative_peripherals_override(self):
        # An app scenario can override a stimulus peripheral from JSON.
        spec = app_spec()
        spec.peripherals = {"adc": {"hold": 7,
                                    "channels": {"0": [100, 900]}}}
        session = Session(spec)
        assert session.run().done
        adc = session.device.peripherals["adc"]
        assert adc.schedule.sample(0, 0) == 100
        assert adc.schedule.sample(0, 7) == 900

    def test_build_peripherals_factories(self):
        built = build_peripherals({
            "uart": {"rx": [[10, 65]], "rx_irq": True},
            "ultrasonic": {"echo_widths": [700, 950]},
            "gpio": {"inputs": [1, 0]},
            "timer": {},
            "lcd": {},
            "harness": {},
        })
        assert set(built) == {"uart", "ultrasonic", "gpio", "timer", "lcd",
                              "harness"}
        assert built["uart"].rx_irq_enabled


class TestPipelineAttack:
    def test_attack_detected_under_casu(self):
        # PMEM immutability is CASU's core guarantee: the overwrite
        # resets the device, so the scenario counts as defended.
        result = run_scenario(attack_spec("pmem_overwrite", "casu"))
        assert result.run.attack.outcome == "reset"
        assert result.run.attack.detected
        assert result.run.ok
        json.dumps(result.to_dict())

    def test_attack_hijacks_undefended_device(self):
        session = Session(attack_spec("return_address_smash", "none"))
        outcome = session.run()
        assert outcome.attack.outcome == "hijacked"
        assert not outcome.ok
        # ... but the verifier still catches it from the trace alone
        assert not session.verify().ok

    def test_attack_contained_by_eilid(self):
        session = Session(attack_spec("return_address_smash", "eilid"))
        outcome = session.run()
        assert outcome.attack.detected and outcome.ok
        assert session.attack_result.defended

    def test_attack_build_reports_executed_firmware(self):
        # raw-asm monitor attacks run their own image, not the C victim
        raw = Session(attack_spec("pmem_overwrite", "casu")).build()
        assert raw.firmware_kind == "asm" and raw.variant == "original"
        victim = Session(attack_spec("return_address_smash", "eilid")).build()
        assert victim.firmware_kind == "minicc" and victim.variant == "eilid"
        assert victim.instrumented_returns > 0


class TestPipelineFleet:
    def test_fleet_rollout_with_trace_verification(self):
        # The acceptance scenario: one JSON document drives a
        # >= 100-device fleet rollout with trace verification.
        doc = {
            "schema": "eilid.scenario",
            "version": 1,
            "name": "fleet-100",
            "security": "casu",
            "fleet": {
                "size": 100,
                "verify_traces": True,
                "rollout": {"version": 1},
            },
        }
        result = run_scenario(doc)
        assert result.ok
        assert result.run.fleet.enrolled == 100
        assert result.run.fleet.rollout.status == "complete"
        assert result.attest.devices_ok == 100
        assert result.verify.devices_ok == 100
        assert result.verify.policy_digest
        json.dumps(result.to_dict())

    def test_streams_are_lazy(self):
        session = Session(fleet_spec(size=5))
        stream = session.attest_stream()
        first = next(stream)
        assert first.device_id and first.ok
        # only partially drained; the aggregate still covers everyone
        assert session.attest().devices_total == 5
        verdicts = session.verify_stream()
        assert next(verdicts).ok

    def test_halted_rollout_is_not_ok(self):
        spec = fleet_spec(size=20, rollout=RolloutSpec(
            version=1, tamper_fraction=0.5))
        outcome = Session(spec).run()
        assert outcome.fleet.rollout.halted
        assert not outcome.ok

    def test_repeated_rollouts_on_one_session(self):
        session = Session(fleet_spec(size=8))
        session.run()
        first = session.rollout(RolloutSpec(version=1))
        second = session.rollout(RolloutSpec(version=2))
        assert not first.halted and not second.halted
        assert second.target_version == 2

    def test_rollout_invalidates_cached_aggregates(self):
        session = Session(fleet_spec(size=6))
        before = session.attest()
        assert session.attest() is before  # cached while nothing changed
        session.rollout(RolloutSpec(version=1))
        after = session.attest()
        assert after is not before  # recomputed post-campaign
        assert after.ok and after.devices_ok == 6

    def test_rollout_refreshes_run_outcome(self):
        session = Session(fleet_spec(size=6))
        assert session.run().fleet.rollout is None
        session.rollout(RolloutSpec(version=3))
        refreshed = session.run()
        assert refreshed.fleet.rollout is not None
        assert refreshed.fleet.rollout.target_version == 3
        assert refreshed.fleet.enrolled == 6
        assert session.result().run is refreshed

    def test_fleet_has_no_single_device(self):
        with pytest.raises(SpecError):
            Session(fleet_spec(size=1)).device


class TestImportSurface:
    def test_acceptance_import_line(self):
        # python -c "import json; from repro.api import run_scenario,
        #            ScenarioSpec"
        import importlib

        module = importlib.import_module("repro.api")
        assert callable(module.run_scenario)
        assert module.ScenarioSpec is ScenarioSpec
