"""EILIDinst: golden per-figure rewrites (Figs. 3-8) plus pass logic."""

import pytest

from repro.eilid.instrumenter import Instrumenter
from repro.eilid.iterbuild import IterativeBuild
from repro.eilid.policy import EilidPolicy
from repro.errors import ConvergenceError, InstrumentationError
from repro.toolchain import parse_source
from repro.toolchain.writer import render_statement

CRT = """
    .text
__start:
    mov #0x0a00, r1
    call #NS_EILID_init
    mov #__main_ret, r6
    call #NS_EILID_store_ra
    call #main
__main_ret:
    mov #1, &0x0070
__halt:
    jmp __halt
__default_handler:
    reti
    .vector 15, __start
"""


def build_and_instrument(app_source, policy=None, app_name="app.s"):
    """Run the full Fig. 2 pipeline; returns (final_source, report)."""
    builder = IterativeBuild(policy=policy)
    result = builder.build_eilid(app_source, app_name, verify_convergence=True)
    return result.final_source, result.report


def text_statements(source, name="app.s"):
    unit = parse_source(source, name)
    return unit.statements(".text")


def rendered(source):
    return [render_statement(s) for s in text_statements(source)]


SIMPLE_APP = """
    .text
    .global main
    .global foo
main:
    call #foo
    mov #1, &0x0070
loop:
    jmp loop
foo:
    mov #5, r10
    ret
"""


class TestFigureRewrites:
    def test_fig3_store_before_call(self):
        out, report = build_and_instrument(SIMPLE_APP)
        lines = rendered(out)
        call_index = lines.index("call #foo")
        assert lines[call_index - 1] == "call #NS_EILID_store_ra"
        # Fig. 3: the mov loads the *numeric* address of the next insn.
        assert lines[call_index - 2].startswith("mov #0x")
        assert lines[call_index - 2].endswith(", r6")
        assert report.direct_calls == 1

    def test_fig3_return_address_is_correct(self):
        out, _ = build_and_instrument(SIMPLE_APP)
        builder = IterativeBuild()
        final = builder.build_eilid(SIMPLE_APP, "app.s").final
        from repro.toolchain.listing import parse_listing

        listing = parse_listing(final.listing)
        calls = [e for e in listing.instructions("call")
                 if e.note == "foo" and listing.in_unit(e.addr, "app.s")]
        assert len(calls) == 1
        expected_ra = listing.next_address(calls[0].addr)
        # The embedded immediate must equal the actual next address.
        lines = rendered(out)
        call_index = lines.index("call #foo")
        assert lines[call_index - 2] == f"mov #0x{expected_ra:04x}, r6"

    def test_fig4_check_before_ret(self):
        out, report = build_and_instrument(SIMPLE_APP)
        lines = rendered(out)
        ret_index = lines.index("mov @r1+, r0") if "mov @r1+, r0" in lines else lines.index("ret")
        assert lines[ret_index - 1] == "call #NS_EILID_check_ra"
        assert lines[ret_index - 2] == "mov 0(r1), r6"
        assert report.returns == 1

    ISR_APP = """
    .text
    .global main
main:
    mov #1, &0x0070
loop:
    jmp loop
__isr_tick:
    mov #1, r10
    reti
    .vector 9, __isr_tick
"""

    def test_fig5_isr_prologue(self):
        out, report = build_and_instrument(self.ISR_APP)
        lines = rendered(out)
        isr_index = lines.index("__isr_tick:")
        assert lines[isr_index + 1 : isr_index + 7] == [
            "push r4",
            "push r6",
            "push r7",
            "mov 8(r1), r6",
            "mov 6(r1), r7",
            "call #NS_EILID_store_rfi",
        ]
        assert report.isr_prologues == 1

    def test_fig6_isr_epilogue(self):
        out, report = build_and_instrument(self.ISR_APP)
        lines = rendered(out)
        reti_index = lines.index("reti")
        assert lines[reti_index - 6 : reti_index] == [
            "mov 8(r1), r6",
            "mov 6(r1), r7",
            "call #NS_EILID_check_rfi",
            "pop r7",
            "pop r6",
            "pop r4",
        ]
        assert report.isr_epilogues == 1

    INDIRECT_APP = """
    .text
    .global main
    .global foo
main:
    mov #foo, r12
    call r12
    mov #1, &0x0070
loop:
    jmp loop
foo:
    mov #5, r10
    ret
"""

    def test_fig7_function_table_at_main(self):
        out, report = build_and_instrument(self.INDIRECT_APP)
        lines = rendered(out)
        main_index = lines.index("main:")
        # Each function address registered via NS_EILID_store_ind.
        regs = [l for l in lines[main_index + 1 : main_index + 1 + 2 * len(report.functions)]
                if l == "call #NS_EILID_store_ind"]
        assert len(regs) == report.table_registrations
        assert report.table_registrations == len(report.functions) >= 2

    def test_fig8_check_before_indirect_call(self):
        out, report = build_and_instrument(self.INDIRECT_APP)
        lines = rendered(out)
        call_index = lines.index("call r12")
        # check_ind first (Fig. 8), then the P1 store for the return.
        assert lines[call_index - 4] == "mov r12, r6"
        assert lines[call_index - 3] == "call #NS_EILID_check_ind"
        assert lines[call_index - 1] == "call #NS_EILID_store_ra"
        assert report.indirect_calls == 1

    def test_no_indirect_calls_no_table(self):
        _, report = build_and_instrument(SIMPLE_APP)
        assert report.table_registrations == 0


class TestPassLogic:
    def test_reinstrumentation_guard(self):
        instrumenter = Instrumenter(EilidPolicy(), "app.s")
        already = SIMPLE_APP.replace("call #foo", "call #NS_EILID_store_ra\n    call #foo")
        with pytest.raises(InstrumentationError):
            instrumenter.instrument(already, "")

    def test_listing_mismatch_detected(self):
        builder = IterativeBuild()
        other = builder.build_original(
            "    .text\nmain:\n    mov #1, &0x0070\nl:\n    jmp l\n", "other.s"
        )
        instrumenter = Instrumenter(EilidPolicy(), "app.s")
        with pytest.raises(InstrumentationError):
            instrumenter.instrument(SIMPLE_APP, other.listing)

    def test_indirect_jump_rejected(self):
        app = SIMPLE_APP.replace("mov #5, r10", "br r10")
        with pytest.raises(InstrumentationError):
            build_and_instrument(app)

    def test_indirect_jump_warning_when_permissive(self):
        policy = EilidPolicy(fail_on_indirect_jumps=False)
        app = SIMPLE_APP.replace("mov #5, r10", "br r10")
        _, report = build_and_instrument(app, policy=policy)
        assert any("indirect jump" in w for w in report.warnings)

    def test_policy_backward_only_skips_indirect(self):
        policy = EilidPolicy.backward_only()
        out, report = build_and_instrument(TestFigureRewrites.INDIRECT_APP, policy)
        lines = rendered(out)
        assert "call #NS_EILID_check_ind" not in lines
        assert "call #NS_EILID_store_ra" in lines

    def test_function_discovery(self):
        app = """
    .text
    .global main
main:
    call #helper
    mov #taken, r12
    mov #1, &0x0070
l:
    jmp l
helper:
    ret
taken:
    ret
__isr_x:
    reti
    .vector 9, __isr_x
"""
        _, report = build_and_instrument(app)
        names = [name for name, _addr in report.functions]
        assert "main" in names and "helper" in names and "taken" in names
        assert "__isr_x" not in names and "l" not in names

    def test_reserved_register_repair_wraps_run(self):
        app = """
    .text
    .global main
main:
    mov #3, r4
    add #1, r4
    mov r4, &0x0200
    mov #1, &0x0070
l:
    jmp l
"""
        out, report = build_and_instrument(app)
        lines = rendered(out)
        first = lines.index("mov #3, r4")
        assert lines[first - 1] == "push r4"
        assert lines[first - 2] == "dint"
        assert lines[first - 3] == "push r2"
        after = lines.index("mov r4, &0x0200")
        assert lines[after + 1] == "pop r4"
        assert lines[after + 2] == "pop r2"
        assert report.repaired_runs == 1

    def test_repair_preserves_semantics_and_eilid_state(self):
        app = """
    .text
    .global main
main:
    call #uses_r5
    mov &0x0202, r10
    mov r10, &0x0070
l:
    jmp l
uses_r5:
    mov #40, r5
    add #2, r5
    mov r5, &0x0202
    ret
"""
        from repro.device import build_device

        builder = IterativeBuild()
        result = builder.build_eilid(app, "app.s", verify_convergence=True)
        device = build_device(result.final.program, security="eilid")
        run = device.run(max_cycles=100_000)
        assert run.done and not run.violations
        assert run.done_value == 42  # app semantics preserved

    def test_reserved_register_in_call_rejected(self):
        app = SIMPLE_APP.replace("call #foo", "call r4")
        with pytest.raises(InstrumentationError):
            build_and_instrument(app)


class TestSymbolicAblation:
    def test_single_build_equivalence(self):
        from repro.device import build_device

        policy = EilidPolicy(use_symbolic_return_labels=True)
        builder = IterativeBuild(policy=policy)
        sym = builder.build_eilid_symbolic(TestFigureRewrites.INDIRECT_APP, "app.s")
        assert sym.build_count == 1

        paper = IterativeBuild().build_eilid(
            TestFigureRewrites.INDIRECT_APP, "app.s", verify_convergence=True
        )
        d1 = build_device(sym.final.program, security="eilid")
        d2 = build_device(paper.final.program, security="eilid")
        r1 = d1.run(max_cycles=100_000)
        r2 = d2.run(max_cycles=100_000)
        assert r1.done and r2.done
        assert r1.cycles == r2.cycles  # byte-different, cycle-identical

    def test_symbolic_requires_policy(self):
        with pytest.raises(ConvergenceError):
            IterativeBuild().build_eilid_symbolic(SIMPLE_APP, "app.s")
