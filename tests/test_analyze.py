"""Firmware static analyzer (:mod:`repro.analyze`).

Covers the acceptance contract end to end: every rule has a minimal
firmware that trips exactly it, the four raw attack images all produce
criticals, every Table IV application analyzes clean (zero criticals,
warns confined to a pinned baseline), reports are byte-identically
deterministic across fresh builds, and the sweep-guided coverage loop
closes -- a fault-sweep escape cluster yields a CFI tightening that,
applied and re-swept, converts those escapes into replay detections.
Also pins the AnalyzeSpec / Session.analyze / CLI surfaces.
"""

import json

import pytest

from repro.analyze import (
    RULE_GROUPS,
    SEVERITIES,
    AnalysisReport,
    AnalyzeError,
    Finding,
    address_taken_entries,
    analyze_program,
    apply_cfi_patch,
    cluster_escapes,
    correlate_sweep,
)
from repro.api import (
    AnalyzeSpec,
    FaultSpec,
    FirmwareSpec,
    ScenarioSpec,
    Session,
    SpecError,
)
from repro.api.firmware import build_firmware
from repro.apps.registry import TABLE_IV_ORDER
from repro.attacks.injection import RAW_ATTACK_FIRMWARE
from repro.cfg import compile_policy, recover_cfg
from repro.faults import FaultCampaign, enumerate_sites, expand_plan
from repro.obs.events import EVENT_KINDS, open_event_log

# Warn-level rules the benign Table IV corpus is allowed to carry:
# the uninstrumented fire_sensor's unregistered indirect call, the
# S_EILID_entry br-invocation convention, linked-but-uncalled EILID
# shims, and their reti bodies.  Anything outside this set -- and any
# critical -- is a regression.
BENIGN_WARN_RULES = {
    "indirect-unregistered",
    "unmatched-return",
    "unreachable-block",
    "dead-isr",
}

ATTACK_CRITICALS = {
    "pmem_overwrite": "pmem-write",
    "shadow_stack_tamper": "secure-ram-read",
    "ivt_overwrite": "ivt-write",
    "rom_mid_entry_jump": "rom-entry-bypass",
}


def _analyze_asm(asm, name="fw", variant="original", link_rom=False):
    spec = FirmwareSpec(kind="asm", source=asm, variant="original",
                        name=name, link_rom=link_rom)
    build = build_firmware(spec)
    return analyze_program(build.program, name=name, variant=variant)


# ---- per-rule minimal firmwares ---------------------------------------------

PMEM_WRITE_ASM = """
    .text
    .global main
main:
    mov #1, &0xe100
    mov #1, &0x0070
park:
    jmp park
"""

IVT_WRITE_ASM = """
    .text
    .global main
main:
    mov #0, &0xfff2
    mov #1, &0x0070
park:
    jmp park
"""

SECURE_RAM_ASM = """
    .text
    .global main
main:
    mov #1, &0x1000
    mov &0x1010, r5
    mov #1, &0x0070
park:
    jmp park
"""

ROM_WRITE_ASM = """
    .text
    .global main
main:
    mov #1, &0xa000
    mov #1, &0x0070
park:
    jmp park
"""

RECURSION_ASM = """
    .text
    .global main
main:
    call #spin
    mov #1, &0x0070
park:
    jmp park
spin:
    call #spin
    ret
"""

OVERFLOW_ASM = """
    .text
    .global main
main:
    sub #0x900, sp
    mov #1, &0x0070
park:
    jmp park
"""

MARGIN_ASM = """
    .text
    .global main
main:
    sub #2000, sp
    mov #1, &0x0070
park:
    jmp park
"""

DEAD_ISR_ASM = """
    .text
    .global main
main:
    mov #orphan, r9
    mov #1, &0x0070
park:
    jmp park
orphan:
    mov #2, &0x0010
    reti
"""

DEAD_CODE_ASM = """
    .text
    .global main
main:
    mov #1, &0x0070
park:
    jmp park
helper:
    mov #2, &0x0010
    ret
"""

INDIRECT_JUMP_ASM = """
    .text
    .global main
main:
    mov #park, r10
    br r10
park:
    jmp park
"""


@pytest.mark.parametrize("asm,rule,severity", [
    (PMEM_WRITE_ASM, "pmem-write", "critical"),
    (IVT_WRITE_ASM, "ivt-write", "critical"),
    (SECURE_RAM_ASM, "secure-ram-write", "critical"),
    (SECURE_RAM_ASM, "secure-ram-read", "critical"),
    (ROM_WRITE_ASM, "rom-write", "critical"),
    (RECURSION_ASM, "stack-recursion", "critical"),
    (OVERFLOW_ASM, "stack-overflow", "critical"),
    (MARGIN_ASM, "stack-margin", "warn"),
    (DEAD_ISR_ASM, "dead-isr", "warn"),
    (DEAD_CODE_ASM, "unreachable-block", "warn"),
    (INDIRECT_JUMP_ASM, "indirect-jump-unresolved", "warn"),
])
def test_minimal_firmware_trips_rule(asm, rule, severity):
    report = _analyze_asm(asm)
    hits = [f for f in report.findings if f.rule == rule]
    assert hits, f"{rule} not raised; got {[f.rule for f in report.findings]}"
    assert all(f.severity == severity for f in hits)


def test_ivt_write_names_the_vector():
    report = _analyze_asm(IVT_WRITE_ASM)
    (finding,) = [f for f in report.findings if f.rule == "ivt-write"]
    assert finding.evidence["vector"] == 9  # the timer vector


def test_shadow_stack_capacity_severity_depends_on_variant():
    # 132 nested calls exceed the 128-entry shadow stack: a critical
    # for an eilid image (the store would trap at runtime), only a
    # warn for an uninstrumented one (no shadow stack to overflow).
    depth = 132
    lines = ["    .text", "    .global main", "main:", "    call #f0",
             "    mov #1, &0x0070", "park:", "    jmp park"]
    for i in range(depth):
        lines.append(f"f{i}:")
        if i + 1 < depth:
            lines.append(f"    call #f{i + 1}")
        lines.append("    ret")
    asm = "\n".join(lines) + "\n"
    spec = FirmwareSpec(kind="asm", source=asm, variant="original",
                        name="deep", link_rom=False)
    build = build_firmware(spec)
    by_variant = {}
    for variant in ("original", "eilid"):
        report = analyze_program(build.program, name="deep", variant=variant)
        (finding,) = [f for f in report.findings
                      if f.rule == "shadow-stack-overflow"]
        by_variant[variant] = finding.severity
    assert by_variant == {"original": "warn", "eilid": "critical"}


def test_clean_firmware_is_clean():
    report = _analyze_asm("""
    .text
    .global main
main:
    mov #1, &0x0070
park:
    jmp park
""")
    assert report.ok
    assert report.findings == []


# ---- findings / report primitives -------------------------------------------


def test_finding_round_trip_and_ordering():
    a = Finding(rule="pmem-write", severity="critical", message="b",
                pc=0xE010, function="main", evidence={"z": 1, "a": 2})
    b = Finding(rule="dead-isr", severity="warn", message="a",
                pc=0xE000, function="isr")
    assert Finding.from_dict(a.to_dict()) == a
    assert sorted([a, b], key=lambda f: f.sort_key)[0].rule == "dead-isr"
    # evidence keys serialise sorted for byte-stable JSON
    assert list(a.to_dict()["evidence"]) == ["a", "z"]


def test_report_counts_and_ok():
    report = AnalysisReport(name="x", variant="original",
                            rules=tuple(RULE_GROUPS))
    assert report.ok and report.count("critical") == 0
    report.extend([Finding(rule="pmem-write", severity="critical",
                           message="m")])
    report.finalize()
    assert not report.ok
    assert report.count("critical") == 1
    assert set(report.to_dict()["counts"]) == set(SEVERITIES)


# ---- determinism ------------------------------------------------------------


def _fresh_report(app="fire_sensor", variant="eilid"):
    spec = FirmwareSpec(kind="app", app=app, variant=variant)
    build = build_firmware(spec)
    return analyze_program(build.program, name=app, variant=variant)


def test_two_runs_are_byte_identical():
    first, second = _fresh_report(), _fresh_report()
    assert json.dumps(first.to_dict(), sort_keys=True) == \
        json.dumps(second.to_dict(), sort_keys=True)
    assert first.render() == second.render()


# ---- attack vs benign matrix ------------------------------------------------


@pytest.mark.parametrize("attack", sorted(ATTACK_CRITICALS))
def test_attack_image_produces_critical(attack):
    """Acceptance: every raw attack image yields >= 1 critical."""
    spec = RAW_ATTACK_FIRMWARE[attack]
    build = build_firmware(spec)
    report = analyze_program(build.program, name=attack)
    assert not report.ok
    critical_rules = {f.rule for f in report.criticals}
    assert ATTACK_CRITICALS[attack] in critical_rules


@pytest.mark.parametrize("app", TABLE_IV_ORDER)
def test_benign_app_analyzes_clean(app):
    """Acceptance: zero criticals on every Table IV app, both variants,
    and warns confined to the pinned baseline rule set."""
    for variant in ("original", "eilid"):
        spec = FirmwareSpec(kind="app", app=app, variant=variant)
        build = build_firmware(spec)
        report = analyze_program(build.program, name=app, variant=variant)
        assert report.ok, (
            f"{app}/{variant} criticals: "
            f"{[f.render() for f in report.criticals]}")
        warn_rules = {f.rule for f in report.findings
                      if f.severity == "warn"}
        assert warn_rules <= BENIGN_WARN_RULES, (app, variant, warn_rules)


def test_eilid_entry_convention_is_an_unmatched_return():
    # The S_EILID_entry trampoline is invoked via ``br``, never
    # ``call``: the analyzer surfaces its ret as unmatched (pinned
    # here so the rule keeps coverage of the ROM-symbol entry case).
    spec = FirmwareSpec(kind="app", app="light_sensor", variant="eilid")
    build = build_firmware(spec)
    report = analyze_program(build.program, name="light_sensor",
                             variant="eilid")
    unmatched = [f for f in report.findings if f.rule == "unmatched-return"]
    assert any(f.function == "S_EILID_entry" for f in unmatched)


# ---- the sweep-guided coverage loop -----------------------------------------

# Indirect-dispatch firmware with a fault-bendable function pointer:
# the honest path always calls ``process``; skipping any of the three
# gate instructions bends r10 to ``diag``.  ``diag`` stays a known
# entry (the dead direct call) but is NOT address-taken, so the
# proposed narrowing excludes it and replay flags the bent call.
BENDABLE_ASM = """
; Indirect-dispatch firmware with a fault-bendable function pointer.
    .text
    .global main
main:
    mov #process, r10
    mov r10, r11
    add #8, r11          ; r11 = diag (process body is 8 bytes)
    mov #1, r15
    cmp #1, r15
    jz ok                ; honest path: always taken
    mov r11, r10         ; fault path: bend the pointer to diag
ok:
    call r10
    mov #1, &0x0070      ; DONE
park:
    jmp park
dead:
    call #diag           ; never executed: diag stays a known entry
process:
    mov #5, &0x0010
    ret
diag:
    mov #5, &0x0010
    ret
"""


@pytest.fixture(scope="module")
def coverage_loop():
    """Run the full loop once: sweep -> correlate -> patch -> re-sweep."""
    spec = FirmwareSpec(kind="asm", source=BENDABLE_ASM,
                        variant="original", name="bendable",
                        link_rom=False)
    build = build_firmware(spec)
    cfg = recover_cfg(build.program, name="bendable")
    plan = expand_plan(enumerate_sites(cfg, kinds=("insn-skip",)),
                       seed=0, count=None, name="bendable")
    baseline = FaultCampaign(spec, plan, profiles=("none",)).run()

    report = analyze_program(build.program, name="bendable")
    correlation = correlate_sweep(baseline, cfg, list(report.findings))

    patch = next(p for p in correlation["proposals"]
                 if p["action"] == "narrow-indirect-targets")
    policy = compile_policy(cfg, build.program.symbols)
    tightened = apply_cfi_patch(policy, patch)
    rerun = FaultCampaign(spec, plan, profiles=("none",),
                          policy=tightened).run()
    return cfg, baseline, report, correlation, patch, policy, \
        tightened, rerun


def test_bendable_image_is_flagged_unregistered(coverage_loop):
    cfg, _, report, _, _, _, _, _ = coverage_loop
    assert not cfg.indirect_targets_registered
    warns = [f for f in report.findings if f.rule == "indirect-unregistered"]
    assert len(warns) == 1
    assert warns[0].evidence["address_taken"] == \
        list(address_taken_entries(cfg))


def test_escape_clusters_map_to_blocks(coverage_loop):
    cfg, baseline, _, correlation, _, _, _, _ = coverage_loop
    clusters = correlation["clusters"]
    # correlation's clusters are cluster_escapes' plus per-cluster findings
    stripped = [{k: v for k, v in c.items() if k != "findings"}
                for c in clusters]
    assert stripped == cluster_escapes(baseline, cfg)
    assert clusters, "the insn-skip sweep must produce escapes"
    for cluster in clusters:
        assert cluster["profile"] == "none"
        assert cluster["fault_ids"] == sorted(cluster["fault_ids"])
        assert set(cluster["outcomes"]) <= {"escape", "silent-corruption"}


def test_proposal_narrows_to_address_taken(coverage_loop):
    cfg, _, _, _, patch, policy, tightened, _ = coverage_loop
    assert patch["targets"] == list(address_taken_entries(cfg))
    assert set(patch["targets"]) < set(patch["was"])
    assert tightened.indirect_targets < policy.indirect_targets
    assert tightened.indirect_from_table


def test_tightening_converts_escapes_to_detections(coverage_loop):
    """Acceptance: the applied tightening turns bent-pointer escapes
    into replay detections in a re-run sweep; nothing regresses."""
    _, baseline, _, _, _, _, _, rerun = coverage_loop
    before = {doc["id"]: doc for doc in baseline.outcomes["none"]}
    after = {doc["id"]: doc for doc in rerun.outcomes["none"]}
    assert set(before) == set(after)

    flipped = [fid for fid in before
               if before[fid]["outcome"] in ("escape", "silent-corruption")
               and after[fid]["outcome"] == "detected"]
    assert flipped, "the tightened policy must catch bent-pointer escapes"
    for fid in flipped:
        assert after[fid]["reason"].startswith("replay:")
    # The patch only ever *adds* detections: no previously-detected
    # fault regresses to an escape.
    for fid in before:
        if before[fid]["outcome"] == "detected":
            assert after[fid]["outcome"] == "detected"
    assert rerun.tally("none").detected > baseline.tally("none").detected


def test_correlation_is_deterministic(coverage_loop):
    cfg, baseline, report, correlation, _, _, _, _ = coverage_loop
    again = correlate_sweep(baseline, cfg, list(report.findings))
    assert json.dumps(correlation, sort_keys=True) == \
        json.dumps(again, sort_keys=True)


def test_patch_validation_rejects_widening(coverage_loop):
    cfg, _, _, _, _, policy, _, _ = coverage_loop
    with pytest.raises(AnalyzeError, match="only narrow"):
        apply_cfi_patch(policy, {"action": "narrow-indirect-targets",
                                 "targets": [0x2]})
    with pytest.raises(AnalyzeError, match="empty"):
        apply_cfi_patch(policy, {"action": "narrow-indirect-targets",
                                 "targets": []})
    with pytest.raises(AnalyzeError, match="not applyable"):
        apply_cfi_patch(policy, {"action": "monitor-range",
                                 "start": 0, "end": 1})


# ---- AnalyzeSpec ------------------------------------------------------------


class TestAnalyzeSpec:
    def test_defaults_validate(self):
        spec = AnalyzeSpec()
        spec.validate()
        assert spec.rules == tuple(RULE_GROUPS)

    def test_round_trip(self):
        spec = AnalyzeSpec(rules=("stack",), stack_margin=32, irq_nesting=2)
        assert AnalyzeSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kwargs", [
        {"rules": ()},
        {"rules": ("bogus",)},
        {"stack_margin": -1},
        {"irq_nesting": -1},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SpecError):
            AnalyzeSpec(**kwargs).validate()

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError):
            AnalyzeSpec.from_dict({"ruels": ("stack",)})


# ---- Session surface --------------------------------------------------------


def _light_sensor_scenario():
    return ScenarioSpec(name="analysis",
                        firmware=FirmwareSpec(kind="app", app="light_sensor",
                                              variant="eilid"))


def test_session_analyze_outcome_and_events():
    assert "analysis-finding" in EVENT_KINDS
    session = Session(_light_sensor_scenario())
    log = open_event_log(None)
    outcome = session.analyze(events=log)
    assert outcome.ok
    assert outcome.name == "light_sensor"
    assert session.analysis_report is not None
    doc = outcome.to_dict()
    assert doc["schema"] == "eilid.analyze"
    assert doc["correlation"] is None
    events = log.events(kind="analysis-finding")
    assert len(events) == len(session.analysis_report.findings)
    for event in events:
        assert event["data"]["rule"]
        assert event["data"]["severity"] in SEVERITIES


def test_session_analyze_correlates_stored_sweep():
    session = Session(_light_sensor_scenario())
    session.fault_sweep(FaultSpec(seed=3, count=6, profiles=("none",)))
    outcome = session.analyze()
    assert outcome.correlation is not None
    assert set(outcome.correlation) == {"clusters", "proposals"}


def test_session_analyze_rejects_bad_spec():
    session = Session(_light_sensor_scenario())
    with pytest.raises(SpecError):
        session.analyze(AnalyzeSpec(rules=("bogus",)))


# ---- CLI --------------------------------------------------------------------


class TestAnalyzeCli:
    def test_benign_app_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["analyze", "light_sensor"]) == 0
        out = capsys.readouterr().out
        assert "light_sensor" in out

    def test_attack_image_exits_two(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--attack", "pmem_overwrite"]) == 2
        assert "pmem-write" in capsys.readouterr().out

    def test_json_envelope(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--attack", "ivt_overwrite",
                     "--json"]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "eilid.analyze"
        assert doc["ok"] is False
        assert doc["counts"]["critical"] >= 1
        assert any(f["rule"] == "ivt-write" for f in doc["findings"])

    def test_sweep_correlation_in_json(self, capsys):
        from repro.cli import main

        assert main(["analyze", "fire_sensor", "--variant", "original",
                     "--sweep", "--count", "12", "--profiles", "none",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["correlation"] is not None
        assert "proposals" in doc["correlation"]

    def test_unknown_rule_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["analyze", "light_sensor", "--rules", "bogus"]) == 1
