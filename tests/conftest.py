"""Shared fixtures.

Expensive artifacts (built applications, victim devices' programs) are
cached at session scope; tests that need a *fresh* device build one
from the cached program, which is cheap.
"""

import pytest

from repro.apps.registry import APPS, TABLE_IV_ORDER
from repro.device import build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.minicc import compile_c
from repro.toolchain import link, parse_source


@pytest.fixture(scope="session")
def builder():
    return IterativeBuild()


@pytest.fixture(scope="session")
def app_builds(builder):
    """{app_name: (original BuildResult, eilid IterativeBuildResult)}."""
    builds = {}
    for name in TABLE_IV_ORDER:
        spec = APPS[name]
        asm = compile_c(spec.c_source, spec.name)
        original = builder.build_original(asm, f"{spec.name}.s")
        eilid = builder.build_eilid(asm, f"{spec.name}.s", verify_convergence=True)
        builds[name] = (original, eilid)
    return builds


@pytest.fixture(scope="session")
def app_runs(app_builds):
    """{app_name: (original RunResult-ish, eilid RunResult-ish)} with devices."""
    runs = {}
    for name, (original, eilid) in app_builds.items():
        spec = APPS[name]
        dev0 = build_device(original.program, security="none",
                            peripherals=spec.make_peripherals())
        res0 = dev0.run(max_cycles=spec.max_cycles)
        dev1 = build_device(eilid.final.program, security="eilid",
                            peripherals=spec.make_peripherals())
        res1 = dev1.run(max_cycles=spec.max_cycles)
        runs[name] = ((dev0, res0), (dev1, res1))
    return runs


def assemble(source, name="test.s", extra_units=(), program_name="test"):
    """Parse + link a single-unit program (helper used across tests)."""
    units = [parse_source(source, name)]
    for unit_name, unit_src in extra_units:
        units.append(parse_source(unit_src, unit_name))
    return link(units, name=program_name)


MINIMAL_CRT = """
    .text
__start:
    mov #0x0a00, r1
    call #main
    mov #1, &0x0070
__halt:
    jmp __halt
__default_handler:
    reti
    .vector 15, __start
"""


def run_c(c_source, max_cycles=500_000, peripherals=None, security="none"):
    """Compile mini-C, link with a minimal crt0, run to DONE.

    Returns the device (DONE value at 0x0070 via harness).
    """
    asm = compile_c(c_source, "t")
    program = assemble(MINIMAL_CRT, "crt0.s", extra_units=[("t.s", asm)])
    device = build_device(program, security=security, peripherals=peripherals)
    device.run(max_cycles=max_cycles)
    return device
