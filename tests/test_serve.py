"""Control-plane tests: shard routing, async pump parity with the
synchronous verifier, the HTTP daemon + client, graceful shutdown.

The parity class is the load-bearing one: the daemon interleaves
thousands of HMAC exchanges on one event loop, and nothing about that
concurrency may change a single security decision -- quarantine
verdicts, accept decisions and nonce high-water marks must match the
synchronous ``attest_stream`` path device for device, including a
captured report replayed into the stream mid-sweep.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.fleet.campaign import CampaignConfig, CampaignStatus
from repro.fleet.protocol import VERIFIER_ID, MsgKind, SignedReport
from repro.fleet.registry import Lifecycle
from repro.fleet.simulation import FleetSimulation
from repro.fleet.store import JsonlStore, SqliteStore
from repro.serve import (
    AsyncFleetPump,
    DaemonThread,
    FleetClient,
    PumpBusy,
    ServeError,
    ShardedStore,
    ShardRouter,
    open_sharded_store,
)
from repro.serve.client import collect


# ---- shard routing ----------------------------------------------------------


class TestShardRouter:
    def test_routing_is_stable_across_instances(self):
        ids = [f"dev-{n:05d}" for n in range(500)]
        first = ShardRouter(4)
        second = ShardRouter(4)
        assert [first.shard_for(i) for i in ids] == \
               [second.shard_for(i) for i in ids]

    def test_every_shard_owns_a_reasonable_share(self):
        ids = [f"dev-{n:05d}" for n in range(2000)]
        groups = ShardRouter(4).partition(ids)
        assert sorted(groups) == [0, 1, 2, 3]
        shares = [len(groups[shard]) / len(ids) for shard in sorted(groups)]
        # Consistent hashing is not perfectly uniform; vnodes keep the
        # skew bounded well inside what load balancing needs.
        assert all(0.10 <= share <= 0.45 for share in shares), shares

    def test_growing_the_ring_moves_few_ids(self):
        ids = [f"dev-{n:05d}" for n in range(2000)]
        four, five = ShardRouter(4), ShardRouter(5)
        moved = sum(1 for device_id in ids
                    if four.shard_for(device_id) != five.shard_for(device_id))
        # Ideal movement is 1/5 of the fleet; allow generous slack but
        # stay far from the ~4/5 a naive modulo hash would reshuffle.
        assert moved / len(ids) <= 0.40, moved

    def test_partition_preserves_order(self):
        ids = [f"dev-{n:05d}" for n in range(64)]
        groups = ShardRouter(3).partition(ids)
        for shard, members in groups.items():
            assert members == [i for i in ids
                               if ShardRouter(3).shard_for(i) == shard]

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardedStore:
    def _docs(self, count):
        return [{"device_id": f"dev-{n:05d}", "n": n} for n in range(count)]

    def test_records_route_and_merge(self, tmp_path):
        store = ShardedStore([JsonlStore(str(tmp_path / "a.jsonl")),
                              SqliteStore(str(tmp_path / "b.db"))])
        for doc in self._docs(40):
            store.save_record(doc)
        store.flush()
        assert len(store.load_records()) == 40
        counts = store.counts()
        assert sum(counts) == 40 and all(count > 0 for count in counts)
        store.close()

    def test_meta_lives_on_shard_zero(self, tmp_path):
        shard0 = JsonlStore(str(tmp_path / "a.jsonl"))
        shard1 = JsonlStore(str(tmp_path / "b.jsonl"))
        store = ShardedStore([shard0, shard1])
        store.save_meta({"clock": 7})
        store.flush()
        assert shard0.load_meta() == {"clock": 7}
        assert shard1.load_meta() == {}
        assert store.load_meta() == {"clock": 7}
        store.close()

    def test_open_sharded_store_dispatch(self, tmp_path):
        assert open_sharded_store(None).backend == "memory"
        single = open_sharded_store([str(tmp_path / "one.db")])
        assert single.backend == "sqlite"  # no ring for one shard
        single.close()
        multi = open_sharded_store([str(tmp_path / "a.jsonl"),
                                    str(tmp_path / "b.db")])
        assert multi.backend == "sharded"
        assert [store.backend for store in multi.stores] == \
               ["jsonl", "sqlite"]
        multi.close()

    def test_fleet_persists_and_restores_across_shards(self, tmp_path):
        paths = [str(tmp_path / "a.jsonl"), str(tmp_path / "b.db")]
        store = open_sharded_store(paths)
        fleet = FleetSimulation(size=12, store=store)
        fleet.attest_all()
        report = fleet.rollout(1, config=CampaignConfig(
            wave_fractions=(0.5, 1.0)))
        assert report.status is CampaignStatus.COMPLETE
        store.close()
        # Both shard files hold live state.
        assert os.path.getsize(paths[0]) > 0
        assert os.path.getsize(paths[1]) > 0
        reopened = open_sharded_store(paths)
        restored = FleetSimulation(store=reopened)
        assert len(restored.registry) == 12
        assert restored.registry.version_histogram() == {1: 12}
        # Restored devices still attest cleanly (replicas rebuilt with
        # the rolled-out payload; nonces advanced past the slack).
        results = restored.attest_all()
        assert all(result.ok for result in results.values())
        reopened.close()


# ---- campaign stop hook -----------------------------------------------------


class TestCampaignStop:
    def test_stop_observed_at_wave_boundary_then_resume(self, tmp_path):
        store = open_sharded_store([str(tmp_path / "a.jsonl"),
                                    str(tmp_path / "b.jsonl")])
        fleet = FleetSimulation(size=40, store=store)
        stop = threading.Event()
        # Trip the stop the moment the first wave commits: the second
        # wave must never be offered.
        subscription = fleet.events.bus.subscribe(
            lambda doc: stop.set(), kinds=("wave-commit",))
        report = fleet.rollout(1, config=CampaignConfig(
            wave_fractions=(0.1, 0.5, 1.0)), stop=stop)
        fleet.events.bus.unsubscribe(subscription)
        assert report.status is CampaignStatus.STOPPED
        assert report.stopped and not report.halted
        assert report.applied == 4 and report.skipped == 36
        assert "stop requested" in report.halt_reason
        # The flushed wave is durable; resume finishes the rest.
        resumed = fleet.rollout(1, resume=True)
        assert resumed.status is CampaignStatus.COMPLETE
        assert resumed.resumed == 4 and resumed.applied == 36
        assert fleet.registry.version_histogram() == {1: 40}
        store.close()

    def test_stop_set_before_run_offers_nothing(self):
        fleet = FleetSimulation(size=8)
        stop = threading.Event()
        stop.set()
        report = fleet.rollout(1, stop=stop)
        assert report.status is CampaignStatus.STOPPED
        assert report.applied == 0 and report.skipped == 8
        assert fleet.registry.version_histogram() == {0: 8}


# ---- async/sync decision parity ---------------------------------------------


FLEET_KW = dict(size=24, loss=0.15, seed=7)


def _decisions(results_by_id, fleet):
    """(ok, detail, state, nonce high-water) per device."""
    out = {}
    for device_id, (ok, detail) in results_by_id.items():
        record = fleet.registry.get(device_id)
        out[device_id] = (ok, detail, record.state.value,
                         record.nonce_high_water)
    return out


def _pump_sweep(fleet, sweeps=1):
    """Run N fully concurrent attest sweeps on a fresh event loop."""

    async def _run():
        pump = AsyncFleetPump(fleet)
        try:
            last = None
            for _ in range(sweeps):
                last = await pump.attest()
            return last
        finally:
            pump.close()

    results = asyncio.run(_run())
    return {doc["device"]: (doc["ok"], doc["detail"]) for doc in results}


class TestAsyncSyncParity:
    def test_concurrent_attest_matches_attest_all(self):
        sync_fleet = FleetSimulation(**FLEET_KW)
        async_fleet = FleetSimulation(**FLEET_KW)
        # Two sweeps: the second starts from advanced nonces/cycles, so
        # ordering bugs that only surface after state moves would show.
        sync_last = None
        for _ in range(2):
            sync_last = fleet_results = {
                device_id: (result.ok, result.detail)
                for device_id, result in sync_fleet.attest_all().items()}
        async_last = _pump_sweep(async_fleet, sweeps=2)
        assert _decisions(async_last, async_fleet) == \
               _decisions(sync_last, sync_fleet)

    def test_concurrent_attest_matches_api_attest_stream(self):
        from repro.api import FleetSpec, ScenarioSpec, Session

        spec = ScenarioSpec(name="fleet", security="casu",
                            fleet=FleetSpec(run_cycles=0, **FLEET_KW))
        session = Session(spec)
        stream = {
            attestation.device_id: (attestation.ok, attestation.detail)
            for attestation in session.attest_stream()}
        sync = _decisions(stream, session.fleet)

        async_fleet = FleetSimulation(**FLEET_KW)
        concurrent = _decisions(_pump_sweep(async_fleet), async_fleet)
        assert concurrent == sync

    def test_replayed_report_mid_stream_quarantines_identically(self):
        """A captured (authentically MAC'd, stale-nonce) report sitting
        in one device's uplink while the whole fleet attests
        concurrently must quarantine that device with 'replay' -- the
        same verdict the synchronous sweep reaches."""
        fleets = [FleetSimulation(**FLEET_KW), FleetSimulation(**FLEET_KW)]
        sync_fleet, async_fleet = fleets
        victim = sync_fleet.registry.ids()[5]
        captured = {}
        for fleet in fleets:
            # Sweep once so the victim has a consumed nonce to replay.
            results = fleet.attest_all()
            assert results[victim].ok, "pick a reachable victim"
            record = fleet.registry.get(victim)
            captured[fleet] = SignedReport.make(
                record.key, b"attest", victim, record.nonce_high_water,
                results[victim].report)
            link = fleet.transport.link(victim)
            # Partition the device and inject the capture: the only
            # reply the verifier can see is the attacker's.
            link.down.loss = 1.0
            link.up.send(victim, VERIFIER_ID,
                         MsgKind.ATTEST_REPORT.value, captured[fleet])
        sync = _decisions(
            {device_id: (result.ok, result.detail)
             for device_id, result in sync_fleet.attest_all().items()},
            sync_fleet)
        concurrent = _decisions(_pump_sweep(async_fleet), async_fleet)
        assert concurrent == sync
        assert concurrent[victim][1] == "replay"
        assert concurrent[victim][2] == Lifecycle.QUARANTINED.value

    def test_per_device_ordering_is_preserved(self):
        """Many concurrent attests against ONE device serialise: every
        exchange consumes a fresh nonce, none collide."""
        fleet = FleetSimulation(size=3)
        device_id = fleet.registry.ids()[0]

        async def _run():
            pump = AsyncFleetPump(fleet)
            try:
                return await asyncio.gather(
                    *(pump.attest_one(device_id) for _ in range(8)))
            finally:
                pump.close()

        outcomes = asyncio.run(_run())
        assert all(result.ok for result, _record in outcomes)
        record = fleet.registry.get(device_id)
        # enroll + 8 attests, each exactly one nonce
        assert record.nonce_high_water == 9
        assert record.attest_count == 8

    def test_rollout_holds_the_fleet_exclusively(self):
        fleet = FleetSimulation(size=4)

        async def _run():
            pump = AsyncFleetPump(fleet)
            try:
                pump._campaign_future = asyncio.get_running_loop(
                    ).create_future()  # a campaign that never finishes
                with pytest.raises(PumpBusy):
                    await pump.attest()
                with pytest.raises(PumpBusy):
                    await pump.enroll(count=1)
                pump._campaign_future.cancel()
            finally:
                pump.close()

        asyncio.run(_run())


# ---- the HTTP daemon + client -----------------------------------------------


@pytest.fixture()
def daemon_fleet():
    fleet = FleetSimulation(size=16)
    with DaemonThread(fleet) as thread:
        yield fleet, FleetClient(thread.url)


class TestDaemonApi:
    def test_status_envelope(self, daemon_fleet):
        fleet, client = daemon_fleet
        doc = client.status()
        assert doc["schema"] == "eilid.serve.status" and doc["version"] == 1
        assert doc["ready"] is True and doc["devices"] == 16
        assert doc["states"] == {"enrolled": 16}
        assert doc["store"] == {"backend": "none", "shards": 1}

    def test_enroll_by_count_and_by_id(self, daemon_fleet):
        fleet, client = daemon_fleet
        doc = client.enroll(count=3)
        assert doc["schema"] == "eilid.serve.enroll"
        assert doc["ok"] and doc["enrolled"] == 3 and doc["devices"] == 19
        doc = client.enroll(device_ids=["sensor-a", "sensor-b"])
        assert doc["ok"] and set(doc["device_ids"]) == \
               {"sensor-a", "sensor-b"}
        assert len(fleet.registry) == 21

    def test_enroll_needs_a_body(self, daemon_fleet):
        _fleet, client = daemon_fleet
        with pytest.raises(ServeError) as excinfo:
            client.enroll()
        assert excinfo.value.status == 400

    def test_attest_full_and_subset(self, daemon_fleet):
        fleet, client = daemon_fleet
        doc = client.attest()
        assert doc["schema"] == "eilid.serve.attest"
        assert doc["ok"] and doc["attested"] == 16 and doc["failed"] == []
        subset = fleet.registry.ids()[:4]
        doc = client.attest(subset)
        assert doc["attested"] == 4
        assert [entry["device"] for entry in doc["results"]] == subset
        assert all(entry["nonce_high_water"] >= 2
                   for entry in doc["results"])

    def test_attest_unknown_device_is_404(self, daemon_fleet):
        _fleet, client = daemon_fleet
        with pytest.raises(ServeError) as excinfo:
            client.attest(["no-such-device"])
        assert excinfo.value.status == 404

    def test_rollout_campaign_and_streaming_events(self, daemon_fleet):
        fleet, client = daemon_fleet
        doc = client.rollout(1, waves=[0.25, 1.0])
        assert doc["schema"] == "eilid.serve.rollout"
        campaign_id = doc["campaign"]
        assert campaign_id
        streamed = collect(client.campaign_events(campaign_id))
        kinds = [event["kind"] for event in streamed]
        assert kinds[0] == "campaign-start" and kinds[-1] == "campaign-end"
        assert kinds.count("wave-commit") == 2
        assert all(event["campaign"] == campaign_id for event in streamed)
        seqs = [event["seq"] for event in streamed]
        assert seqs == sorted(seqs)
        final = client.wait_campaign(campaign_id)
        assert final["report"]["status"] == "complete"
        assert final["report"]["applied"] == 16
        assert final["rollup"]["campaign"] == campaign_id
        assert fleet.registry.version_histogram() == {1: 16}

    def test_campaign_stream_replays_finished_campaigns(self, daemon_fleet):
        _fleet, client = daemon_fleet
        campaign_id = client.rollout(1)["campaign"]
        client.wait_campaign(campaign_id)
        # A second stream over the same (finished) campaign serves the
        # backlog and terminates -- it must not hang waiting for more.
        streamed = collect(client.campaign_events(campaign_id))
        assert streamed and streamed[-1]["kind"] == "campaign-end"

    def test_unknown_campaign_is_404(self, daemon_fleet):
        _fleet, client = daemon_fleet
        with pytest.raises(ServeError) as excinfo:
            client.campaign("c999")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            collect(client.campaign_events("c999"))
        assert excinfo.value.status == 404

    def test_events_backlog_and_since_cursor(self, daemon_fleet):
        _fleet, client = daemon_fleet
        client.attest()
        docs = collect(client.events())
        assert len(docs) >= 16
        seqs = [doc["seq"] for doc in docs]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        later = collect(client.events(since=seqs[-4]))
        assert [doc["seq"] for doc in later] == seqs[-3:]

    def test_metrics_exposition(self, daemon_fleet):
        _fleet, client = daemon_fleet
        client.attest()
        text = client.metrics()
        assert "eilid_serve_requests" in text
        assert "eilid_serve_request_attest_ms" in text

    def test_unknown_route_and_wrong_method(self, daemon_fleet):
        _fleet, client = daemon_fleet
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/enroll")
        assert excinfo.value.status == 405

    def test_malformed_body_is_400(self, daemon_fleet):
        import http.client

        _fleet, client = daemon_fleet
        connection = http.client.HTTPConnection(client.host, client.port,
                                                timeout=30)
        try:
            connection.request("POST", "/attest", body="{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            doc = json.loads(response.read())
            assert response.status == 400
            assert doc["schema"] == "eilid.serve.error"
        finally:
            connection.close()

    def test_rollout_requires_version(self, daemon_fleet):
        _fleet, client = daemon_fleet
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/rollout", {"waves": [1.0]})
        assert excinfo.value.status == 400

    def test_bad_campaign_config_is_400(self, daemon_fleet):
        _fleet, client = daemon_fleet
        with pytest.raises(ServeError) as excinfo:
            client.rollout(1, waves=[0.5])  # must end at 1.0
        assert excinfo.value.status == 400


class TestDaemonShutdown:
    def test_graceful_stop_flushes_every_shard(self, tmp_path):
        paths = [str(tmp_path / "a.jsonl"), str(tmp_path / "b.db")]
        store = open_sharded_store(paths)
        fleet = FleetSimulation(size=10, store=store,
                                events=str(tmp_path / "events.jsonl"))
        thread = DaemonThread(fleet)
        client = FleetClient(thread.url)
        client.attest()
        thread.stop()
        store.close()
        reopened = open_sharded_store(paths)
        docs = reopened.load_records()
        assert len(docs) == 10
        assert all(doc["attest_count"] == 1 for doc in docs.values())
        reopened.close()

    def test_status_reports_shutting_down(self, tmp_path):
        fleet = FleetSimulation(size=4)
        thread = DaemonThread(fleet)
        try:
            assert FleetClient(thread.url).status()["ready"] is True
        finally:
            thread.stop()


# ---- CLI + subprocess regression --------------------------------------------


def _spawn_daemon(tmp_path, devices, extra=()):
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "run",
         "--devices", str(devices),
         "--store-shard", str(tmp_path / "shard-a.jsonl"),
         "--store-shard", str(tmp_path / "shard-b.db"),
         "--events", str(tmp_path / "events.db"), "--json", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        cwd=os.getcwd())
    ready = json.loads(proc.stdout.readline())
    assert ready["schema"] == "eilid.serve.ready"
    return proc, ready


class TestServeCli:
    def test_sigterm_mid_rollout_exits_zero_and_resumes(self, tmp_path):
        """THE shutdown regression: kill the daemon between waves, get
        exit 0 with every flushed wave durable, then finish the same
        campaign offline via rollout(resume=True) on the same shards."""
        proc, ready = _spawn_daemon(tmp_path, devices=400)
        client = FleetClient(ready["url"])
        try:
            doc = client.rollout(2, waves=[0.02, 0.1, 0.3, 1.0])
            campaign_id = doc["campaign"]
            # A second rollout while one is in flight conflicts.
            with pytest.raises(ServeError) as excinfo:
                client.rollout(3)
            assert excinfo.value.status == 409
            for event in client.campaign_events(campaign_id, timeout=120):
                if event["kind"] == "wave-commit":
                    proc.send_signal(signal.SIGTERM)
                    break
        finally:
            out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert json.loads(out.splitlines()[-1])["schema"] == \
            "eilid.serve.shutdown"
        store = open_sharded_store([str(tmp_path / "shard-a.jsonl"),
                                    str(tmp_path / "shard-b.db")])
        fleet = FleetSimulation(store=store,
                                events=str(tmp_path / "events.db"))
        assert len(fleet.registry) == 400
        report = fleet.rollout(2, resume=True)
        assert report.status is CampaignStatus.COMPLETE
        # At least the committed first wave (8 devices) was durable and
        # skipped; the rest applied now.
        assert report.resumed >= 8
        assert report.resumed + report.applied == 400
        assert fleet.registry.version_histogram() == {2: 400}
        store.close()

    def test_fleet_status_and_watch_against_daemon(self, tmp_path, capsys):
        from repro.cli import main

        fleet = FleetSimulation(size=6)
        with DaemonThread(fleet) as thread:
            code = main(["fleet", "status", "--url", thread.url, "--json"])
            doc = json.loads(capsys.readouterr().out)
            assert code == 0
            assert doc["daemon"]["devices"] == 6
            assert doc["attested"] == 6
            code = main(["fleet", "watch", "--url", thread.url, "--json"])
            lines = [json.loads(line) for line
                     in capsys.readouterr().out.splitlines() if line.strip()]
            assert code == 0
            assert len(lines) >= 12  # enrolls + attests
            assert all("seq" in doc and "kind" in doc for doc in lines)

    def test_fleet_status_url_exit_2_on_quarantine(self, capsys):
        from repro.cli import main

        fleet = FleetSimulation(size=4)
        victim = fleet.registry.ids()[0]
        fleet.transport.link(victim).down.loss = 1.0  # partition one
        with DaemonThread(fleet) as thread:
            code = main(["fleet", "status", "--url", thread.url, "--json"])
            doc = json.loads(capsys.readouterr().out)
        assert code == 2
        assert [entry["device"] for entry in doc["failed"]] == [victim]

    def test_watch_url_unreachable_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["fleet", "watch",
                     "--url", "http://127.0.0.1:1", "--json"]) == 1
        assert "cannot stream" in capsys.readouterr().err

    def test_serve_run_rejects_bad_flags(self, capsys):
        from repro.cli import main

        assert main(["serve", "run", "--devices", "-1"]) == 1
        assert main(["serve", "run", "--loss", "1.5"]) == 1
        capsys.readouterr()
