"""Uniform CLI ``--json`` plumbing.

Every subcommand's JSON output must parse cleanly and carry ``schema``
and ``version`` keys (the envelope from repro.api.results); exit codes
must match the text mode's contract exactly.
"""

import json

import pytest

from repro.cli import main


def run_json(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert isinstance(doc, dict)
    assert doc["schema"].startswith("eilid.")
    assert doc["version"] == 1
    return code, doc


EVERY_SUBCOMMAND = [
    (["tables", "--table", "1"], "eilid.cli.tables"),
    (["figure10"], "eilid.cli.figure10"),
    (["micro"], "eilid.cli.micro"),
    (["run-app", "light_sensor"], "eilid.run"),
    (["attack", "return_address_smash", "--security", "eilid"], "eilid.run"),
    (["verify"], "eilid.cli.verify"),
    (["cfg", "build", "light_sensor"], "eilid.cfg.policy"),
    (["cfg", "diff", "light_sensor"], "eilid.cli.cfg-diff"),
    (["cfg", "verify-trace", "light_sensor"], "eilid.verify"),
    (["faults", "enumerate", "light_sensor"], "eilid.cli.faults-enumerate"),
    (["faults", "sweep", "light_sensor", "--count", "2",
      "--profiles", "none"], "eilid.cli.faults-sweep"),
    (["fleet", "enroll", "--devices", "5"], "eilid.cli.fleet-enroll"),
    (["fleet", "status", "--devices", "5"], "eilid.attest"),
    (["fleet", "rollout", "--devices", "5"], "eilid.run"),
]


@pytest.mark.parametrize("argv,schema", EVERY_SUBCOMMAND,
                         ids=[" ".join(argv) for argv, _ in EVERY_SUBCOMMAND])
def test_every_subcommand_round_trips(capsys, argv, schema):
    code, doc = run_json(capsys, argv + ["--json"])
    assert code == 0
    assert doc["schema"] == schema
    # the document survives a full serialise -> parse round trip
    assert json.loads(json.dumps(doc)) == doc


def test_cfg_policy_json_still_loads_as_policy(capsys):
    # The folded envelope keeps the artifact loadable by its own class.
    from repro.cfg import CfiPolicy

    code, doc = run_json(capsys, ["cfg", "build", "light_sensor", "--json"])
    assert code == 0
    policy = CfiPolicy.from_dict(doc)
    assert policy.return_sites


def test_attack_hijack_json_exit_2(capsys):
    code, doc = run_json(
        capsys, ["attack", "return_address_smash", "--security", "none",
                 "--json"])
    assert code == 2
    assert doc["attack"]["outcome"] == "hijacked"
    assert doc["ok"] is False


def test_cfg_verify_trace_attack_json_exit_2(capsys):
    code, doc = run_json(
        capsys, ["cfg", "verify-trace", "--attack", "return_address_smash",
                 "--json"])
    assert code == 2
    assert doc["ok"] is False and doc["reason"]


def test_fleet_rollout_halted_json_exit_3(capsys):
    code, doc = run_json(
        capsys, ["fleet", "rollout", "--devices", "20",
                 "--tamper-fraction", "0.5", "--json"])
    assert code == 3
    assert doc["fleet"]["rollout"]["halted"] is True


def test_run_app_violating_scenario_keeps_exit_contract(capsys):
    # --json must not change exit semantics: usage errors stay 1.
    assert main(["run-app", "nonsense", "--json"]) == 1
    err = capsys.readouterr().err
    assert "firmware.app" in err


def test_json_flag_emits_single_document(capsys):
    assert main(["fleet", "enroll", "--devices", "3", "--json"]) == 0
    out = capsys.readouterr().out
    # exactly one JSON document, nothing else on stdout
    assert json.loads(out)["devices"] == 3
    assert out.strip().count("\n") == 0
