"""CPU instruction semantics: flags, addressing, stack, interrupts."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import Cpu, InterruptController
from repro.isa.registers import FLAG_C, FLAG_N, FLAG_V, FLAG_Z, SP
from repro.memory import Bus
from repro.toolchain import link, parse_source

WORD = st.integers(min_value=0, max_value=0xFFFF)


def make_cpu(asm, data=(), start_regs=None):
    """Assemble a snippet at PMEM start and return a stepped-in CPU."""
    source = "    .text\n__start:\n" + asm + "\nend:\n    jmp end\n    .vector 15, __start\n"
    program = link([parse_source(source, "snippet.s")], name="snippet")
    bus = Bus(program.layout)
    for addr, chunk in program.segments():
        bus.load_bytes(addr, chunk)
    for addr, value in data:
        bus.poke_word(addr, value)
    cpu = Cpu(bus, InterruptController())
    cpu.reset()
    for reg, value in (start_regs or {}).items():
        cpu.set_reg(reg, value)
    return cpu, program


def run_steps(cpu, n):
    for _ in range(n):
        cpu.step()
    return cpu


class TestMovAndAddressing:
    def test_mov_immediate(self):
        cpu, _ = make_cpu("    mov #0x1234, r10")
        run_steps(cpu, 1)
        assert cpu.get_reg(10) == 0x1234

    def test_mov_absolute_load_store(self):
        cpu, _ = make_cpu(
            "    mov &0x0200, r10\n    mov r10, &0x0202",
            data=[(0x0200, 0xBEEF)],
        )
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0xBEEF
        assert cpu.bus.peek_word(0x0202) == 0xBEEF

    def test_indexed_addressing(self):
        cpu, _ = make_cpu(
            "    mov #0x0200, r10\n    mov 4(r10), r11",
            data=[(0x0204, 0xCAFE)],
        )
        run_steps(cpu, 2)
        assert cpu.get_reg(11) == 0xCAFE

    def test_indirect_autoincrement_word(self):
        cpu, _ = make_cpu(
            "    mov #0x0200, r10\n    mov @r10+, r11\n    mov @r10+, r12",
            data=[(0x0200, 0x1111), (0x0202, 0x2222)],
        )
        run_steps(cpu, 3)
        assert cpu.get_reg(11) == 0x1111
        assert cpu.get_reg(12) == 0x2222
        assert cpu.get_reg(10) == 0x0204

    def test_autoincrement_byte_steps_by_one(self):
        cpu, _ = make_cpu(
            "    mov #0x0200, r10\n    mov.b @r10+, r11\n    mov.b @r10+, r12",
            data=[(0x0200, 0x3412)],
        )
        run_steps(cpu, 3)
        assert cpu.get_reg(11) == 0x12
        assert cpu.get_reg(12) == 0x34
        assert cpu.get_reg(10) == 0x0202

    def test_byte_write_to_register_clears_high_byte(self):
        cpu, _ = make_cpu("    mov #0xffff, r10\n    mov.b #0x12, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0x0012

    def test_byte_write_to_memory_leaves_sibling(self):
        cpu, _ = make_cpu(
            "    mov #0x55, r10\n    mov.b r10, &0x0201",
            data=[(0x0200, 0x1122)],
        )
        run_steps(cpu, 2)
        assert cpu.bus.peek_word(0x0200) == 0x5522


class TestArithmeticFlags:
    def test_add_carry_and_zero(self):
        cpu, _ = make_cpu("    mov #0xffff, r10\n    add #1, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0
        assert cpu.flag(FLAG_C) and cpu.flag(FLAG_Z)
        assert not cpu.flag(FLAG_N) and not cpu.flag(FLAG_V)

    def test_add_signed_overflow(self):
        cpu, _ = make_cpu("    mov #0x7fff, r10\n    add #1, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0x8000
        assert cpu.flag(FLAG_V) and cpu.flag(FLAG_N)

    def test_addc_uses_carry(self):
        cpu, _ = make_cpu(
            "    mov #0xffff, r10\n    add #1, r10\n    mov #5, r11\n    addc #0, r11"
        )
        run_steps(cpu, 4)
        assert cpu.get_reg(11) == 6

    def test_sub_borrow_clears_carry(self):
        cpu, _ = make_cpu("    mov #3, r10\n    sub #5, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0xFFFE
        assert not cpu.flag(FLAG_C)
        assert cpu.flag(FLAG_N)

    def test_sub_no_borrow_sets_carry(self):
        cpu, _ = make_cpu("    mov #5, r10\n    sub #3, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 2
        assert cpu.flag(FLAG_C)

    def test_cmp_does_not_write(self):
        cpu, _ = make_cpu("    mov #7, r10\n    cmp #7, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 7
        assert cpu.flag(FLAG_Z)

    def test_dadd_bcd(self):
        cpu, _ = make_cpu("    clrc\n    mov #0x0199, r10\n    dadd #0x0001, r10")
        run_steps(cpu, 3)
        assert cpu.get_reg(10) == 0x0200

    def test_dadd_carry_chain(self):
        cpu, _ = make_cpu("    clrc\n    mov #0x9999, r10\n    dadd #0x0001, r10")
        run_steps(cpu, 3)
        assert cpu.get_reg(10) == 0x0000
        assert cpu.flag(FLAG_C)

    def test_and_sets_carry_on_nonzero(self):
        cpu, _ = make_cpu("    mov #0x0f0f, r10\n    and #0x00ff, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0x000F
        assert cpu.flag(FLAG_C) and not cpu.flag(FLAG_Z)

    def test_bit_only_flags(self):
        cpu, _ = make_cpu("    mov #0x0100, r10\n    bit #0x0100, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0x0100
        assert not cpu.flag(FLAG_Z)

    def test_xor_overflow_when_both_negative(self):
        cpu, _ = make_cpu("    mov #0x8001, r10\n    xor #0x8000, r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 1
        assert cpu.flag(FLAG_V)

    def test_bic_bis_no_flags(self):
        cpu, _ = make_cpu(
            "    setc\n    setz\n    mov #0x00f0, r10\n    bic #0x0030, r10\n    bis #0x0003, r10"
        )
        run_steps(cpu, 5)
        assert cpu.get_reg(10) == 0x00C3
        assert cpu.flag(FLAG_C) and cpu.flag(FLAG_Z)  # untouched


class TestShiftsAndSingleOps:
    def test_rra_arithmetic(self):
        cpu, _ = make_cpu("    mov #0x8004, r10\n    rra r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0xC002
        assert not cpu.flag(FLAG_C)

    def test_rra_carry_out(self):
        cpu, _ = make_cpu("    mov #0x0003, r10\n    rra r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 1 and cpu.flag(FLAG_C)

    def test_rrc_rotates_carry_in(self):
        cpu, _ = make_cpu("    setc\n    mov #0x0000, r10\n    rrc r10")
        run_steps(cpu, 3)
        assert cpu.get_reg(10) == 0x8000

    def test_swpb(self):
        cpu, _ = make_cpu("    mov #0x1234, r10\n    swpb r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0x3412

    def test_sxt_sign_extends(self):
        cpu, _ = make_cpu("    mov #0x0080, r10\n    sxt r10")
        run_steps(cpu, 2)
        assert cpu.get_reg(10) == 0xFF80
        assert cpu.flag(FLAG_N)


class TestStackAndCalls:
    def test_push_pop(self):
        cpu, _ = make_cpu(
            "    mov #0x0a00, r1\n    mov #0x1234, r10\n    push r10\n    pop r11"
        )
        run_steps(cpu, 4)
        assert cpu.get_reg(11) == 0x1234
        assert cpu.sp == 0x0A00

    def test_call_pushes_return_and_ret_pops(self):
        cpu, prog = make_cpu(
            "    mov #0x0a00, r1\n"
            "    call #sub\n"
            "    mov #1, r12\n"
            "    jmp end\n"
            "sub:\n"
            "    mov #2, r13\n"
            "    ret"
        )
        run_steps(cpu, 6)
        assert cpu.get_reg(13) == 2
        assert cpu.get_reg(12) == 1
        assert cpu.sp == 0x0A00

    def test_call_register_indirect(self):
        cpu, prog = make_cpu(
            "    mov #0x0a00, r1\n"
            "    mov #sub, r12\n"
            "    call r12\n"
            "    jmp end\n"
            "sub:\n"
            "    mov #9, r13\n"
            "    ret"
        )
        run_steps(cpu, 6)
        assert cpu.get_reg(13) == 9


class TestJumps:
    @pytest.mark.parametrize("asm,expected", [
        ("    mov #1, r10\n    tst r10\n    jz miss\n    mov #7, r11\nmiss:", 7),
        ("    mov #0, r10\n    tst r10\n    jnz miss\n    mov #7, r11\nmiss:", 7),
        ("    mov #5, r10\n    cmp #5, r10\n    jz hit\n    jmp end\nhit:\n    mov #7, r11", 7),
    ])
    def test_conditional_jumps(self, asm, expected):
        cpu, _ = make_cpu(asm)
        run_steps(cpu, 6)
        assert cpu.get_reg(11) == expected

    def test_jge_jl_signed(self):
        cpu, _ = make_cpu(
            "    mov #0xfffe, r10\n"  # -2
            "    cmp #1, r10\n"  # -2 - 1 < 0
            "    jl neg\n"
            "    jmp end\n"
            "neg:\n"
            "    mov #1, r11"
        )
        run_steps(cpu, 5)
        assert cpu.get_reg(11) == 1


class TestInterrupts:
    def _irq_cpu(self):
        source = (
            "    .text\n"
            "__start:\n"
            "    mov #0x0a00, r1\n"
            "    eint\n"
            "spin:\n"
            "    jmp spin\n"
            "__isr_t:\n"
            "    mov #0x55, r10\n"
            "    reti\n"
            "    .vector 9, __isr_t\n"
            "    .vector 15, __start\n"
        )
        program = link([parse_source(source, "irq.s")], name="irq")
        bus = Bus(program.layout)
        for addr, chunk in program.segments():
            bus.load_bytes(addr, chunk)
        cpu = Cpu(bus, InterruptController())
        cpu.reset()
        return cpu

    def test_interrupt_entry_pushes_pc_sr_and_clears_sr(self):
        cpu = self._irq_cpu()
        run_steps(cpu, 3)  # init + spin a bit
        assert cpu.gie
        spin_pc = cpu.pc
        cpu.ic.request(9)
        record = cpu.step()
        assert record.kind.value == "interrupt"
        assert cpu.bus.peek_word(cpu.sp) != 0 or True  # SR may be anything
        assert cpu.bus.peek_word(cpu.sp + 2) == spin_pc
        assert not cpu.gie  # SR cleared on entry

    def test_reti_restores_context(self):
        cpu = self._irq_cpu()
        run_steps(cpu, 3)
        spin_pc = cpu.pc
        sr_before = cpu.sr
        cpu.ic.request(9)
        run_steps(cpu, 3)  # irq entry + isr body + reti
        assert cpu.get_reg(10) == 0x55
        assert cpu.pc == spin_pc
        assert cpu.sr == sr_before

    def test_interrupt_blocked_without_gie(self):
        cpu = self._irq_cpu()
        cpu.step()  # only the SP init; GIE still clear
        cpu.ic.request(9)
        record = cpu.step()
        assert record.kind.value == "instruction"

    def test_irq_deferred_predicate(self):
        cpu = self._irq_cpu()
        run_steps(cpu, 3)
        cpu.irq_deferred_at = lambda pc: True
        cpu.ic.request(9)
        record = cpu.step()
        assert record.kind.value == "instruction"  # deferred, not taken


class TestAlignmentAndFaults:
    """SLAU049 word-access alignment and top-of-address-space faults."""

    def _raw_cpu(self):
        bus = Bus()
        cpu = Cpu(bus, InterruptController())
        return cpu, bus

    def test_word_read_ignores_low_address_bit(self):
        _, bus = self._raw_cpu()
        bus.poke_word(0x0200, 0xBEEF)
        assert bus.read_word(0x0201) == 0xBEEF
        assert bus.read_word(0x0200) == 0xBEEF

    def test_word_write_ignores_low_address_bit(self):
        _, bus = self._raw_cpu()
        bus.write_word(0x0203, 0xCAFE)
        assert bus.peek_word(0x0202) == 0xCAFE
        assert bus.peek_byte(0x0204) == 0  # the next word is untouched
        # The monitors see the aligned (architectural) address.
        write = [a for a in bus.drain_trace() if a.kind.value == "write"][-1]
        assert write.addr == 0x0202

    def test_word_access_at_top_of_memory_is_aligned_not_fault(self):
        _, bus = self._raw_cpu()
        bus.poke_word(0xFFFE, 0x1234)
        assert bus.read_word(0xFFFF) == 0x1234

    def test_word_access_past_top_raises(self):
        from repro.errors import MemoryAccessError

        _, bus = self._raw_cpu()
        with pytest.raises(MemoryAccessError):
            bus.read_word(0x10000)
        with pytest.raises(MemoryAccessError):
            bus.write_word(0x10000, 1)

    def test_odd_stack_pointer_pushes_to_aligned_word(self):
        cpu, bus = self._raw_cpu()
        cpu.set_reg(SP, 0x0A01)
        cpu._push(0x5678)
        assert cpu.sp == 0x09FF
        assert bus.peek_word(0x09FE) == 0x5678

    def test_extension_fetch_past_top_is_fault_step_not_crash(self):
        # Regression: a two-word instruction whose first word sits at
        # 0xFFFE fetches its extension word at 0x10000; that used to let
        # MemoryAccessError escape Cpu.step and crash the simulator.
        cpu, bus = self._raw_cpu()
        first_word = 0x403A  # mov #imm, r10 -- extension word required
        bus.poke_word(0xFFFE, first_word)
        cpu.set_reg(0, 0xFFFE)
        record = cpu.step()
        assert record.kind.value == "illegal"
        assert record.illegal_word == first_word
        assert record.next_pc == 0xFFFE  # fault steps do not advance PC
        assert record.cycles == 1

    def test_extension_fetch_fault_is_stable_across_repeats(self):
        cpu, bus = self._raw_cpu()
        bus.poke_word(0xFFFE, 0x403A)
        cpu.set_reg(0, 0xFFFE)
        records = [cpu.step() for _ in range(3)]
        assert all(r.kind.value == "illegal" for r in records)


# ---- differential property tests against a Python reference -----------------

@given(a=WORD, b=WORD)
def test_add_flags_match_reference(a, b):
    cpu, _ = make_cpu(f"    mov #{a}, r10\n    add #{b}, r10")
    run_steps(cpu, 2)
    total = a + b
    assert cpu.get_reg(10) == total & 0xFFFF
    assert cpu.flag(FLAG_C) == (total > 0xFFFF)
    assert cpu.flag(FLAG_Z) == (total & 0xFFFF == 0)
    assert cpu.flag(FLAG_N) == bool(total & 0x8000)
    sa, sb, sr = a >= 0x8000, b >= 0x8000, bool(total & 0x8000)
    assert cpu.flag(FLAG_V) == (sa == sb and sa != sr)


@given(a=WORD, b=WORD)
def test_sub_result_matches_reference(a, b):
    cpu, _ = make_cpu(f"    mov #{a}, r10\n    sub #{b}, r10")
    run_steps(cpu, 2)
    assert cpu.get_reg(10) == (a - b) & 0xFFFF
    assert cpu.flag(FLAG_C) == (a >= b)  # C = no borrow


@given(a=WORD, b=WORD, op=st.sampled_from(["and", "xor", "bis", "bic"]))
def test_logic_results_match_reference(a, b, op):
    cpu, _ = make_cpu(f"    mov #{a}, r10\n    {op} #{b}, r10")
    run_steps(cpu, 2)
    expected = {
        "and": a & b, "xor": a ^ b, "bis": a | b, "bic": a & ~b & 0xFFFF
    }[op]
    assert cpu.get_reg(10) == expected
