"""Evaluation harness: table generators, figure data, micro-bench, CLI."""

import pytest

from repro.eval import (
    generate_table1,
    generate_table2,
    generate_table3,
    generate_figure10,
    measure_micro,
    render_figure10,
    render_micro,
    render_table1,
    render_table2,
    render_table3,
)
from repro.eval.paper_data import (
    PAPER_AVG_RUN_OVERHEAD_PCT,
    PAPER_TABLE4,
)
from repro.eval.table1 import eilid_row_from_implementation


class TestTable1:
    def test_ten_techniques(self):
        rows = generate_table1()
        assert len(rows) == 10
        assert rows[-1].work == "EILID"

    def test_eilid_is_the_only_realtime_low_end_full_cfi(self):
        rows = generate_table1()
        full = [
            r for r in rows
            if r.realtime and r.forward_edge and r.backward_edge and r.interrupt
            and "MSP430" in r.platform
        ]
        assert [r.work for r in full] == ["EILID"]

    def test_eilid_row_derived_from_implementation_matches_paper(self):
        derived = eilid_row_from_implementation()
        paper = [r for r in generate_table1() if r.work == "EILID"][0]
        assert derived == paper

    def test_render_contains_all_works(self):
        text = render_table1()
        for row in generate_table1():
            assert row.work in text


class TestTable2:
    def test_three_platforms(self):
        rows = generate_table2()
        assert [r["platform"] for r in rows] == [
            "TI MSP430", "AVR ATMega32", "Microchip PIC16"
        ]

    def test_msp430_row_matches_isa_model(self):
        """The MSP430 column must agree with the simulator's opcodes."""
        from repro.isa.opcodes import lookup

        row = generate_table2()[0]
        assert row["call"] == "CALL" and lookup("call") is not None
        assert row["return"] == "RET"
        assert row["return_from_interrupt"] == "RETI" and lookup("reti") is not None

    def test_render(self):
        assert "RETFIE" in render_table2()


class TestTable3:
    def test_reserved_registers(self):
        rows = generate_table3()
        assert [r["registers"] for r in rows] == ["r4", "r5", "r6, r7"]

    def test_render(self):
        assert "shadow stack" in render_table3()


class TestFigure10:
    def test_eilid_point_matches_paper_exactly(self):
        data = generate_figure10()
        index = data.names.index("EILID")
        assert data.luts[index] == 99
        assert data.registers[index] == 34
        assert round(data.eilid_lut_pct, 1) == 5.3
        assert round(data.eilid_register_pct, 1) == 4.9

    def test_eilid_is_cheapest_on_its_platform(self):
        data = generate_figure10()
        eilid = data.names.index("EILID")
        for index, name in enumerate(data.names):
            if index != eilid:
                assert data.luts[index] > data.luts[eilid]
                assert data.registers[index] > data.registers[eilid]

    def test_tiny_cfa_and_acfa_exact(self):
        data = generate_figure10()
        assert data.luts[data.names.index("Tiny-CFA")] == 302
        assert data.registers[data.names.index("ACFA")] == 946

    def test_structural_breakdown_sums(self):
        data = generate_figure10()
        total_luts = sum(l for l, _ in data.model.breakdown().values())
        total_regs = sum(r for _, r in data.model.breakdown().values())
        assert total_luts == data.model.extension_luts == 99
        assert total_regs == data.model.extension_registers == 34

    def test_render(self):
        text = render_figure10()
        assert "Figure 10(a)" in text and "Figure 10(b)" in text
        assert "216KB" in text  # the LO-FAT RAM footnote


class TestMicro:
    @pytest.fixture(scope="class")
    def micro(self):
        return measure_micro()

    def test_check_costs_more_than_store(self, micro):
        """The paper's shape: checking (compare + branch) beats storing."""
        assert micro.check_cycles > micro.store_cycles
        assert micro.check_instructions > micro.store_instructions

    def test_ratio_matches_paper(self, micro):
        # paper: 13.4/11.8 = 1.14x; accept a generous band.
        assert 1.0 < micro.check_to_store_ratio < 1.5

    def test_costs_are_tens_of_cycles(self, micro):
        assert 15 <= micro.store_cycles <= 120
        assert 15 <= micro.check_cycles <= 120

    def test_render(self, micro):
        text = render_micro(micro)
        assert "per call" in text and "check/store" in text


class TestPaperData:
    def test_table4_overheads_consistent(self):
        for name, row in PAPER_TABLE4.items():
            assert row.run_overhead_pct > 0
            assert row.size_overhead_pct > 0
            assert row.compile_overhead_pct > 0

    def test_paper_average_runtime(self):
        rows = PAPER_TABLE4.values()
        average = sum(r.run_overhead_pct for r in rows) / len(PAPER_TABLE4)
        assert abs(average - PAPER_AVG_RUN_OVERHEAD_PCT) < 0.3


class TestCli:
    def test_tables_static(self, capsys):
        from repro.cli import main

        assert main(["tables", "--table", "1"]) == 0
        assert "EILID" in capsys.readouterr().out

    def test_figure10(self, capsys):
        from repro.cli import main

        assert main(["figure10"]) == 0
        assert "Figure 10(a)" in capsys.readouterr().out

    def test_verify(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_run_app(self, capsys):
        from repro.cli import main

        assert main(["run-app", "light_sensor", "--variant", "eilid"]) == 0
        out = capsys.readouterr().out
        assert "done=True" in out and "violations=0" in out

    def test_attack(self, capsys):
        from repro.cli import main

        assert main(["attack", "return_address_smash", "--security", "eilid"]) == 0
        assert "reset" in capsys.readouterr().out

    def test_unknown_attack(self, capsys):
        from repro.cli import main

        assert main(["attack", "nonsense"]) == 1
