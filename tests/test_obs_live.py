"""Live observability: bus fan-out, tails, alert rules, span trees,
exporters, and the fleet/CLI wiring over them.

The properties this file guards:

* every ``emit()`` fans out to bus subscribers exactly once, after the
  log's lock is released, with kind filters honoured and subscriber
  exceptions counted instead of raised;
* a second process can follow a durable log via a tail cursor: seq
  order, exactly-once delivery across polls and reopens, a torn JSONL
  tail buffered until complete;
* each built-in alert rule trips on the failure shape it names, fires
  once per (rule, campaign), windows on event timestamps (offline
  replay == live), and a disabled engine costs the emitter nothing;
* spans form parent/trace trees; a process-shard worker's snapshot
  merges into the parent with re-rooted lineage, and thread vs process
  campaign backends produce the same offer totals;
* the Prometheus/JSON exporters emit parseable text, and the spec
  layer validates alert configs before a fleet is ever built.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import (
    METRICS,
    AlertEngine,
    EventBus,
    JsonlEventLog,
    MemoryEventLog,
    MetricsRegistry,
    ObsError,
    SqliteEventLog,
    build_rules,
    default_rules,
    open_event_log,
    open_event_tail,
    parse_prometheus,
    to_json_doc,
    to_prometheus,
    write_snapshot,
)
from repro.obs.alerts import (
    RULE_REGISTRY,
    QuarantineRateRule,
    ReplayBurstRule,
    ViolationSurgeRule,
    WaveStallRule,
)


def doc(kind, seq, ts, campaign="c1", device=None, **data):
    """A hand-built event document with controlled timestamps."""
    return {"seq": seq, "ts": ts, "kind": kind, "campaign": campaign,
            "device": device, "data": data}


# ---- the bus ----------------------------------------------------------------


class TestEventBus:
    def test_publish_fans_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda d: seen.append(("a", d["seq"])))
        bus.subscribe(lambda d: seen.append(("b", d["seq"])))
        bus.publish(doc("offer", 1, 0.0))
        assert seen == [("a", 1), ("b", 1)]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=("quarantine",))
        bus.publish(doc("offer", 1, 0.0))
        bus.publish(doc("quarantine", 2, 0.0))
        assert [d["kind"] for d in seen] == ["quarantine"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        subscription = bus.subscribe(seen.append)
        bus.publish(doc("offer", 1, 0.0))
        bus.unsubscribe(subscription)
        bus.publish(doc("offer", 2, 0.0))
        assert len(seen) == 1 and len(bus) == 0

    def test_subscriber_exception_is_counted_not_raised(self):
        bus = EventBus()
        seen = []

        def boom(_):
            raise RuntimeError("bad subscriber")

        bus.subscribe(boom)
        bus.subscribe(seen.append)
        bus.publish(doc("offer", 1, 0.0))  # must not raise
        assert bus.errors == 1
        assert len(seen) == 1  # later subscribers still served

    def test_every_log_emit_publishes_to_its_bus(self, tmp_path):
        for log in (MemoryEventLog(),
                    JsonlEventLog(str(tmp_path / "bus.jsonl")),
                    SqliteEventLog(str(tmp_path / "bus.db"))):
            seen = []
            log.bus.subscribe(seen.append)
            log.emit("enroll", device="d1")
            campaign = log.start_campaign(target_version=1)
            assert [d["kind"] for d in seen] == ["enroll", "campaign-start"]
            assert seen[1]["campaign"] == campaign
            log.close()

    def test_subscriber_may_emit_followup_without_deadlock(self):
        log = MemoryEventLog()
        log.bus.subscribe(
            lambda d: log.emit("alert", campaign=d["campaign"], rule="x")
            if d["kind"] == "quarantine" else None)
        log.emit("quarantine", device="d1", campaign="c1", reason="bad-mac")
        kinds = [d["kind"] for d in log.events()]
        assert kinds == ["quarantine", "alert"]


# ---- tails ------------------------------------------------------------------


TAIL_SUFFIXES = ("jsonl", "db")


class TestEventTails:
    def test_memory_paths_cannot_be_tailed(self):
        with pytest.raises(ObsError):
            open_event_tail(None)
        with pytest.raises(ObsError):
            open_event_tail(":memory:")

    @pytest.mark.parametrize("suffix", TAIL_SUFFIXES)
    def test_exactly_once_across_polls(self, tmp_path, suffix):
        path = str(tmp_path / f"tail.{suffix}")
        log = open_event_log(path)
        tail = open_event_tail(path)
        assert tail.read() == []  # nothing durable yet
        log.emit("enroll", device="d1")
        log.flush()
        first = tail.read()
        assert [d["seq"] for d in first] == [1]
        assert tail.read() == []  # no duplicate delivery
        log.emit("enroll", device="d2")
        log.flush()
        assert [d["seq"] for d in tail.read()] == [2]
        tail.close()
        log.close()

    @pytest.mark.parametrize("suffix", TAIL_SUFFIXES)
    def test_resume_token_skips_delivered_events(self, tmp_path, suffix):
        path = str(tmp_path / f"resume.{suffix}")
        log = open_event_log(path)
        for n in range(5):
            log.emit("enroll", device=f"d{n}")
        log.flush()
        log.close()
        with open_event_tail(path) as tail:
            delivered = tail.read()
            token = tail.last_seq
        assert len(delivered) == 5 and token == 5
        # reopen mid-stream: nothing re-delivered, new events flow
        log = open_event_log(path)
        log.emit("enroll", device="d5")
        log.flush()
        with open_event_tail(path, since_seq=token) as tail:
            assert [d["seq"] for d in tail.read()] == [6]
        log.close()

    @pytest.mark.parametrize("suffix", TAIL_SUFFIXES)
    def test_missing_file_reads_empty_until_writer_creates_it(
            self, tmp_path, suffix):
        path = str(tmp_path / f"late.{suffix}")
        tail = open_event_tail(path)
        assert tail.read() == []
        log = open_event_log(path)
        log.emit("enroll", device="d1")
        log.flush()
        assert [d["device"] for d in tail.read()] == ["d1"]
        tail.close()
        log.close()

    def test_torn_jsonl_line_is_buffered_until_complete(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        whole = json.dumps({"seq": 1, "ts": 0.0, "kind": "enroll",
                            "campaign": None, "device": "d1", "data": {}})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(whole[:20])  # a write caught mid-syscall
            handle.flush()
            tail = open_event_tail(path)
            assert tail.read() == []  # half a line is not an event
            handle.write(whole[20:] + "\n")
            handle.flush()
        docs = tail.read()
        assert [d["seq"] for d in docs] == [1]  # delivered once, whole
        tail.close()

    @pytest.mark.parametrize("suffix", TAIL_SUFFIXES)
    def test_concurrent_writer_seq_monotonic_no_gaps(self, tmp_path, suffix):
        """A reader thread polling while the writer appends sees every
        seq exactly once, in order."""
        path = str(tmp_path / f"race.{suffix}")
        log = open_event_log(path)
        total = 200
        seqs = []
        done = threading.Event()

        def reader():
            with open_event_tail(path) as tail:
                while len(seqs) < total:
                    seqs.extend(d["seq"] for d in tail.read())
                    if done.is_set() and not tail.read():
                        seqs.extend(d["seq"] for d in tail.read())
                        break
                    time.sleep(0.001)

        thread = threading.Thread(target=reader)
        thread.start()
        for n in range(total):
            log.emit("enroll", device=f"d{n}")
            if n % 7 == 0:
                log.flush()
        log.flush()
        done.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert seqs == list(range(1, total + 1))
        log.close()


# ---- alert rules ------------------------------------------------------------


class TestAlertRules:
    def test_quarantine_rate_trips_on_rate_not_count(self):
        rule = QuarantineRateRule(threshold=0.5, min_events=2)
        seq = 0
        for n in range(10):
            seq += 1
            assert rule.observe(doc("offer", seq, float(n))) is None
        # 2 quarantines / 12 offers = 0.16 < 0.5: quiet
        seq += 1
        assert rule.observe(doc("quarantine", seq, 10.0,
                                reason="rejected-bad-mac")) is None
        # prune: jump past the window so only recent events count
        seq += 1
        assert rule.observe(doc("offer", seq, 100.0)) is None
        seq += 1
        assert rule.observe(doc("quarantine", seq, 100.1, reason="x")) is None
        seq += 1
        context = rule.observe(doc("quarantine", seq, 100.2, reason="x"))
        assert context is not None
        assert context["quarantined"] == 2 and context["offered"] == 1
        assert "message" in context

    def test_wave_stall_uses_median_gap(self):
        rule = WaveStallRule(threshold=3.0, min_events=2)
        # three commits at a 1s cadence -> median gap 1s
        rule.observe(doc("wave-commit", 1, 10.0))
        rule.observe(doc("wave-commit", 2, 11.0))
        rule.observe(doc("wave-commit", 3, 12.0))
        # 2s after the last commit: under 3x the median, quiet
        assert rule.observe(doc("offer", 4, 14.0)) is None
        # 4s after: the campaign is alive but waves stopped landing
        context = rule.observe(doc("offer", 5, 16.0))
        assert context is not None and context["stalled_s"] == 4.0

    def test_wave_stall_ignores_ended_campaigns(self):
        rule = WaveStallRule(threshold=3.0, min_events=2)
        for seq, ts in ((1, 0.0), (2, 1.0), (3, 2.0)):
            rule.observe(doc("wave-commit", seq, ts))
        rule.observe(doc("campaign-end", 4, 2.5, status="complete"))
        assert rule.observe(doc("attest", 5, 500.0)) is None

    def test_violation_surge_sums_deltas_in_window(self):
        rule = ViolationSurgeRule(threshold=10)
        assert rule.observe(doc("violation-delta", 1, 0.0,
                                deltas={"cfi-return": 4})) is None
        context = rule.observe(doc("violation-delta", 2, 1.0,
                                   deltas={"cfi-return": 4, "stack": 2}))
        assert context is not None and context["violations"] == 10
        # outside the window the old deltas no longer count
        fresh = ViolationSurgeRule(threshold=10)
        fresh.observe(doc("violation-delta", 1, 0.0, deltas={"x": 9}))
        assert fresh.observe(doc("violation-delta", 2, 100.0,
                                 deltas={"x": 9})) is None

    def test_replay_burst_counts_only_forgery_reasons(self):
        rule = ReplayBurstRule(threshold=3)
        assert rule.observe(doc("quarantine", 1, 0.0, reason="replay")) is None
        # benign quarantine reasons never feed the burst
        assert rule.observe(doc("quarantine", 2, 0.1,
                                reason="hash-mismatch")) is None
        assert rule.observe(doc("quarantine", 3, 0.2,
                                reason="bad-ack-mac")) is None
        context = rule.observe(doc("quarantine", 4, 0.3, reason="bad-mac"))
        assert context is not None
        assert context["reasons"] == {"replay": 1, "bad-ack-mac": 1,
                                      "bad-mac": 1}

    def test_rule_constructor_validation(self):
        with pytest.raises(ValueError):
            QuarantineRateRule(window=0)
        with pytest.raises(ValueError):
            ReplayBurstRule(min_events=0)

    def test_build_rules_shapes(self):
        assert {r.name for r in default_rules()} == set(RULE_REGISTRY)
        assert {r.name for r in build_rules(None)} == set(RULE_REGISTRY)
        rules = build_rules({"quarantine-rate": 0.5,
                             "wave-stall": False,
                             "replay-burst": {"threshold": 5,
                                              "severity": "page"}})
        by_name = {r.name: r for r in rules}
        assert "wave-stall" not in by_name
        assert by_name["quarantine-rate"].threshold == 0.5
        assert by_name["replay-burst"].threshold == 5
        assert by_name["replay-burst"].severity == "page"
        # unnamed rules keep their defaults
        assert by_name["violation-surge"].threshold == 10


class TestAlertEngine:
    def burst(self, log, campaign, n=3):
        for i in range(n):
            log.emit("quarantine", device=f"d{i}", campaign=campaign,
                     reason="replay")

    def test_attached_engine_fires_and_logs_alert_event(self):
        log = MemoryEventLog()
        engine = AlertEngine(build_rules({"replay-burst": 3})).attach(log)
        campaign = log.start_campaign(target_version=1)
        self.burst(log, campaign)
        assert len(engine.fired) == 1
        record = engine.fired[0]
        assert record["rule"] == "replay-burst"
        assert record["severity"] == "critical"
        assert record["campaign"] == campaign
        alerts = log.events(kind="alert")
        assert len(alerts) == 1
        assert alerts[0]["data"]["message"] == record["message"]

    def test_fires_once_per_rule_per_campaign(self):
        log = MemoryEventLog()
        engine = AlertEngine(build_rules({"replay-burst": 2})).attach(log)
        first = log.start_campaign(target_version=1)
        self.burst(log, first, n=6)  # keeps crossing the threshold
        assert len(engine.fired) == 1  # latched
        second = log.start_campaign(target_version=2)
        self.burst(log, second, n=2)
        assert len(engine.fired) == 2  # a new campaign may fire again
        assert {r["campaign"] for r in engine.fired} == {first, second}

    def test_never_alerts_on_alerts(self):
        log = MemoryEventLog()
        AlertEngine(build_rules({"replay-burst": 1})).attach(log)
        log.emit("quarantine", device="d0", campaign="c1", reason="replay")
        # the alert event itself flowed through the bus back into the
        # engine; had it been evaluated, rules would see kind "alert"
        assert len(log.events(kind="alert")) == 1

    def test_disabled_engine_never_subscribes(self):
        log = MemoryEventLog()
        engine = AlertEngine(enabled=False).attach(log)
        assert len(log.bus) == 0
        self.burst(log, "c1", n=5)
        assert engine.fired == []

    def test_detach_unsubscribes(self):
        log = MemoryEventLog()
        engine = AlertEngine(build_rules({"replay-burst": 1})).attach(log)
        engine.detach()
        assert len(log.bus) == 0

    def test_offline_replay_fires_what_live_fired(self, tmp_path):
        """Rules window on event timestamps, so a stored log replays
        to the same alerts the live engine produced."""
        path = str(tmp_path / "replayable.jsonl")
        log = open_event_log(path)
        live = AlertEngine(build_rules({"replay-burst": 3})).attach(log)
        campaign = log.start_campaign(target_version=1)
        self.burst(log, campaign)
        log.flush()
        log.close()
        reopened = open_event_log(path)
        offline = AlertEngine(build_rules({"replay-burst": 3}))
        replayed = offline.replay(reopened)
        reopened.close()
        assert [(r["rule"], r["campaign"]) for r in replayed] == \
            [(r["rule"], r["campaign"]) for r in live.fired]
        # replay writes nothing back
        check = open_event_log(path)
        assert len(check.events(kind="alert")) == 1
        check.close()

    def test_campaign_rollup_folds_alerts(self):
        log = MemoryEventLog()
        AlertEngine(build_rules({"replay-burst": 2})).attach(log)
        campaign = log.start_campaign(target_version=1)
        self.burst(log, campaign)
        rollup = log.campaign_rollup()
        entry = next(e for e in rollup if e["campaign"] == campaign)
        assert entry["alerts"] == 1
        assert entry["alert_rules"] == {"replay-burst": 1}


# ---- empty / in-flight history queries (satellite b) ------------------------


class TestSparseHistory:
    @pytest.mark.parametrize("kind", ("memory", "jsonl", "sqlite"))
    def test_empty_log_answers_every_query(self, tmp_path, kind):
        if kind == "memory":
            log = MemoryEventLog()
        elif kind == "jsonl":
            log = JsonlEventLog(str(tmp_path / "empty.jsonl"))
        else:
            log = SqliteEventLog(str(tmp_path / "empty.db"))
        assert log.device_rollup() == {}
        assert log.campaign_rollup() == []
        trends = log.trends()
        assert trends["campaigns"] == []
        for series in ("applied", "failed", "devices_per_sec", "alerts"):
            assert trends[series] == []
        log.close()

    def test_single_inflight_campaign_trends_are_numeric(self):
        """A campaign with no campaign-end yet must not leak None into
        the numeric series (fleet history --trends mid-rollout)."""
        log = MemoryEventLog()
        campaign = log.start_campaign(target_version=1)
        log.emit("offer", device="d1", campaign=campaign, status="applied")
        trends = log.trends()
        assert trends["campaigns"] == [campaign]
        assert trends["devices_per_sec"] == [0.0]
        assert all(isinstance(v, (int, float))
                   for series in ("applied", "failed", "devices_per_sec")
                   for v in trends[series])


# ---- span trees -------------------------------------------------------------


class TestSpanTrees:
    def test_nesting_links_parent_and_trace(self):
        registry = MetricsRegistry()
        with registry.span("campaign.run") as run:
            with registry.span("campaign.wave") as wave:
                with registry.span("campaign.offer"):
                    pass
            assert wave.trace == run.trace == run.id
        spans = {s["name"]: s for s in registry.spans()}
        assert spans["campaign.offer"]["parent"] == spans["campaign.wave"]["id"]
        assert spans["campaign.wave"]["parent"] == spans["campaign.run"]["id"]
        assert spans["campaign.run"]["parent"] is None
        assert len({s["trace"] for s in spans.values()}) == 1

    def test_explicit_parent_escapes_thread_locality(self):
        """Pool threads pass the wave span explicitly -- their stacks
        are empty, the lineage must still connect."""
        registry = MetricsRegistry()
        with registry.span("campaign.wave") as wave:
            def pool_work():
                with registry.span("campaign.offer", parent=wave.id):
                    pass
            worker = threading.Thread(target=pool_work)
            worker.start()
            worker.join()
        offer = registry.spans(name="campaign.offer")[0]
        wave_doc = registry.spans(name="campaign.wave")[0]
        assert offer["parent"] == wave_doc["id"]
        assert offer["trace"] == wave_doc["trace"]

    def test_span_tree_forest_shape(self):
        registry = MetricsRegistry()
        with registry.span("a"):
            with registry.span("b"):
                pass
        with registry.span("c"):
            pass
        forest = registry.span_tree()
        assert [node["name"] for node in forest] == ["a", "c"]
        assert [child["name"] for child in forest[0]["children"]] == ["b"]

    def test_merge_reroots_worker_spans_and_folds_series(self):
        worker = MetricsRegistry()
        worker.inc("fleet.updates", 3)
        with worker.span("campaign.shard"):
            with worker.span("campaign.offer"):
                pass
        parent = MetricsRegistry()
        parent.inc("fleet.updates", 2)
        with parent.span("campaign.wave") as wave:
            parent.merge(worker.snapshot(), reroot_to=wave.id)
        assert parent.counter("fleet.updates") == 5
        shard = parent.spans(name="campaign.shard")[0]
        offer = parent.spans(name="campaign.offer")[0]
        wave_doc = parent.spans(name="campaign.wave")[0]
        # the worker's root now hangs off the wave that caused it
        assert shard["parent"] == wave_doc["id"]
        assert offer["parent"] == shard["id"]
        assert {shard["trace"], offer["trace"]} == {wave_doc["trace"]}
        # worker ids were re-allocated, not trusted
        assert shard["id"] != "s1"

    def test_merge_into_disabled_registry_is_a_noop(self):
        worker = MetricsRegistry()
        worker.inc("x", 1)
        parent = MetricsRegistry(enabled=False)
        parent.merge(worker.snapshot())
        assert parent.snapshot() == {"counters": {}, "gauges": {},
                                     "histograms": {}, "spans": []}

    def test_span_ring_bounded_with_drop_counter(self):
        registry = MetricsRegistry(span_capacity=4)
        for n in range(7):
            with registry.span(f"s{n}"):
                pass
        assert len(registry.spans()) == 4
        assert registry.counter("obs.spans_dropped") == 3
        # an evicted parent's children surface as roots, never vanish
        assert len(registry.span_tree()) == 4

    def test_histogram_merge_folds_extrema(self):
        a = MetricsRegistry()
        a.observe("lat", 1.0)
        a.observe("lat", 9.0)
        b = MetricsRegistry()
        b.observe("lat", 5.0)
        b.merge(a.snapshot())
        snap = b.histogram("lat")
        assert snap["count"] == 3
        assert snap["min"] == 1.0 and snap["max"] == 9.0


# ---- thread vs process backend parity (satellite a) -------------------------


class TestBackendMetricsParity:
    def run_campaign(self, backend):
        from repro.fleet import CampaignConfig, FleetSimulation

        METRICS.reset()
        fleet = FleetSimulation(size=24, seed=7)
        config = CampaignConfig(failure_threshold=0.9, backend=backend,
                                batch_size=4, workers=2)
        report = fleet.rollout(version=1, payload=bytes(16), config=config,
                               tamper_fraction=0.25)
        return report, METRICS.snapshot()

    def test_process_shard_metrics_merge_matches_thread_totals(self):
        thread_report, thread_snap = self.run_campaign("thread")
        process_report, process_snap = self.run_campaign("process")
        # same campaign outcome...
        assert (thread_report.applied, thread_report.failed) == \
            (process_report.applied, process_report.failed)
        # ...and the same number of offer spans landed in the parent
        # registry: the worker snapshots merged rather than vanishing
        # inside the pool processes.
        thread_offers = thread_snap["histograms"]["campaign.offer.ms"]
        process_offers = process_snap["histograms"]["campaign.offer.ms"]
        assert thread_offers["count"] == process_offers["count"] == 24
        METRICS.reset()

    def test_process_span_lineage_reroots_onto_waves(self):
        _, snap = self.run_campaign("process")
        spans = {s["id"]: s for s in snap["spans"]}
        shards = [s for s in snap["spans"] if s["name"] == "campaign.shard"]
        assert shards, "process backend must record shard spans"
        for shard in shards:
            parent = spans[shard["parent"]]
            assert parent["name"] == "campaign.wave"
            assert shard["trace"] == parent["trace"]
        offers = [s for s in snap["spans"] if s["name"] == "campaign.offer"]
        assert all(spans[o["parent"]]["name"] == "campaign.shard"
                   for o in offers)
        METRICS.reset()


# ---- exporters --------------------------------------------------------------


class TestExporters:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.inc("fleet.updates", 4)
        registry.set_gauge("fleet.size", 100)
        registry.observe("campaign.offer.ms", 1.5)
        registry.observe("campaign.offer.ms", 2.5)
        return registry.snapshot()

    def test_prometheus_round_trips_through_the_linter(self):
        text = to_prometheus(self.snapshot())
        families = parse_prometheus(text)
        assert families["eilid_fleet_updates"] == [("", 4.0)]
        assert families["eilid_fleet_size"] == [("", 100.0)]
        assert families["eilid_campaign_offer_ms_count"] == [("", 2.0)]
        assert families["eilid_campaign_offer_ms_sum"] == [("", 4.0)]
        assert families["eilid_campaign_offer_ms_max"] == [("", 2.5)]

    def test_prometheus_output_is_line_clean(self):
        for line in to_prometheus(self.snapshot()).splitlines():
            assert line.startswith("# ") or " " in line
            assert "\t" not in line

    def test_parse_rejects_malformed_text(self):
        with pytest.raises(ObsError):
            parse_prometheus("eilid_x not-a-number\n")
        with pytest.raises(ObsError):
            parse_prometheus("just_a_name_no_value\n")

    def test_json_doc_envelope(self):
        doc_out = to_json_doc(self.snapshot(), source="c1/wave0")
        assert doc_out["schema"] == "metrics-snapshot"
        assert doc_out["version"] == 1
        assert doc_out["source"] == "c1/wave0"
        assert json.loads(json.dumps(doc_out)) == doc_out

    def test_write_snapshot_both_formats(self, tmp_path):
        json_path = str(tmp_path / "snap.json")
        prom_path = str(tmp_path / "snap.prom")
        write_snapshot(json_path, self.snapshot(), fmt="json", source="t")
        write_snapshot(prom_path, self.snapshot(), fmt="prom")
        with open(json_path, encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == "metrics-snapshot"
        with open(prom_path, encoding="utf-8") as handle:
            assert "eilid_fleet_updates" in parse_prometheus(handle.read())

    def test_write_snapshot_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ObsError):
            write_snapshot(str(tmp_path / "x"), self.snapshot(), fmt="xml")


# ---- spec validation --------------------------------------------------------


class TestSpecWiring:
    def make_spec(self, **fleet_kwargs):
        from repro.api import FleetSpec, ScenarioSpec

        return ScenarioSpec(name="fleet",
                            fleet=FleetSpec(size=4, **fleet_kwargs))

    def test_alerts_accepts_true_and_rule_maps(self):
        self.make_spec(alerts=True).validate()
        self.make_spec(alerts={"quarantine-rate": 0.5}).validate()
        self.make_spec(alerts={"wave-stall": False,
                               "replay-burst": {"threshold": 5,
                                                "window": 10}}).validate()

    @pytest.mark.parametrize("bad", [
        {"not-a-rule": 1},
        {"quarantine-rate": "high"},
        {"replay-burst": {"threshold": 5, "surprise": 1}},
        {"replay-burst": {"window": 0}},
        {"replay-burst": {"min_events": 0}},
        {"replay-burst": {"severity": ""}},
        "all",
    ])
    def test_alerts_rejects_bad_shapes(self, bad):
        from repro.api.spec import SpecError

        with pytest.raises(SpecError):
            self.make_spec(alerts=bad).validate()

    def test_spec_round_trips_alerts_and_metrics_dump(self):
        from repro.api import FleetSpec, RolloutSpec, ScenarioSpec

        spec = ScenarioSpec(
            name="fleet",
            fleet=FleetSpec(size=4, alerts={"quarantine-rate": 0.5},
                            rollout=RolloutSpec(
                                version=1, metrics_dump="/tmp/x.prom")))
        spec.validate()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.fleet.alerts == {"quarantine-rate": 0.5}
        assert clone.fleet.rollout.metrics_dump == "/tmp/x.prom"

    def test_session_surfaces_fired_alerts_in_results(self):
        from repro.api import FleetSpec, RolloutSpec, ScenarioSpec, Session

        spec = ScenarioSpec(
            name="fleet",
            fleet=FleetSpec(
                size=16, seed=3,
                alerts={"quarantine-rate": 0.05},
                rollout=RolloutSpec(version=1, tamper_fraction=0.5,
                                    wave_fractions=(1.0,),
                                    failure_threshold=0.95)))
        session = Session(spec)
        outcome = session.run()
        rollout = outcome.fleet.rollout
        assert rollout.alerts, "a 50% tamper rate must trip the alert"
        assert rollout.alerts[0]["rule"] == "quarantine-rate"
        # no engine configured -> alerts is None, not ()
        quiet = Session(ScenarioSpec(
            name="fleet",
            fleet=FleetSpec(size=4,
                            rollout=RolloutSpec(version=1)))).run()
        assert quiet.fleet.rollout.alerts is None


# ---- the CLI verbs ----------------------------------------------------------


class TestCliVerbs:
    def test_watch_streams_jsonl_and_stops_at_end(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "events.db")
        assert main(["fleet", "rollout", "--devices", "8",
                     "--tamper-fraction", "0.5", "--waves", "1.0",
                     "--failure-threshold", "0.95",
                     "--alerts", "--events", path, "--json"]) == 0
        capsys.readouterr()
        code = main(["fleet", "watch", "--events", path, "--json"])
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        seqs = [d["seq"] for d in lines]
        kinds = {d["kind"] for d in lines}
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert {"campaign-start", "offer", "wave-commit",
                "campaign-end", "alert"} <= kinds
        assert code == 2  # alerts streamed -> security exit

    def test_watch_since_resumes_without_duplicates(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "events.db")
        main(["fleet", "rollout", "--devices", "4", "--events", path,
              "--json"])
        capsys.readouterr()
        main(["fleet", "watch", "--events", path, "--json"])
        first = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        cut = first[len(first) // 2]["seq"]
        main(["fleet", "watch", "--events", path, "--json",
              "--since", str(cut)])
        rest = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert [d["seq"] for d in rest] == \
            [d["seq"] for d in first if d["seq"] > cut]

    def test_watch_usage_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fleet", "watch"]) == 1
        assert main(["fleet", "watch", "--events",
                     str(tmp_path / "missing.db")]) == 1

    def test_alerts_lists_recorded_and_exits_2_on_critical(
            self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "events.db")
        main(["fleet", "rollout", "--devices", "8", "--waves", "1.0",
              "--tamper-fraction", "0.5", "--failure-threshold", "0.95",
              "--alerts", "--events", path, "--json"])
        capsys.readouterr()
        code = main(["fleet", "alerts", "--events", path, "--json"])
        doc_out = json.loads(capsys.readouterr().out)
        assert doc_out["schema"] == "eilid.cli.fleet-alerts"
        assert any(a["rule"] == "quarantine-rate" for a in doc_out["alerts"])
        assert code == 2

    def test_alerts_replay_finds_what_no_live_engine_recorded(
            self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "events.db")
        # rollout WITHOUT --alerts: nothing recorded...
        main(["fleet", "rollout", "--devices", "8", "--waves", "1.0",
              "--tamper-fraction", "0.5", "--failure-threshold", "0.95",
              "--events", path, "--json"])
        capsys.readouterr()
        main(["fleet", "alerts", "--events", path, "--json"])
        quiet = json.loads(capsys.readouterr().out)
        assert quiet["recorded"] == [] and quiet["alerts"] == []
        # ...but an offline replay of the same history finds the spike
        main(["fleet", "alerts", "--events", path, "--replay", "--json"])
        replayed = json.loads(capsys.readouterr().out)
        assert any(a["rule"] == "quarantine-rate"
                   for a in replayed["alerts"])

    def test_alert_threshold_flag_validation(self, capsys):
        from repro.cli import main

        assert main(["fleet", "rollout", "--devices", "2",
                     "--alert", "no-such-rule=1"]) == 1
        assert main(["fleet", "rollout", "--devices", "2",
                     "--alert", "replay-burst"]) == 1
        assert main(["fleet", "rollout", "--devices", "2",
                     "--alert", "replay-burst=lots"]) == 1

    def test_metrics_exports_live_and_from_dump(self, tmp_path, capsys):
        from repro.cli import main

        # live: run a small fleet, export prometheus text
        assert main(["fleet", "metrics", "--devices", "4"]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert any(name.startswith("eilid_") for name in families)
        # from a rollout's --metrics-dump file
        dump = str(tmp_path / "dump.json")
        main(["fleet", "rollout", "--devices", "4",
              "--metrics-dump", dump, "--json"])
        capsys.readouterr()
        assert main(["fleet", "metrics", "--from", dump]) == 0
        families = parse_prometheus(capsys.readouterr().out)
        assert "eilid_campaign_offer_ms_count" in families
        assert main(["fleet", "metrics", "--from",
                     str(tmp_path / "nope.json")]) == 1

    def test_rollout_metrics_dump_writes_prom_by_suffix(
            self, tmp_path, capsys):
        from repro.cli import main

        dump = str(tmp_path / "dump.prom")
        main(["fleet", "rollout", "--devices", "4",
              "--metrics-dump", dump, "--json"])
        capsys.readouterr()
        with open(dump, encoding="utf-8") as handle:
            assert "eilid_campaign_offer_ms_count" in \
                parse_prometheus(handle.read())


# ---- acceptance: live watch of a concurrent process-backend rollout ---------


class TestLiveWatchAcceptance:
    def test_follow_streams_a_concurrent_rollout_with_alerts(self, tmp_path):
        """The ISSUE's acceptance shape, scaled to CI: a separate
        interpreter runs a tampered process-backend rollout while this
        process follows the event DB; the stream must arrive in seq
        order, include wave commits and the quarantine-rate alert, and
        terminate at campaign-end."""
        events = str(tmp_path / "events.db")
        store = str(tmp_path / "store.db")
        env = dict(os.environ, PYTHONPATH="src")
        writer = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "fleet", "rollout",
             "--devices", "150", "--backend", "process", "--workers", "2",
             "--batch-size", "16", "--tamper-fraction", "0.1",
             "--failure-threshold", "0.95", "--alerts",
             "--store", store, "--events", events, "--json"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=os.getcwd())
        docs = []
        deadline = time.monotonic() + 120
        try:
            with open_event_tail(events) as tail:
                while time.monotonic() < deadline:
                    docs.extend(tail.read())
                    if any(d["kind"] == "campaign-end" for d in docs):
                        break
                    time.sleep(0.05)
        finally:
            out, err = writer.communicate(timeout=120)
        assert writer.returncode == 0, err
        seqs = [d["seq"] for d in docs]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        kinds = [d["kind"] for d in docs]
        assert "wave-commit" in kinds and "campaign-end" in kinds
        alerts = [d for d in docs if d["kind"] == "alert"]
        assert any(d["data"]["rule"] == "quarantine-rate" for d in alerts), \
            "the seeded tamper must trip the quarantine-rate alert live"
        # the alert fired mid-campaign, not as a post-mortem
        end_seq = next(d["seq"] for d in docs
                       if d["kind"] == "campaign-end")
        assert min(d["seq"] for d in alerts) < end_seq
        # and the writer's own envelope agrees with what we streamed
        envelope = json.loads(out)
        rollout = envelope["fleet"]["rollout"]
        assert rollout["alerts"], "rollout envelope must carry the alerts"
