"""Device composition: reset semantics, rollback, CASU secure update."""


from repro.casu.monitor import ViolationReason
from repro.casu.update import UpdateKey, UpdatePackage, UpdateStatus
from repro.device import build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.toolchain.build import SourceModule


def raw_program(app_source, with_rom=True):
    builder = IterativeBuild()
    modules = [
        SourceModule("crt0.s", builder.trusted.crt0_source(eilid_enabled=False)),
        SourceModule("app.s", app_source, is_app=True),
    ]
    if with_rom:
        modules.append(SourceModule("eilid_rom.s", builder.trusted.rom_source()))
    return builder.pipeline.build(modules, name="raw").program


GOOD_APP = """
    .text
    .global main
main:
    mov #42, &0x0200
    mov #1, &0x0070
l:
    jmp l
"""


class TestDeviceBasics:
    def test_run_to_done(self):
        device = build_device(raw_program(GOOD_APP), security="casu")
        result = device.run(max_cycles=10_000)
        assert result.done and result.done_value == 1
        assert not result.violations
        assert result.cycles > 0 and result.instructions > 0

    def test_run_time_us_at_100mhz(self):
        device = build_device(raw_program(GOOD_APP), security="none")
        result = device.run(max_cycles=10_000)
        assert result.run_time_us == result.cycles / 100.0

    def test_break_at(self):
        program = raw_program(GOOD_APP)
        device = build_device(program, security="none")
        main = program.symbols["main"]
        device.run(break_at={main}, stop_on_done=False, max_cycles=10_000)
        assert device.cpu.pc == main

    def test_illegal_instruction_resets_with_monitor(self):
        app = GOOD_APP.replace("mov #42, &0x0200", ".word 0x0000")
        device = build_device(raw_program(app), security="casu")
        result = device.run(max_cycles=10_000)
        assert result.violations
        assert result.violations[0].reason is ViolationReason.ILLEGAL_INSN

    def test_violation_rolls_back_the_step(self):
        # A PMEM write from app code must not land before the reset.
        app = GOOD_APP.replace("mov #42, &0x0200", "mov #0xdead, &0xe200")
        program = raw_program(app)
        device = build_device(program, security="casu")
        before = device.peek_word(0xE200)
        result = device.run(max_cycles=10_000)
        assert result.violations[0].reason is ViolationReason.PMEM_WRITE
        assert device.peek_word(0xE200) == before
        assert device.reset_count == 1

    def test_violation_rolls_back_the_done_latch(self):
        # Regression: a voided step's DONE write must not survive the
        # rollback.  Injected code in DMEM writes DONE_PORT; executing
        # it is itself the W-xor-X violation, so the harness latch set
        # by the in-flight write has to be restored with the rest of
        # the step's effects.
        device = build_device(raw_program(GOOD_APP), security="casu")
        shellcode = device.layout.dmem.start + 0x40
        for index, word in enumerate((0x40B2, 0x00AA, 0x0070)):  # mov #0xAA, &DONE
            device.bus.poke_word(shellcode + 2 * index, word)
        device.cpu.set_reg(0, shellcode)
        record, violation = device.step()
        assert violation is not None
        assert violation.reason is ViolationReason.W_XOR_X
        assert device.harness.done is False
        assert device.harness.done_value is None
        assert device.harness.event_values("harness.done") == []
        assert device.reset_count == 1

    def test_reset_restarts_at_reset_vector(self):
        app = GOOD_APP.replace("mov #42, &0x0200", "mov #0xdead, &0xe200")
        program = raw_program(app)
        device = build_device(program, security="casu")
        device.run(max_cycles=10_000)
        assert device.cpu.pc == program.entry

    def test_no_monitor_means_no_reset(self):
        app = GOOD_APP.replace("mov #42, &0x0200", "mov #0xdead, &0xe200")
        device = build_device(raw_program(app), security="none")
        result = device.run(max_cycles=10_000)
        assert not result.violations and result.done
        assert device.peek_word(0xE200) == 0xDEAD  # write persisted


class TestSecureUpdate:
    def make_device(self):
        program = raw_program(GOOD_APP, with_rom=True)
        key = UpdateKey.derive(program.name)
        return build_device(program, security="casu", update_key=key), key

    def test_valid_update_applies(self):
        device, key = self.make_device()
        payload = bytes((0x11, 0x22, 0x33, 0x44))
        package = UpdatePackage.make(key, target=0xE800, payload=payload, version=1)
        result = device.apply_update(package)
        assert result.ok
        assert device.peek_word(0xE800) == 0x2211
        assert device.peek_word(0xE802) == 0x4433
        assert device.update_engine.current_version == 1
        assert not device.violations  # ROM copy ran without tripping

    def test_tampered_payload_rejected(self):
        device, key = self.make_device()
        package = UpdatePackage.make(key, 0xE800, b"\x11\x22", version=1)
        result = device.apply_update(package.tampered())
        assert result.status is UpdateStatus.BAD_MAC
        assert device.peek_word(0xE800) == 0

    def test_wrong_key_rejected(self):
        device, _key = self.make_device()
        wrong = UpdateKey.derive("mallory")
        package = UpdatePackage.make(wrong, 0xE800, b"\x11\x22", version=1)
        assert device.apply_update(package).status is UpdateStatus.BAD_MAC

    def test_rollback_protection(self):
        device, key = self.make_device()
        good = UpdatePackage.make(key, 0xE800, b"\x11\x22", version=2)
        assert device.apply_update(good).ok
        stale = UpdatePackage.make(key, 0xE800, b"\x33\x44", version=1)
        result = device.apply_update(stale)
        assert result.status is UpdateStatus.STALE_VERSION
        assert device.peek_word(0xE800) == 0x2211  # unchanged

    def test_replay_rejected(self):
        device, key = self.make_device()
        package = UpdatePackage.make(key, 0xE800, b"\x11\x22", version=1)
        assert device.apply_update(package).ok
        assert device.apply_update(package).status is UpdateStatus.STALE_VERSION

    def test_update_session_gates_the_guard(self):
        # The same ROM copy routine without an open session must reset.
        device, key = self.make_device()
        staging = device.layout.dmem.start + 6
        device.bus.load_bytes(staging, b"\x11\x22")
        violations = device.call_routine(
            "S_CASU_update_copy", regs={15: staging, 14: 0xE800, 13: 1}
        )
        assert violations and violations[0].reason is ViolationReason.PMEM_WRITE
        assert device.peek_word(0xE800) == 0


class TestIterativeBuild:
    APP = """
    .text
    .global main
    .global work
main:
    call #work
    call #work
    mov #1, &0x0070
l:
    jmp l
work:
    mov #7, r10
    ret
"""

    def test_three_builds(self):
        result = IterativeBuild().build_eilid(self.APP, "app.s")
        assert result.build_count == 3

    def test_fixed_point_verified(self):
        result = IterativeBuild().build_eilid(self.APP, "app.s", verify_convergence=True)
        assert result.converged

    def test_fourth_build_is_byte_identical(self):
        builder = IterativeBuild()
        result = builder.build_eilid(self.APP, "app.s", verify_convergence=True)
        final = result.final
        again = builder.pipeline.build(
            builder._eilid_modules(result.final_source, "app.s"), name="again"
        )
        assert final.segments() == again.segments()

    def test_iteration2_addresses_stale_iteration3_correct(self):
        """The documented reason for three builds (Fig. 2)."""
        builder = IterativeBuild()
        result = builder.build_eilid(self.APP, "app.s")
        instr_pass1 = result.iterations[1].instrumented_source
        instr_pass2 = result.iterations[2].instrumented_source
        assert instr_pass1 != instr_pass2  # addresses shifted

    def test_original_build_has_no_rom(self):
        builder = IterativeBuild()
        original = builder.build_original(self.APP, "app.s")
        assert "S_EILID_entry" not in original.program.symbols

    def test_parse_cache_reused_across_iterations(self):
        builder = IterativeBuild()
        builder.build_eilid(self.APP, "app.s")
        hits_before = builder.pipeline.cache_hits
        builder.build_eilid(self.APP, "app.s")
        assert builder.pipeline.cache_hits > hits_before
