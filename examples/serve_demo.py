#!/usr/bin/env python3
"""The fleet control plane: a verifier daemon driven over HTTP.

``fleet_demo.py`` runs the verifier as a library call; this demo runs
it as a *service*.  A daemon process owns the fleet -- devices, HMAC
sessions, two registry shards, the event log -- and everything below
talks to it through :class:`repro.serve.client.FleetClient`, the same
stdlib client behind ``fleet status --url``:

1. start ``serve run`` as a subprocess and read its readiness line
   (the JSON envelope carries the bound ephemeral port);
2. enroll extra devices and attest a slice over ``POST /attest`` --
   the daemon fans the exchanges out concurrently, decisions identical
   to the synchronous verifier's;
3. launch a staged rollout and follow ``GET /campaigns/<id>/events``
   live: wave commits stream while later waves are still rolling;
4. scrape ``GET /metrics`` (Prometheus text) for the request counters;
5. SIGTERM the daemon: it drains, flushes both shards and exits 0 --
   then reopen the shards offline to prove the state survived.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.fleet.simulation import FleetSimulation
from repro.serve import FleetClient, open_sharded_store

FLEET = 120
WAVES = (0.1, 0.5, 1.0)


def main():
    workdir = tempfile.mkdtemp(prefix="eilid-serve-")
    shards = [os.path.join(workdir, "shard-a.jsonl"),
              os.path.join(workdir, "shard-b.db")]
    events = os.path.join(workdir, "events.db")

    print("1. a verifier daemon starts in another process:")
    env = dict(os.environ)
    env["PYTHONPATH"] = env.get("PYTHONPATH", "src") or "src"
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "run",
         "--devices", str(FLEET),
         "--store-shard", shards[0], "--store-shard", shards[1],
         "--events", events, "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    ready = json.loads(daemon.stdout.readline())
    assert ready["schema"] == "eilid.serve.ready"
    print(f"   pid {daemon.pid}, {ready['devices']} devices at "
          f"{ready['url']} ({ready['shards']} shards)")

    client = FleetClient(ready["url"])

    print("2. enroll + attest over HTTP:")
    doc = client.enroll(count=30)
    assert doc["ok"] and doc["devices"] == FLEET + 30
    sample = [f"dev-{n:05d}" for n in range(40)]
    started = time.perf_counter()
    doc = client.attest(sample)
    elapsed = time.perf_counter() - started
    assert doc["ok"] and doc["attested"] == len(sample)
    print(f"   enrolled 30 (fleet now {FLEET + 30}), attested "
          f"{doc['attested']} in {elapsed * 1e3:.0f}ms "
          f"({len(sample) / elapsed:.0f}/s through the control plane)")

    print("3. a staged rollout, watched live off the event stream:")
    campaign = client.rollout(1, waves=list(WAVES))["campaign"]
    commits = 0
    for event in client.campaign_events(campaign, timeout=120):
        if event["kind"] == "wave-commit":
            commits += 1
            data = event["data"]
            still = client.campaign(campaign)["running"]
            print(f"   #{event['seq']:<4} wave {data['index']}: "
                  f"applied={data['applied']} "
                  f"({'campaign still running' if still else 'final wave'})")
        elif event["kind"] == "campaign-end":
            print(f"   #{event['seq']:<4} campaign-end")
    assert commits == len(WAVES)
    report = client.wait_campaign(campaign)["report"]
    assert report["status"] == "complete"
    assert report["applied"] == FLEET + 30

    print("4. the daemon's own request metrics (Prometheus text):")
    for line in client.metrics().splitlines():
        if line.startswith("eilid_serve_requests") and "{" not in line:
            print(f"   {line}")

    print("5. SIGTERM -> drain, flush every shard, exit 0:")
    daemon.send_signal(signal.SIGTERM)
    out, err = daemon.communicate(timeout=120)
    assert daemon.returncode == 0, err
    bye = json.loads(out.splitlines()[-1])
    assert bye["schema"] == "eilid.serve.shutdown" and bye["ok"]
    store = open_sharded_store(shards)
    fleet = FleetSimulation(store=store, events=events)
    histogram = dict(fleet.registry.version_histogram())
    assert len(fleet.registry) == FLEET + 30
    assert histogram == {1: FLEET + 30}
    store.close()
    print(f"   exit {daemon.returncode}, shards reopened offline: "
          f"{len(fleet.registry)} devices, versions {histogram}")

    print("ok: drove a live verifier daemon end to end over HTTP")


if __name__ == "__main__":
    main()
