#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Equivalent to ``eilid tables && eilid figure10 && eilid micro``; takes
a couple of minutes because Table IV rebuilds and re-runs all seven
applications.
"""

from repro.eval import (
    measure_table4,
    render_figure10,
    render_micro,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


def main():
    for render in (render_table1, render_table2, render_table3):
        print(render())
        print()
    print(render_figure10())
    print()
    print(render_micro())
    print()
    print("measuring Table IV (7 apps x 2 variants x 3 repeats) ...")
    print(render_table4(measure_table4(repeats=3)))


if __name__ == "__main__":
    main()
