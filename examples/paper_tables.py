#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Drives the CLI adapters (which sit on top of :mod:`repro.api`), so
this is exactly ``eilid tables && eilid figure10 && eilid micro``;
takes a couple of minutes because Table IV rebuilds and re-runs all
seven applications.

Usage: ``python examples/paper_tables.py [repeats]`` -- *repeats*
defaults to 3 (the CI smoke job passes 1).
"""

import sys

from repro.cli import main as eilid


def main(repeats: int = 3):
    assert eilid(["tables", "--repeats", str(repeats)]) == 0
    print()
    assert eilid(["figure10"]) == 0
    print()
    assert eilid(["micro"]) == 0


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
