#!/usr/bin/env python3
"""Live observability: watch a tampered rollout trip an alert.

``obs_demo.py`` replays history after the fact; this demo watches it
happen.  A verifier process runs a staged rollout under a MITM that
tampers a slice of the update packages, with the alert-rule engine
attached -- while a *separate* interpreter follows the event DB
through a tail cursor (exactly what ``fleet watch --follow`` does):

1. start a second process on a tampered, alert-enabled rollout;
2. follow its event DB live: offers, quarantines, wave commits and
   the ``quarantine-rate`` alert stream in seq order as they happen;
3. show the alert fired mid-campaign (before campaign-end), landed in
   the same log, and latched (one firing, many quarantines);
4. replay the finished log offline and fire the same alert again --
   rules window on event timestamps, not wall clock;
5. export the watcher-side view of the campaign metrics as
   Prometheus text.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

from repro.obs import (
    AlertEngine,
    build_rules,
    open_event_log,
    open_event_tail,
    parse_prometheus,
    to_prometheus,
)

FLEET = 150
TAMPER = 0.10


def main():
    workdir = tempfile.mkdtemp(prefix="eilid-watch-")
    store = os.path.join(workdir, "registry.db")
    events = os.path.join(workdir, "events.db")

    print("1. a tampered rollout starts in another process:")
    env = dict(os.environ)
    env["PYTHONPATH"] = env.get("PYTHONPATH", "src") or "src"
    writer = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet", "rollout",
         "--devices", str(FLEET), "--tamper-fraction", str(TAMPER),
         "--failure-threshold", "0.5", "--alerts", "--batch-size", "16",
         "--store", store, "--events", events, "--json"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    print(f"   pid {writer.pid}, events -> {events}")

    print("2. following the event DB live (the fleet-watch loop):")
    docs = []
    shown = 0
    deadline = time.monotonic() + 120
    with open_event_tail(events) as tail:
        while time.monotonic() < deadline:
            batch = tail.read()
            docs.extend(batch)
            for doc in batch:
                interesting = doc["kind"] in ("campaign-start", "wave-commit",
                                              "alert", "campaign-end")
                if interesting or (doc["kind"] == "quarantine" and shown < 3):
                    shown += doc["kind"] == "quarantine"
                    data = doc["data"]
                    detail = data.get("message") or data.get("reason") or \
                        " ".join(f"{key}={data[key]}"
                                 for key in ("index", "target_version",
                                             "applied", "failed")
                                 if data.get(key) is not None)
                    print(f"   #{doc['seq']:<4} {doc['kind']:<14} "
                          f"{doc['device'] or '-':<12} {detail}")
            if any(doc["kind"] == "campaign-end" for doc in docs):
                break
            time.sleep(0.05)
    out, err = writer.communicate(timeout=60)
    assert writer.returncode == 0, err
    seqs = [doc["seq"] for doc in docs]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), \
        "tail must deliver every event exactly once, in order"

    print("3. the alert fired mid-campaign and latched:")
    alerts = [doc for doc in docs if doc["kind"] == "alert"]
    quarantines = [doc for doc in docs if doc["kind"] == "quarantine"]
    end_seq = next(doc["seq"] for doc in docs
                   if doc["kind"] == "campaign-end")
    assert alerts, "the tampered slice must trip the default panel"
    first = alerts[0]
    assert first["data"]["rule"] == "quarantine-rate"
    assert first["seq"] < end_seq, "an alert after the fact is a post-mortem"
    rate_alerts = [doc for doc in alerts
                   if doc["data"]["rule"] == "quarantine-rate"]
    assert len(rate_alerts) == 1 and len(quarantines) > 1, \
        "one firing per (rule, campaign), however many quarantines"
    print(f"   #{first['seq']} [{first['data']['severity']}] "
          f"{first['data']['message']}")
    print(f"   ({len(quarantines)} quarantines, "
          f"{len(rate_alerts)} quarantine-rate firing, "
          f"campaign-end at #{end_seq})")

    print("4. offline replay fires the same alert (ts windows, not clocks):")
    log = open_event_log(events)
    replayed = AlertEngine(build_rules(None)).replay(log)
    log.close()
    replayed_rules = {record["rule"] for record in replayed}
    assert "quarantine-rate" in replayed_rules
    print(f"   replayed rules fired: {sorted(replayed_rules)}")

    print("5. the writer's envelope carries the same alerts + metrics:")
    envelope = json.loads(out)
    rollout = envelope["fleet"]["rollout"]
    assert rollout["alerts"] and \
        rollout["alerts"][0]["rule"] == "quarantine-rate"
    offers = rollout["metrics"]["campaign.offer.ms"]
    prom = to_prometheus({"counters": {}, "gauges": {},
                          "histograms": rollout["metrics"], "spans": []})
    families = parse_prometheus(prom)
    print(f"   {offers['count']:.0f} offers, "
          f"{len(families)} prometheus families, e.g.:")
    for line in prom.splitlines():
        if line.startswith("eilid_campaign_offer_ms"):
            print(f"     {line}")

    print("ok: watched a live rollout, caught the attack as it happened")


if __name__ == "__main__":
    main()
