#!/usr/bin/env python3
"""CASU secure update: the only legal way to change PMEM.

Shows the full update flow EILID inherits from CASU: a signed package
is verified (HMAC + monotonic version), staged into RAM, and copied
into program memory by the trusted ROM routine while the hardware
monitor's update session is open.  Every other path to PMEM resets the
device.

The device itself comes from the public API: a raw-assembly
``FirmwareSpec`` (with the trusted ROM linked in) booted at the
``casu`` security level.
"""

from repro.api import FirmwareSpec, ScenarioSpec, Session
from repro.casu.update import UpdateKey, UpdatePackage

APP = """
    .text
    .global main
main:
    mov #1, &0x0070
l:
    jmp l
"""


def make_device():
    session = Session(ScenarioSpec(
        name="update-demo",
        firmware=FirmwareSpec(kind="asm", source=APP, variant="original",
                              name="update-demo", link_rom=True),
        security="casu",
    ))
    # The device keys its engine from the program name, so the demo can
    # derive the same per-device key to sign packages with.
    return session.device, UpdateKey.derive("update-demo")


def main():
    device, key = make_device()
    target = 0xE800
    payload = bytes((0xAD, 0xDE, 0xEF, 0xBE))  # two little-endian words

    print("1. a valid signed update (version 1):")
    package = UpdatePackage.make(key, target, payload, version=1)
    result = device.apply_update(package)
    print(f"   -> {result.status.value}; PMEM[0x{target:04x}] = "
          f"0x{device.peek_word(target):04x} 0x{device.peek_word(target + 2):04x}")
    assert result.ok and device.peek_word(target) == 0xDEAD

    print("2. a tampered payload (one byte flipped):")
    result = device.apply_update(
        UpdatePackage.make(key, target, b"\x00\x11", version=2).tampered()
    )
    print(f"   -> {result.status.value}")
    assert not result.ok

    print("3. a replayed/stale version:")
    result = device.apply_update(UpdatePackage.make(key, target, b"\x22\x33", version=1))
    print(f"   -> {result.status.value}")
    assert not result.ok

    print("4. the same ROM copy routine WITHOUT an open update session:")
    staging = device.layout.dmem.start + 6
    device.bus.load_bytes(staging, b"\x66\x77")
    violations = device.call_routine(
        "S_CASU_update_copy", regs={15: staging, 14: target, 13: 1}
    )
    print(f"   -> device reset: {violations[0]}")
    assert violations and device.peek_word(target) == 0xDEAD  # unchanged

    print("\nsecure update OK: only authenticated, session-gated copies land.")


if __name__ == "__main__":
    main()
