#!/usr/bin/env python3
"""Sensor-node walkthrough: a Table IV application end to end.

Runs the Fire Sensor (the paper's most demanding app: two ADC channels,
a timer ISR, and an indirect alarm dispatch) in both variants through
the public scenario API, shows that the observable behaviour is
identical, and prints the measured overhead next to the paper's
Table IV row.
"""

from repro.api import FirmwareSpec, ScenarioSpec, Session
from repro.apps import get_app
from repro.eval.paper_data import PAPER_TABLE4


def session_for(variant):
    return Session(ScenarioSpec(
        name=f"fire_sensor-{variant}",
        firmware=FirmwareSpec(kind="app", app="fire_sensor", variant=variant),
        security="eilid" if variant == "eilid" else "none",
    ))


def main():
    spec = get_app("fire_sensor")
    print(f"app: {spec.title} -- {spec.description}")

    sessions = {variant: session_for(variant)
                for variant in ("original", "eilid")}
    runs = {variant: session.run() for variant, session in sessions.items()}
    builds = {variant: session.build() for variant, session in sessions.items()}
    original, eilid = runs["original"], runs["eilid"]

    print(f"\noriginal: {original.cycles} cycles ({original.run_time_us:.0f} us)")
    print(f"EILID:    {eilid.cycles} cycles ({eilid.run_time_us:.0f} us), "
          f"violations={len(eilid.violations)}")

    assert original.done and eilid.done and not eilid.violations
    same_output = (sessions["original"].device.output_events()
                   == sessions["eilid"].device.output_events())
    print(f"observable output identical: {same_output}")
    assert same_output

    size_orig = builds["original"].app_code_bytes
    size_eilid = builds["eilid"].app_code_bytes
    run_pct = 100.0 * (eilid.cycles - original.cycles) / original.cycles
    size_pct = 100.0 * (size_eilid - size_orig) / size_orig
    paper = PAPER_TABLE4[spec.name]
    print("\n              measured   paper")
    print(f"run overhead  {run_pct:7.2f}%  {paper.run_overhead_pct:6.2f}%")
    print(f"size overhead {size_pct:7.2f}%  {paper.size_overhead_pct:6.2f}%")
    print(f"binary bytes  {size_orig}/{size_eilid}   "
          f"{paper.size_bytes_orig}/{paper.size_bytes_eilid}")

    device = sessions["eilid"].device
    print(f"\nscenario: {eilid.done_value} alarm activations, "
          f"{device.peripherals['timer'].fire_count} watchdog ticks, "
          f"{device.peripherals['adc'].sample_count} ADC conversions")


if __name__ == "__main__":
    main()
