#!/usr/bin/env python3
"""Sensor-node walkthrough: a Table IV application end to end.

Runs the Fire Sensor (the paper's most demanding app: two ADC channels,
a timer ISR, and an indirect alarm dispatch) in both variants, shows
that the observable behaviour is identical, and prints the measured
overhead next to the paper's Table IV row.
"""

from repro.apps import get_app, run_app
from repro.apps.runtime import build_app
from repro.eval.paper_data import PAPER_TABLE4


def main():
    spec = get_app("fire_sensor")
    print(f"app: {spec.title} -- {spec.description}")

    original = run_app(spec, "original")
    eilid = run_app(spec, "eilid")
    build_orig = build_app(spec, "original")
    build_eilid = build_app(spec, "eilid")

    print(f"\noriginal: {original.cycles} cycles ({original.run_time_us:.0f} us)")
    print(f"EILID:    {eilid.cycles} cycles ({eilid.run_time_us:.0f} us), "
          f"violations={len(eilid.violations)}")

    assert original.done and eilid.done and not eilid.violations
    same_output = original.output_events() == eilid.output_events()
    print(f"observable output identical: {same_output}")
    assert same_output

    run_pct = 100.0 * (eilid.cycles - original.cycles) / original.cycles
    size_pct = 100.0 * (build_eilid.app_code_bytes - build_orig.app_code_bytes) \
        / build_orig.app_code_bytes
    paper = PAPER_TABLE4[spec.name]
    print(f"\n              measured   paper")
    print(f"run overhead  {run_pct:7.2f}%  {paper.run_overhead_pct:6.2f}%")
    print(f"size overhead {size_pct:7.2f}%  {paper.size_overhead_pct:6.2f}%")
    print(f"binary bytes  {build_orig.app_code_bytes}/{build_eilid.app_code_bytes}   "
          f"{paper.size_bytes_orig}/{paper.size_bytes_eilid}")

    alarms = eilid.done_value
    ticks = eilid.device.peripherals["timer"].fire_count
    print(f"\nscenario: {alarms} alarm activations, {ticks} watchdog ticks, "
          f"{eilid.device.peripherals['adc'].sample_count} ADC conversions")


if __name__ == "__main__":
    main()
