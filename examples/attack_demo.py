#!/usr/bin/env python3
"""Attack demo: the same exploits as declarative scenarios.

A telemetry node has a privileged ``unlock()`` routine.  The attacker
exploits a memory-vulnerability (modelled as a surgical stack write) to
redirect control flow at it.  Each attack is just a ``ScenarioSpec``
with an ``attack`` field -- the same document shape that drives app
runs and fleets -- executed at three security levels:

* baseline (no RoT)  -> hijacked: unlock's 0xAA marker appears on GPIO
* CASU               -> hijacked too: code is immutable, but control
                        flow is not CASU's problem (the paper's gap)
* EILID              -> the instrumented `ret` check fires first and
                        the device resets; the marker never appears.
"""

from repro.api import ScenarioSpec, Session


def banner(text):
    print(f"\n=== {text} ===")


def launch(attack, security) -> Session:
    session = Session(ScenarioSpec(name=attack, attack=attack,
                                   security=security))
    session.run()
    return session


def main():
    banner("backward edge: return-address smash (P1)")
    for security in ("none", "casu", "eilid"):
        print(f"  {security:6s}: "
              f"{launch('return_address_smash', security).attack_result}")

    banner("interrupt context tamper (P2)")
    for security in ("none", "casu", "eilid"):
        print(f"  {security:6s}: "
              f"{launch('interrupt_context_tamper', security).attack_result}")

    banner("forward edge: function-pointer hijack to a mid-function gadget (P3)")
    for security in ("none", "casu", "eilid"):
        print(f"  {security:6s}: "
              f"{launch('pointer_hijack', security).attack_result}")

    banner("forward edge: bend to ANOTHER VALID function entry")
    print("  (function-level CFI admits this by design -- paper Sec. IV-A)")
    for security in ("none", "eilid"):
        print(f"  {security:6s}: "
              f"{launch('pointer_bend_to_valid_function', security).attack_result}")

    banner("the outcome is typed and serialisable")
    outcome = launch("return_address_smash", "eilid").run()
    print(f"  outcome={outcome.attack.outcome} "
          f"detected={outcome.attack.detected} ok={outcome.ok}")
    assert outcome.to_dict()["attack"]["detected"]

    print("\nsummary: EILID converts every out-of-policy control transfer "
          "into a reset before the hijacked instruction executes.")


if __name__ == "__main__":
    main()
