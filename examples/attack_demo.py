#!/usr/bin/env python3
"""Attack demo: the same exploit against three devices.

A telemetry node has a privileged ``unlock()`` routine.  The attacker
exploits a memory-vulnerability (modelled as a surgical stack write) to
redirect ``process()``'s return address at it -- the entry step of a
return-oriented attack.

* baseline (no RoT)  -> hijacked: unlock's 0xAA marker appears on GPIO
* CASU               -> hijacked too: code is immutable, but control
                        flow is not CASU's problem (the paper's gap)
* EILID              -> the instrumented `ret` check fires first and
                        the device resets; the marker never appears.
"""

from repro.attacks import (
    interrupt_context_tamper,
    pointer_bend_to_valid_function,
    pointer_hijack,
    return_address_smash,
)


def banner(text):
    print(f"\n=== {text} ===")


def main():
    banner("backward edge: return-address smash (P1)")
    for security in ("none", "casu", "eilid"):
        print(f"  {security:6s}: {return_address_smash(security)}")

    banner("interrupt context tamper (P2)")
    for security in ("none", "casu", "eilid"):
        print(f"  {security:6s}: {interrupt_context_tamper(security)}")

    banner("forward edge: function-pointer hijack to a mid-function gadget (P3)")
    for security in ("none", "casu", "eilid"):
        print(f"  {security:6s}: {pointer_hijack(security)}")

    banner("forward edge: bend to ANOTHER VALID function entry")
    print("  (function-level CFI admits this by design -- paper Sec. IV-A)")
    for security in ("none", "eilid"):
        print(f"  {security:6s}: {pointer_bend_to_valid_function(security)}")

    print("\nsummary: EILID converts every out-of-policy control transfer "
          "into a reset before the hijacked instruction executes.")


if __name__ == "__main__":
    main()
