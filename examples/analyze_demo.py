#!/usr/bin/env python3
"""Static analysis and the sweep-guided coverage loop.

Part 1 runs the analyzer (:mod:`repro.analyze`) over a benign Table IV
application and an attack image: the benign build is clean (zero
criticals), the attack image trips a critical before it ever runs.

Part 2 closes the loop the paper leaves open: a firmware with a
fault-bendable function pointer is swept with instruction-skip faults,
the analyzer clusters the escapes by basic block and proposes a
``narrow-indirect-targets`` CFI tightening, and a re-run sweep graded
against the patched policy turns those bent-pointer escapes into
trace-replay detections.
"""

from repro.analyze import (
    analyze_program,
    apply_cfi_patch,
    correlate_sweep,
)
from repro.api import FirmwareSpec
from repro.api.firmware import build_firmware
from repro.attacks.injection import RAW_ATTACK_FIRMWARE
from repro.cfg import compile_policy, recover_cfg
from repro.faults import FaultCampaign, enumerate_sites, expand_plan

# The honest path always calls `process`; skipping one of the three
# gate instructions bends r10 to `diag` instead.  `diag` is a known
# function entry but never address-taken, so the proposed narrowing
# excludes it and replay flags the bent call.
BENDABLE_ASM = """
; Indirect-dispatch firmware with a fault-bendable function pointer.
    .text
    .global main
main:
    mov #process, r10
    mov r10, r11
    add #8, r11          ; r11 = diag (process body is 8 bytes)
    mov #1, r15
    cmp #1, r15
    jz ok                ; honest path: always taken
    mov r11, r10         ; fault path: bend the pointer to diag
ok:
    call r10
    mov #1, &0x0070      ; DONE
park:
    jmp park
dead:
    call #diag           ; never executed: diag stays a known entry
process:
    mov #5, &0x0010
    ret
diag:
    mov #5, &0x0010
    ret
"""


def escape_ids(report):
    return {doc["id"] for doc in report.outcomes["none"]
            if doc["outcome"] in ("escape", "silent-corruption")}


def main():
    # -- part 1: lint a benign app and an attack image --------------------
    build = build_firmware(FirmwareSpec(kind="app", app="light_sensor",
                                        variant="eilid"))
    benign = analyze_program(build.program, name="light_sensor",
                             variant="eilid")
    print(f"1. light_sensor/eilid: ok={benign.ok} "
          f"({benign.count('warn')} warns, "
          f"{benign.count('critical')} criticals)")
    assert benign.ok, "a Table IV app must analyze clean"

    attack_build = build_firmware(RAW_ATTACK_FIRMWARE["ivt_overwrite"])
    attack = analyze_program(attack_build.program, name="ivt_overwrite")
    print("2. the ivt_overwrite attack image, statically:")
    print(attack.render())
    assert not attack.ok, "the attack image must trip a critical"

    # -- part 2: the sweep-guided coverage loop ---------------------------
    spec = FirmwareSpec(kind="asm", source=BENDABLE_ASM,
                        variant="original", name="bendable",
                        link_rom=False)
    bend_build = build_firmware(spec)
    cfg = recover_cfg(bend_build.program, name="bendable")
    plan = expand_plan(enumerate_sites(cfg, kinds=("insn-skip",)),
                       seed=0, count=None, name="bendable")
    print(f"3. sweeping all {len(plan.faults)} instruction-skip faults "
          f"over the bendable firmware ...")
    baseline = FaultCampaign(spec, plan, profiles=("none",)).run()

    findings = analyze_program(bend_build.program, name="bendable").findings
    correlation = correlate_sweep(baseline, cfg, list(findings))
    patch = next(p for p in correlation["proposals"]
                 if p["action"] == "narrow-indirect-targets")
    print(f"4. {len(correlation['clusters'])} escape cluster(s); "
          f"proposed tightening: {patch['reason']}")

    policy = compile_policy(cfg, bend_build.program.symbols)
    tightened = apply_cfi_patch(policy, patch)
    rerun = FaultCampaign(spec, plan, profiles=("none",),
                          policy=tightened).run()

    flipped = sorted(escape_ids(baseline) - escape_ids(rerun))
    print(f"5. re-swept against the patched policy: fault(s) {flipped} "
          f"flipped escape -> detected")
    assert flipped, "the tightening must convert escapes to detections"
    after = {doc["id"]: doc for doc in rerun.outcomes["none"]}
    for fid in flipped:
        assert after[fid]["reason"].startswith("replay:"), after[fid]
    print(f"   ok -- {after[flipped[0]]['reason']}")


if __name__ == "__main__":
    main()
