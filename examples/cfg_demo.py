"""Trace attestation end to end, in one sitting.

1. Build the fire-sensor app (EILID variant) through the public API,
   recover its CFG from the *linked binary* and compile the CFI policy
   artifact.
2. Cross-check the binary-derived policy against the instrumenter's
   listing-derived view (the Fig. 2 contract).
3. Run the app and replay its recorded branch trace -- benign evidence
   replays clean (``Session.verify()``).
4. Launch the same attacks the paper defends against at an undefended
   baseline device and watch the *verifier* catch each one from the
   trace alone -- each attack is one declarative scenario.

Run with:  PYTHONPATH=src python examples/cfg_demo.py
"""

from repro.api import FirmwareSpec, ScenarioSpec, Session, build_firmware
from repro.cfg import diff_against_listing, policy_for_program, recover_cfg


def main():
    firmware = FirmwareSpec(kind="app", app="fire_sensor", variant="eilid")

    print("== 1. recover the CFG from the linked binary ==")
    build = build_firmware(firmware)
    cfg = recover_cfg(build.program)
    policy = policy_for_program(build.program)
    print(f"{cfg.name}: {len(cfg.insns)} instructions, "
          f"{len(cfg.functions)} functions, {cfg.block_count} basic blocks")
    print("indirect-call table (recovered from the binary): "
          + ", ".join(f"0x{addr:04x}" for addr in cfg.indirect_targets))
    print(f"policy digest: {policy.digest[:16]}...")

    print("\n== 2. cross-check against the listing-derived view ==")
    divergences = diff_against_listing(policy, build.listing)
    print("divergences:", divergences if divergences else "none -- views agree")

    print("\n== 3. benign run replays clean ==")
    session = Session(ScenarioSpec(name="fire_sensor", firmware=firmware,
                                   security="eilid"))
    run = session.run()
    print(f"{run.scenario}: done={run.done} cycles={run.cycles}")
    verdict = session.verify()
    snapshot = session.device.trace_snapshot()
    print(f"recorded {snapshot.total} edges ({snapshot.dropped} dropped), "
          f"digest {snapshot.digest_hex}")
    print(f"replay ok={verdict.ok} ({verdict.edges_checked} edges checked)")
    assert verdict.ok

    print("\n== 4. the verifier catches what an undefended device misses ==")
    for attack in ("return_address_smash", "pointer_hijack",
                   "code_injection", "interrupt_context_tamper"):
        # baseline security: the hijack actually executes on-device
        victim = Session(ScenarioSpec(name=attack, attack=attack,
                                      security="none"))
        outcome = victim.run()
        verdict = victim.verify()
        assert not verdict.ok
        print(f"{attack:26s} device: {outcome.attack.outcome:9s} "
              f"verifier: REJECTED ({verdict.reason})")


if __name__ == "__main__":
    main()
