"""Trace attestation end to end, in one sitting.

1. Build the fire-sensor app (EILID variant), recover its CFG from the
   *linked binary* and compile the CFI policy artifact.
2. Cross-check the binary-derived policy against the instrumenter's
   listing-derived view (the Fig. 2 contract).
3. Run the app and replay its recorded branch trace -- benign evidence
   replays clean.
4. Launch the same attacks the paper defends against at an undefended
   baseline device and watch the *verifier* catch each one from the
   trace alone.

Run with:  PYTHONPATH=src python examples/cfg_demo.py
"""

from repro.apps.registry import APPS
from repro.apps.runtime import build_app, run_app
from repro.attacks import (
    code_injection,
    interrupt_context_tamper,
    pointer_hijack,
    return_address_smash,
)
from repro.cfg import diff_against_listing, policy_for_program, recover_cfg, replay_trace
from repro.eilid.iterbuild import IterativeBuild


def main():
    builder = IterativeBuild()
    spec = APPS["fire_sensor"]

    print("== 1. recover the CFG from the linked binary ==")
    build = build_app(spec, "eilid", builder)
    cfg = recover_cfg(build.program)
    policy = policy_for_program(build.program)
    print(f"{cfg.name}: {len(cfg.insns)} instructions, "
          f"{len(cfg.functions)} functions, {cfg.block_count} basic blocks")
    print(f"indirect-call table (recovered from the binary): "
          + ", ".join(f"0x{addr:04x}" for addr in cfg.indirect_targets))
    print(f"policy digest: {policy.digest[:16]}...")

    print("\n== 2. cross-check against the listing-derived view ==")
    divergences = diff_against_listing(policy, build.listing)
    print("divergences:", divergences if divergences else "none -- views agree")

    print("\n== 3. benign run replays clean ==")
    run = run_app(spec, "eilid", builder)
    snapshot = run.device.trace_snapshot()
    print(f"recorded {snapshot.total} edges ({snapshot.dropped} dropped), "
          f"digest {snapshot.digest_hex}")
    print(replay_trace(policy, snapshot))

    print("\n== 4. the verifier catches what an undefended device misses ==")
    for attack in (return_address_smash, pointer_hijack,
                   code_injection, interrupt_context_tamper):
        result = attack("none")  # baseline: the hijack actually executes
        victim_policy = policy_for_program(result.device.program)
        verdict = replay_trace(victim_policy, result.device.trace_snapshot())
        print(f"{result.name:26s} device: {result.outcome.value:9s} "
              f"verifier: {verdict}")


if __name__ == "__main__":
    main()
