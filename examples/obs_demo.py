#!/usr/bin/env python3
"""Longitudinal observability: the fleet's memory across restarts.

``fleet_demo.py`` shows one verifier process doing everything once.
This demo shows the layer that remembers it all: every operational
fact (enroll, attest, offer, quarantine, wave, campaign bracket,
violation delta) lands in an append-only event DB, metrics and spans
time the stack from session phases down to interpreter batches, and
the history queries answer questions no single process could:

1. run three successive campaigns over ONE durable SQLite store +
   event DB, restarting the verifier between each (close, reopen,
   restore) -- campaign two is attacked by a MITM;
2. replay a per-device timeline from the event DB alone;
3. fold the per-campaign rollup (who quarantined, why, how fast);
4. read the cross-campaign trend series;
5. snapshot the metrics registry: phase spans, campaign waves,
   interpreter batch counters -- and show the off switch is real.
"""

import os
import tempfile

from repro.api import FleetSpec, RolloutSpec, ScenarioSpec, Session
from repro.obs import METRICS, open_event_log

FLEET = 60


def make_spec(store, events):
    return ScenarioSpec(
        name="obs-demo",
        security="casu",
        fleet=FleetSpec(size=FLEET, seed=11, store=store, events=events),
    )


def main():
    workdir = tempfile.mkdtemp(prefix="eilid-obs-")
    store = os.path.join(workdir, "registry.db")
    events = os.path.join(workdir, "events.db")

    print(f"1. three campaigns, one event DB ({events}), one restart each:")
    for version, tamper in ((1, 0.0), (2, 0.10), (3, 0.0)):
        session = Session(make_spec(store, events))
        rollout = session.rollout(RolloutSpec(
            version=version, tamper_fraction=tamper,
            failure_threshold=0.5))
        note = " (under MITM attack)" if tamper else ""
        print(f"   v{version}{note}: {rollout.status}, "
              f"{rollout.applied} applied, {rollout.failed} failed, "
              f"{rollout.devices_per_sec:.0f} dev/s")
        # The restart: close the durable layers like a dying process.
        session.fleet.registry.flush()
        session.fleet.registry.store.close()
        session.fleet.events.close()

    log = open_event_log(events)

    print("2. one device's whole life, replayed from the event DB:")
    rollup = log.device_rollup()
    victim = next(device_id for device_id, entry in sorted(rollup.items())
                  if entry["quarantine_reason"])
    for doc in log.device_timeline(victim):
        data = " ".join(f"{k}={doc['data'][k]}" for k in sorted(doc["data"]))
        print(f"   seq={doc['seq']:<4} {doc['kind']:<12} "
              f"campaign={doc['campaign'] or '-':<5} {data}")
    assert rollup[victim]["quarantine_reason"] == "rejected-bad-mac"

    print("3. per-campaign rollup (all three processes' worth):")
    campaigns = log.campaign_rollup()
    for entry in campaigns:
        print(f"   {entry['campaign']}: v{entry['target_version']} "
              f"{entry['status']}, applied={entry['applied']} "
              f"failed={entry['failed']} quarantined={entry['quarantined']} "
              f"reasons={entry['quarantine_reasons']}")
    assert len(campaigns) == 3
    assert campaigns[1]["quarantined"] > 0  # the attacked campaign
    assert campaigns[0]["quarantined"] == campaigns[2]["quarantined"] == 0

    print("4. cross-campaign trends:")
    trends = log.trends()
    print(f"   versions:  {trends['target_versions']}")
    print(f"   dev/s:     {trends['devices_per_sec']}")
    print(f"   quarantined: {trends['quarantined']}")
    assert trends["target_versions"] == [1, 2, 3]
    log.close()

    print("5. the metrics registry (process-global, all three campaigns):")
    snapshot = METRICS.snapshot()
    print(f"   fleet.updates = {snapshot['counters']['fleet.updates']}")
    for name, data in snapshot["histograms"].items():
        if name.startswith(("session.", "campaign.")):
            print(f"   {name}: count={data['count']} "
                  f"mean={data['mean']:.2f}ms")
    assert snapshot["histograms"]["campaign.run.ms"]["count"] == 3
    before = METRICS.counter("interpreter.batches")
    METRICS.enable(False)  # the off switch: one attribute check per batch
    METRICS.inc("interpreter.batches")
    METRICS.enable(True)
    assert METRICS.counter("interpreter.batches") == before

    print("\nobs demo OK: one event DB answered per-device, per-campaign "
          "and cross-campaign questions across three verifier restarts.")


if __name__ == "__main__":
    main()
