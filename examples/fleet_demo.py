#!/usr/bin/env python3
"""The verifier's day: enroll a fleet, watch it, update it, survive attacks.

Walks the whole fleet subsystem end to end on a few hundred simulated
EILID devices:

1. enroll devices over a lossy, reordering channel;
2. collect authenticated heartbeats (firmware hash + violation log);
3. stage a firmware rollout in canary waves -- every device runs the
   real authenticated update path, ROM copy included;
4. let a man-in-the-middle tamper with a fleet-wide share of packages
   and watch the device-side MAC check reject every one;
5. push hard enough that the campaign's failure threshold halts it;
6. corrupt one device's firmware and watch attestation quarantine it.
"""

from repro.fleet import CampaignConfig, FleetSimulation

FLEET = 200


def main():
    print(f"1. enrolling {FLEET} devices (5% loss, 10% reordering):")
    fleet = FleetSimulation(size=FLEET, loss=0.05, reorder=0.10, seed=42,
                            max_attempts=8)
    enrolled = sum(1 for record in fleet.registry
                   if record.firmware_hash is not None)
    print(f"   -> {enrolled}/{FLEET} enrolled, golden hashes pinned")

    print("2. heartbeat sweep:")
    results = fleet.attest_all()
    ok = sum(1 for result in results.values() if result.ok)
    retried = sum(1 for result in results.values() if result.attempts > 1)
    print(f"   -> {ok}/{FLEET} attested ok ({retried} needed retries)")

    print("3. staged rollout to v1 (5% canary, 25%, 100%):")
    report = fleet.rollout(version=1)
    print("   " + report.render().replace("\n", "\n   "))
    assert not report.halted

    print("4. rollout to v2 with a MITM tampering 8% of packages:")
    report = fleet.rollout(version=2, tamper_fraction=0.08,
                           config=CampaignConfig(failure_threshold=0.20))
    print("   " + report.render().replace("\n", "\n   "))
    assert report.waves and not report.halted
    rejected = sum(wave.statuses["rejected-bad-mac"] for wave in report.waves)
    print(f"   -> every tampered package rejected by the device MAC check "
          f"({rejected} rejections, offenders quarantined)")

    print("5. rollout to v3 with 50% tampering -- the canary wave trips:")
    report = fleet.rollout(version=3, tamper_fraction=0.5)
    print("   " + report.render().replace("\n", "\n   "))
    assert report.halted and report.skipped > 0

    print("6. post-rollout heartbeat sweep re-pins the new firmware hashes:")
    results = fleet.attest_all(fleet.registry.manageable_ids())
    print(f"   -> {sum(1 for r in results.values() if r.ok)}/{len(results)} ok")

    print("7. one device's firmware gets corrupted in the field:")
    victim = fleet.registry.manageable_ids()[7]
    fleet.corrupt_firmware(victim)
    result = fleet.attest_all([victim])[victim]
    print(f"   -> attest({victim}): {result.detail}; "
          f"violations={list(result.report.violation_reasons)}")
    assert not result.ok

    print("\nfleet telemetry:")
    print(fleet.status())
    print("\nfleet demo OK: authenticated updates, staged waves, "
          "threshold halts, quarantine on bad evidence.")


if __name__ == "__main__":
    main()
