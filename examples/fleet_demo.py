#!/usr/bin/env python3
"""The verifier's day: enroll a fleet, watch it, update it, survive attacks.

Walks the whole fleet subsystem end to end on a few hundred simulated
EILID devices, driven through the public scenario API: one declarative
``ScenarioSpec`` with a ``fleet`` section, one ``Session`` managing the
population across every phase.

1. enroll devices over a lossy, reordering channel;
2. collect authenticated heartbeats (firmware hash + violation log),
   streamed one device at a time -- no materialised result lists;
3. stage a firmware rollout in canary waves -- every device runs the
   real authenticated update path, ROM copy included;
4. let a man-in-the-middle tamper with a fleet-wide share of packages
   and watch the device-side MAC check reject every one;
5. push hard enough that the campaign's failure threshold halts it;
6. corrupt one device's firmware and watch attestation quarantine it;
7. shard a campaign across worker processes (GIL-free);
8. kill the verifier (well, drop the Session) and restart it on the
   durable store: devices restore instead of re-enrolling, nonce
   high-water marks persist, and ``resume`` re-offers nothing.
"""

import os
import tempfile

from repro.api import FleetSpec, RolloutSpec, ScenarioSpec, Session

FLEET = 200


def main():
    store = os.path.join(tempfile.mkdtemp(prefix="eilid-fleet-"),
                         "registry.jsonl")
    spec = ScenarioSpec(
        name="fleet-demo",
        security="casu",
        fleet=FleetSpec(size=FLEET, loss=0.05, reorder=0.10, seed=42,
                        max_attempts=8, store=store),
    )
    print(f"1. enrolling {FLEET} devices (5% loss, 10% reordering; "
          f"durable registry at {store}):")
    session = Session(spec)
    outcome = session.run()
    print(f"   -> {outcome.fleet.enrolled}/{FLEET} enrolled, "
          f"golden hashes pinned")

    print("2. heartbeat sweep (streamed, one device at a time):")
    retried = ok = 0
    for record in session.attest_stream():
        ok += record.ok
        retried += record.attempts > 1
    print(f"   -> {ok}/{FLEET} attested ok ({retried} needed retries)")

    print("3. staged rollout to v1 (5% canary, 25%, 100%):")
    rollout = session.rollout(RolloutSpec(version=1))
    print("   " + session.campaign_report.render().replace("\n", "\n   "))
    assert not rollout.halted

    print("4. rollout to v2 with a MITM tampering 8% of packages:")
    rollout = session.rollout(RolloutSpec(
        version=2, tamper_fraction=0.08, failure_threshold=0.20))
    report = session.campaign_report
    print("   " + report.render().replace("\n", "\n   "))
    assert report.waves and not rollout.halted
    rejected = sum(wave.statuses["rejected-bad-mac"] for wave in report.waves)
    print(f"   -> every tampered package rejected by the device MAC check "
          f"({rejected} rejections, offenders quarantined)")
    assert rollout.to_dict()["status"] == "complete"  # JSON-clean outcome

    print("5. rollout to v3 with 50% tampering -- the canary wave trips:")
    rollout = session.rollout(RolloutSpec(version=3, tamper_fraction=0.5))
    print("   " + session.campaign_report.render().replace("\n", "\n   "))
    assert rollout.halted and rollout.skipped > 0

    fleet = session.fleet  # the underlying simulation, for fault injection
    print("6. post-rollout heartbeat sweep re-pins the new firmware hashes:")
    ids = fleet.registry.manageable_ids()
    results = fleet.attest_all(ids)
    print(f"   -> {sum(1 for r in results.values() if r.ok)}/{len(results)} ok")

    print("7. one device's firmware gets corrupted in the field:")
    victim = ids[7]
    fleet.corrupt_firmware(victim)
    result = fleet.attest_all([victim])[victim]
    print(f"   -> attest({victim}): {result.detail}; "
          f"violations={list(result.report.violation_reasons)}")
    assert not result.ok

    print("8. rollout to v4 sharded across worker processes:")
    rollout = session.rollout(RolloutSpec(version=4, backend="process",
                                          workers=4))
    print("   " + session.campaign_report.render().replace("\n", "\n   "))
    assert not rollout.halted and rollout.backend == "process"

    print("9. the verifier dies; a new one restarts on the durable store:")
    fleet.registry.store.close()
    reborn = Session(spec)
    restored = reborn.fleet.registry
    print(f"   -> {len(restored)} devices restored (no re-enrollment), "
          f"lifecycle and nonce high-water marks intact")
    assert {record.device_id for record in restored} \
        == {record.device_id for record in fleet.registry}
    assert all(record.nonce_high_water > 0 for record in restored)
    resumed = reborn.rollout(RolloutSpec(version=4, resume=True))
    print(f"   -> resume of the v4 campaign: {resumed.status}, "
          f"{resumed.resumed} devices already applied, "
          f"{resumed.applied} re-offered")
    assert resumed.applied == 0 and resumed.resumed > 0
    results = reborn.fleet.attest_all(restored.manageable_ids())
    print(f"   -> post-restart heartbeats: "
          f"{sum(1 for r in results.values() if r.ok)}/{len(results)} ok")
    assert all(result.ok for result in results.values())

    print("\nfleet telemetry:")
    print(fleet.status())
    print("\nfleet demo OK: authenticated updates, staged waves, "
          "threshold halts, quarantine on bad evidence, durable "
          "process-sharded campaigns.")


if __name__ == "__main__":
    main()
