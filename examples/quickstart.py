#!/usr/bin/env python3
"""Quickstart: compile, instrument, and run a program under EILID.

Covers the full pipeline of the paper's Fig. 1/Fig. 2 in ~40 lines:
mini-C -> assembly -> three-iteration instrumented build -> EILID
device -> monitored execution.
"""

from repro.device import build_device
from repro.eilid.iterbuild import IterativeBuild
from repro.minicc import compile_c

APP_C = """
int total;

int accumulate(int v) {
    return total + v * 2;
}

void main() {
    total = 0;
    for (int i = 1; i <= 10; i = i + 1) {
        total = accumulate(i);
    }
    __mmio_write(0x0070, total);   // DONE port: hand the result back
}
"""


def main():
    print("1. compiling mini-C to MSP430 assembly ...")
    asm = compile_c(APP_C, "quickstart")

    print("2. running the three-iteration instrumented build (Fig. 2) ...")
    builder = IterativeBuild()
    result = builder.build_eilid(asm, "quickstart.s", verify_convergence=True)
    report = result.report
    print(f"   builds: {result.build_count} (fixed point verified)")
    print(f"   instrumented: {report.direct_calls} call site(s), "
          f"{report.returns} return(s), +{report.inserted_bytes} bytes")

    print("3. booting the EILID-enabled device ...")
    device = build_device(result.final.program, security="eilid")
    run = device.run(max_cycles=200_000)

    print(f"4. done={run.done} value={run.done_value} "
          f"(expect {sum(range(1, 11)) * 2 + 0})")
    print(f"   cycles={run.cycles} ({run.run_time_us:.1f} us @ 100 MHz), "
          f"violations={len(run.violations)}")
    assert run.done and not run.violations
    assert run.done_value == 110
    print("quickstart OK")


if __name__ == "__main__":
    main()
