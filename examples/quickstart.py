#!/usr/bin/env python3
"""Quickstart: one declarative spec drives the whole EILID pipeline.

The public API (:mod:`repro.api`) reduces the paper's Fig. 1/Fig. 2
flow -- mini-C -> assembly -> three-iteration instrumented build ->
EILID device -> monitored execution -> attestation -> verifier-side
trace replay -- to a single ``ScenarioSpec`` and one ``run_scenario``
call.  Every stage returns a typed result with ``to_dict()``, so the
same scenario works as a JSON config document too.
"""

import json

from repro.api import FirmwareSpec, ScenarioSpec, run_scenario

APP_C = """
int total;

int accumulate(int v) {
    return total + v * 2;
}

void main() {
    total = 0;
    for (int i = 1; i <= 10; i = i + 1) {
        total = accumulate(i);
    }
    __mmio_write(0x0070, total);   // DONE port: hand the result back
}
"""


def main():
    spec = ScenarioSpec(
        name="quickstart",
        firmware=FirmwareSpec(kind="minicc", source=APP_C,
                              variant="eilid", name="quickstart"),
        security="eilid",
    )
    print("1. the scenario, as a serialisable document:")
    print(f"   {json.dumps({k: v for k, v in spec.to_dict().items() if k != 'firmware'})}")

    print("2. run_scenario: build -> run -> attest -> verify ...")
    result = run_scenario(spec)

    build = result.build
    print(f"   builds: {build.build_count} (Fig. 2 iteration), "
          f"instrumented: {build.instrumented_calls} call site(s), "
          f"{build.instrumented_returns} return(s), "
          f"+{build.inserted_bytes} bytes")

    run = result.run
    print(f"3. done={run.done} value={run.done_value} "
          f"(expect {sum(range(1, 11)) * 2 + 0})")
    print(f"   cycles={run.cycles} ({run.run_time_us:.1f} us @ 100 MHz), "
          f"violations={len(run.violations)}")

    print(f"4. attested firmware hash "
          f"{result.attest.report['firmware_hash'][:16]}..., "
          f"trace replay: ok={result.verify.ok} "
          f"({result.verify.edges_checked} edges)")

    assert run.done and not run.violations
    assert run.done_value == 110
    assert result.ok
    json.dumps(result.to_dict())  # every outcome is JSON-clean
    print("quickstart OK")


if __name__ == "__main__":
    main()
