#!/usr/bin/env python3
"""Fault-injection sweep: grade every defense profile against the
same seeded faults.

A :class:`~repro.api.FaultSpec` turns one Table IV application into a
systematic campaign (:mod:`repro.faults`): fault sites are enumerated
from the recovered CFG, a seeded plan samples them (bit-flips in
IMEM, register corruption, instruction skips, peripheral data
corruption), and every fault runs against a snapshot-restored device
under each defense profile.  The per-profile table is the paper-style
detection/escape/crash/silent-corruption breakdown -- and because the
eilid monitor set is a strict superset of casu's, the detection rates
must nest: eilid >= casu >= none.
"""

from repro.api import FaultSpec, FirmwareSpec, ScenarioSpec, Session

APP = "light_sensor"
SEED = 7
FAULTS = 24


def main():
    spec = ScenarioSpec(
        name="fault-sweep-demo",
        firmware=FirmwareSpec(kind="app", app=APP, variant="original"),
    )
    plan = FaultSpec(seed=SEED, count=FAULTS)
    print(f"1. sweeping {FAULTS} seeded faults over {APP} "
          f"(seed {SEED}, profiles {', '.join(plan.profiles)}) ...")
    report = Session(spec).fault_sweep(plan)

    print("2. the per-profile table:")
    print(report.render())

    none, casu, eilid = (report.tally(p) for p in ("none", "casu", "eilid"))
    print(f"3. detection nests with the monitor sets: "
          f"eilid {eilid.detected} >= casu {casu.detected} "
          f">= none {none.detected}")
    assert none.detected == 0, "no monitors, nothing to detect"
    assert eilid.detected >= casu.detected >= none.detected
    assert casu.detected > 0, "the seeded plan should trip monitors"
    for profile in ("none", "casu", "eilid"):
        assert report.tally(profile).total == FAULTS
    print(f"   ok ({report.faults_per_sec:.0f} faults/s, "
          f"{report.backend} backend)")


if __name__ == "__main__":
    main()
