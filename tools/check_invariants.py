#!/usr/bin/env python3
"""AST-based repo invariant checker (CI-required lint).

Enforces three codebase contracts no general-purpose linter knows
about:

1. **event kinds are closed** -- every literal event kind passed to an
   ``*.events.emit(...)`` / ``*.log.emit(...)`` call must be a member
   of ``EVENT_KINDS`` (src/repro/obs/events.py).  A typo'd kind would
   otherwise raise only when that code path runs.
2. **CLI JSON goes through the envelope** -- every ``_print_json(...)``
   in src/repro/cli.py must be fed a document built by an approved
   producer (``envelope(...)``, a ``.to_dict()`` / ``to_json_doc(...)``
   result, or a local that demonstrably derives from one / sets its own
   ``schema`` key).  This keeps the uniform ``--json`` contract honest.
3. **deterministic paths stay deterministic** -- the fault plan/site
   enumeration and the static analyzer must not consult wall-clock time
   or unseeded randomness; their outputs are pinned by seeds and
   inputs alone.

Usage: ``python tools/check_invariants.py [--root PATH]``.
Exits 0 when clean, 1 with one line per violation otherwise.
"""

import argparse
import ast
import sys
from pathlib import Path

# Deterministic-path modules (relative to the repo root): no wall-clock,
# no unseeded randomness.  faults/campaign.py is deliberately absent --
# its elapsed-time measurement is reporting, not plan content.
DETERMINISTIC_PATHS = (
    "src/repro/faults/plan.py",
    "src/repro/faults/sites.py",
    "src/repro/analyze",
)

_EMIT_RECEIVERS = {"events", "log"}
_APPROVED_PRODUCERS = {"envelope", "to_dict", "to_json_doc"}
_WALLCLOCK = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}
_UNSEEDED_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                    "shuffle", "sample", "uniform", "getrandbits"}


def _parse(path: Path):
    return ast.parse(path.read_text(), filename=str(path))


def load_event_kinds(root: Path):
    """The EVENT_KINDS tuple literal, read without importing the repo."""
    tree = _parse(root / "src/repro/obs/events.py")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "EVENT_KINDS":
                return {elt.value for elt in node.value.elts
                        if isinstance(elt, ast.Constant)}
    raise SystemExit("EVENT_KINDS literal not found in src/repro/obs/events.py")


def _receiver_name(func):
    """Terminal attribute of an emit call's receiver, or None.

    ``self.events.emit`` -> "events"; ``log.emit`` -> "log";
    ``self.emit`` -> "self" (minicc's asm emitter: not an event log).
    """
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def check_event_kinds(root: Path, kinds) -> list:
    """Rule 1: literal kinds at event-log emit sites are EVENT_KINDS."""
    problems = []
    for path in sorted((root / "src").rglob("*.py")):
        tree = _parse(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _receiver_name(node.func) not in _EMIT_RECEIVERS:
                continue
            if not node.args:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if first.value not in kinds:
                    problems.append(
                        f"{path.relative_to(root)}:{node.lineno}: "
                        f"emit kind {first.value!r} is not in EVENT_KINDS")
    return problems


def _contains_approved_producer(node) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name) and func.id in _APPROVED_PRODUCERS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _APPROVED_PRODUCERS:
            return True
    return False


def _blessed_names(scope) -> set:
    """Locals in *scope* that hold an approved JSON document."""
    blessed = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _contains_approved_producer(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    blessed.add(target.id)
        # doc.setdefault("schema", ...): the document declares its own
        # schema key, which is the envelope contract's essential part.
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setdefault"
                and isinstance(node.func.value, ast.Name)
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "schema"):
            blessed.add(node.func.value.id)
    return blessed


def check_cli_envelopes(root: Path) -> list:
    """Rule 2: every _print_json feed derives from an approved producer."""
    path = root / "src/repro/cli.py"
    tree = _parse(path)
    problems = []
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        blessed = _blessed_names(scope)
        for node in ast.walk(scope):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "_print_json"):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if _contains_approved_producer(arg):
                continue
            if isinstance(arg, ast.Name) and arg.id in blessed:
                continue
            problems.append(
                f"{path.relative_to(root)}:{node.lineno}: _print_json fed "
                f"a document that does not come from envelope()/to_dict()/"
                f"to_json_doc() (in {scope.name})")
    return problems


def check_deterministic_paths(root: Path) -> list:
    """Rule 3: no wall-clock / unseeded randomness in pinned-output code."""
    files = []
    for rel in DETERMINISTIC_PATHS:
        target = root / rel
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.exists():
            files.append(target)
    problems = []
    for path in files:
        tree = _parse(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None)
            where = f"{path.relative_to(root)}:{node.lineno}"
            if (base_name, func.attr) in _WALLCLOCK:
                problems.append(
                    f"{where}: wall-clock call {base_name}.{func.attr}() "
                    f"in a deterministic path")
            elif base_name == "random" and func.attr in _UNSEEDED_RANDOM:
                problems.append(
                    f"{where}: unseeded random.{func.attr}() "
                    f"in a deterministic path")
            elif (base_name == "random" and func.attr == "Random"
                  and not node.args and not node.keywords):
                problems.append(
                    f"{where}: random.Random() without a seed "
                    f"in a deterministic path")
    return problems


def run_checks(root: Path) -> list:
    kinds = load_event_kinds(root)
    problems = []
    problems += check_event_kinds(root, kinds)
    problems += check_cli_envelopes(root)
    problems += check_deterministic_paths(root)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    problems = run_checks(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} invariant violation(s)")
        return 1
    print("invariants ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
