"""Orchestrates the analysis rules over one linked firmware image.

``RULE_GROUPS`` names the three static rule groups; the fourth analysis
(sweep correlation) lives in :mod:`repro.analyze.correlate` because it
needs a finished :class:`FaultReport` alongside the CFG -- the
:class:`~repro.api.session.Session` wires the two together.
"""

from typing import Optional, Sequence, Tuple

from repro.analyze.coverage import address_taken_entries, analyze_coverage
from repro.analyze.findings import AnalysisReport, AnalyzeError
from repro.analyze.regions import analyze_regions
from repro.analyze.stack import analyze_stack
from repro.cfg.recover import RecoveredCfg, recover_cfg

RULE_GROUPS = ("stack", "regions", "coverage")


def _check_rules(rules: Sequence[str]) -> Tuple[str, ...]:
    unknown = sorted(set(rules) - set(RULE_GROUPS))
    if unknown:
        raise AnalyzeError(f"unknown rule group(s) {', '.join(unknown)}; "
                           f"one of {', '.join(RULE_GROUPS)}")
    if not rules:
        raise AnalyzeError("no rule groups selected")
    return tuple(sorted(set(rules)))


def _indirect_callees(cfg: RecoveredCfg) -> Tuple[str, ...]:
    """Callee names the stack model admits at an indirect call site.

    The registered EILID table when the image carries one; otherwise
    the address-taken entries -- NOT ``recover_cfg``'s all-entries
    fallback, which contains ``__start`` and every caller and would
    manufacture call-graph cycles that flag benign firmware as
    recursive.
    """
    if cfg.indirect_targets_registered:
        addrs = cfg.indirect_targets
    else:
        addrs = address_taken_entries(cfg)
    return tuple(sorted(cfg.function_entries[addr] for addr in addrs
                        if addr in cfg.function_entries))


def analyze_cfg(cfg: RecoveredCfg, program, variant: str = "original",
                rules: Sequence[str] = RULE_GROUPS,
                stack_margin: int = 64,
                irq_nesting: int = 1) -> AnalysisReport:
    """Run the selected rule groups over an already recovered CFG."""
    selected = _check_rules(rules)
    report = AnalysisReport(name=cfg.name, variant=variant, rules=selected)
    report.stats.update({
        "insns": len(cfg.insns),
        "functions": len(cfg.functions),
        "blocks": sum(len(f.blocks) for f in cfg.functions.values()),
        "call_sites": len(cfg.call_sites),
        "indirect_targets": len(cfg.indirect_targets),
    })
    if "stack" in selected:
        findings, stats = analyze_stack(
            cfg, program, variant, _indirect_callees(cfg),
            stack_margin=stack_margin, irq_nesting=irq_nesting)
        report.extend(findings)
        report.stats.update(stats)
    if "regions" in selected:
        report.extend(analyze_regions(cfg, program))
    if "coverage" in selected:
        report.extend(analyze_coverage(cfg, program))
    return report.finalize()


def analyze_program(program, name: Optional[str] = None,
                    variant: str = "original",
                    rules: Sequence[str] = RULE_GROUPS,
                    stack_margin: int = 64,
                    irq_nesting: int = 1) -> AnalysisReport:
    """Recover the CFG and run the analyzer in one call."""
    cfg = recover_cfg(program, name=name)
    return analyze_cfg(cfg, program, variant=variant, rules=rules,
                       stack_margin=stack_margin, irq_nesting=irq_nesting)
