"""Rule 3: CFI-policy coverage lint over the recovered CFG.

Four checks, all about gaps between what the image *does* and what the
CFI policy / shadow-stack replayer can *vouch for*:

* **indirect-unregistered** -- the image performs indirect calls but
  carries no EILID call-table registrations, so ``recover_cfg`` fell
  back to the all-function-entries target set.  Every such call site
  is flagged: the over-wide set admits pointer bends to any function
  (the paper's acknowledged function-level-CFI limitation, made worse
  by the fallback).
* **rom-entry-bypass** -- a direct jump or call whose target lands
  inside the trusted ROM at anything other than a blessed entry point
  (``S_EILID_entry`` / ``S_CASU_update_copy``): the ROM-atomicity
  monitor resets on this at runtime; the lint catches it statically.
* **unreachable-block** -- basic blocks no path from the reset entry,
  any ISR handler, or any transfer target reaches.  Dead code is
  attack surface the policy still admits (its entries sit in the
  fallback target set).
* **dead-isr / unmatched-return** -- ``reti`` in a function no IVT
  vector points at (a handler that can never be dispatched), and
  ``ret`` in a function that is never called, never address-taken and
  not an ISR -- a return the shadow-stack replayer could never match
  to a pushed site.
"""

from typing import List, Set, Tuple

from repro.analyze.findings import Finding
from repro.cfg.recover import RecoveredCfg, TransferKind
from repro.isa.operands import AddrMode


def address_taken_entries(cfg: RecoveredCfg) -> Tuple[int, ...]:
    """Function entries whose address flows as *data* somewhere.

    The principled narrow indirect-target set: an indirect call can
    only reach a function whose address was materialised as a value
    (stored to memory or a register), never one merely named as a
    direct call target.  Mirrors ``recover_cfg``'s address-taken
    discovery, restricted to known function entries.
    """
    taken: Set[int] = set()
    for decoded in cfg.insns.values():
        if decoded.kind is not TransferKind.NONE:
            continue
        insn = decoded.insn
        for operand in (insn.src, insn.dst):
            if operand is None or operand.value is None:
                continue
            if operand.mode is not AddrMode.IMMEDIATE:
                continue
            if operand.value in cfg.function_entries:
                taken.add(operand.value)
    return tuple(sorted(taken))


def _rom_entry_points(program) -> Set[int]:
    from repro.eilid.trusted_sw import TrustedSoftware

    config = TrustedSoftware.rom_config_from_symbols(program.symbols)
    return set(config.entry_points)


def _reachable_blocks(cfg: RecoveredCfg) -> Set[int]:
    """Block starts reachable from the entry, handlers and call sites."""
    # Function-level reachability first: entry + handlers + every
    # direct callee + every indirect target (the admitted set).
    reachable_funcs: Set[str] = set()
    roots = [cfg.function_entries.get(cfg.entry)]
    roots += [cfg.function_entries.get(handler)
              for vector, handler in cfg.vectors.items()]
    roots += [cfg.function_entries.get(addr) for addr in cfg.indirect_targets]
    # A call returns to its fall-through address; when address-taken
    # discovery split a spurious "function" at that return site (the
    # EILID store_ra registration takes every return address), the
    # continuation is as reachable as the call itself.
    roots += [cfg.function_entries.get(site.return_addr)
              for site in cfg.call_sites]
    worklist = [name for name in roots if name]
    while worklist:
        name = worklist.pop()
        if name in reachable_funcs:
            continue
        reachable_funcs.add(name)
        worklist.extend(cfg.call_graph.get(name, ()))
        func = cfg.functions.get(name)
        if func is None:
            continue
        # Tail jumps leave the function without a call edge.
        for block in func.blocks.values():
            for successor in block.successors:
                if successor in cfg.function_entries \
                        and successor not in func.blocks:
                    worklist.append(cfg.function_entries[successor])

    # Block-level within each reachable function, seeded from its
    # entry block and from every transfer that targets it from outside.
    targeted: Set[int] = set()
    for decoded in cfg.insns.values():
        if decoded.target is not None:
            targeted.add(decoded.target)
        if decoded.kind in (TransferKind.CALL, TransferKind.CALL_INDIRECT):
            targeted.add(decoded.next_addr)  # the return resumes here
    reachable: Set[int] = set()
    for name in reachable_funcs:
        func = cfg.functions.get(name)
        if func is None:
            continue
        seeds = [func.entry]
        seeds += [start for start in func.blocks if start in targeted]
        stack = list(seeds)
        while stack:
            start = stack.pop()
            if start in reachable or start not in func.blocks:
                continue
            reachable.add(start)
            stack.extend(func.blocks[start].successors)
    return reachable


def analyze_coverage(cfg: RecoveredCfg, program) -> List[Finding]:
    findings: List[Finding] = []
    layout = program.layout

    # -- indirect calls vs the registered target set -----------------------
    indirect_sites = [site for site in cfg.call_sites if site.target is None]
    if indirect_sites and not cfg.indirect_targets_registered:
        taken = address_taken_entries(cfg)
        for site in indirect_sites:
            findings.append(Finding(
                rule="indirect-unregistered", severity="warn",
                message=(f"indirect call with no EILID call-table "
                         f"registration; policy fell back to all "
                         f"{len(cfg.indirect_targets)} function entries "
                         f"(address-taken set is {len(taken)})"),
                pc=site.addr, function=site.caller,
                evidence={"fallback_targets": len(cfg.indirect_targets),
                          "address_taken": list(taken)}))

    # -- transfers into the trusted ROM ------------------------------------
    rom_entries = _rom_entry_points(program)
    for addr in sorted(cfg.insns):
        decoded = cfg.insns[addr]
        if layout.in_secure_rom(addr) or decoded.target is None:
            continue
        if layout.in_secure_rom(decoded.target) \
                and decoded.target not in rom_entries:
            block, function = None, None
            func = cfg.function_at(addr)
            if func is not None:
                function = func.name
                for start, candidate in func.blocks.items():
                    if candidate.start <= addr <= candidate.end:
                        block = start
            findings.append(Finding(
                rule="rom-entry-bypass", severity="critical",
                message=(f"transfer into the trusted ROM at "
                         f"0x{decoded.target:04x}, bypassing the entry "
                         f"point(s) "
                         + ", ".join(f"0x{e:04x}" for e in sorted(rom_entries))),
                pc=addr, block=block, function=function,
                evidence={"target": decoded.target,
                          "entry_points": sorted(rom_entries)}))

    # -- unreachable blocks -------------------------------------------------
    reachable = _reachable_blocks(cfg)
    for func in cfg.functions.values():
        for start in sorted(func.blocks):
            if start not in reachable:
                block = func.blocks[start]
                findings.append(Finding(
                    rule="unreachable-block", severity="warn",
                    message=(f"basic block 0x{start:04x}.."
                             f"0x{block.end:04x} is unreachable from the "
                             f"entry, every ISR and every transfer target"),
                    pc=start, block=start, function=func.name,
                    evidence={"insns": len(block.insns)}))

    # -- dead ISRs and unmatched returns ------------------------------------
    handler_funcs = {cfg.function_entries.get(handler)
                     for handler in cfg.vectors.values()}
    called = {cfg.function_entries[site.target]
              for site in cfg.call_sites
              if site.target in cfg.function_entries}
    taken_names = {cfg.function_entries[addr]
                   for addr in address_taken_entries(cfg)}
    entry_name = cfg.function_entries.get(cfg.entry)
    for func in cfg.functions.values():
        rets = [d for b in func.blocks.values() for d in b.insns
                if d.kind is TransferKind.RET]
        retis = [d for b in func.blocks.values() for d in b.insns
                 if d.kind is TransferKind.RETI]
        if retis and func.name not in handler_funcs \
                and func.name != entry_name:
            findings.append(Finding(
                rule="dead-isr", severity="warn",
                message=(f"{func.name} ends in reti but no IVT vector "
                         f"dispatches to it: a handler that can never run"),
                pc=retis[0].addr, function=func.name,
                evidence={"vectors": sorted(v for v in cfg.vectors
                                            if v != 15)}))
        if rets and func.name not in called \
                and func.name not in taken_names \
                and func.name not in handler_funcs \
                and func.name != entry_name:
            findings.append(Finding(
                rule="unmatched-return", severity="warn",
                message=(f"{func.name} returns but is never called or "
                         f"address-taken: the shadow-stack replayer could "
                         f"never match this return"),
                pc=rets[0].addr, function=func.name,
                evidence={}))
    return findings
