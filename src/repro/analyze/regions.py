"""Rule 2: statically resolvable stores into protected regions.

Walks every decoded instruction and resolves absolute-mode destinations
(``mov ..., &addr``) against the memory layout: stores into PMEM, the
IVT, or the secure banks from *untrusted* code (anything outside the
secure ROM) are exactly what CASU's runtime monitors would trip -- so
they are critical findings at lint time, before the image ever runs.
Reads of the secure DMEM bank (shadow stack / call table) from
untrusted code are flagged on the same rule the hardware enforces.

``mov ..., pc``-style dispatch through a register or memory cell
(``TransferKind.JUMP_INDIRECT``) has no statically resolvable target
set at all -- the trace replayer rejects such edges, so the lint
surfaces each site as a warning.
"""

from typing import List

from repro.analyze.findings import Finding
from repro.cfg.recover import RecoveredCfg, TransferKind
from repro.isa.opcodes import Format
from repro.isa.operands import AddrMode

# Format II mnemonics that read-modify-write their operand in place.
_RMW_SINGLE = {"rrc", "rra", "swpb", "sxt"}


def _locate(cfg: RecoveredCfg, addr: int):
    """(block_start, function_name) for an instruction address."""
    for func in cfg.functions.values():
        for block in func.blocks.values():
            if block.start <= addr <= block.end:
                return block.start, func.name
    return None, None


def _writes_operand(insn) -> bool:
    name = insn.opcode.mnemonic
    if name in _RMW_SINGLE:
        return True
    return insn.opcode.writes_dest and insn.opcode.format is Format.DOUBLE


def analyze_regions(cfg: RecoveredCfg, program) -> List[Finding]:
    layout = program.layout
    findings: List[Finding] = []
    for addr in sorted(cfg.insns):
        decoded = cfg.insns[addr]
        if layout.in_secure_rom(addr):
            continue  # the trusted ROM legitimately touches all banks
        insn = decoded.insn
        block, function = None, None

        def finding(rule, severity, message, **evidence):
            nonlocal block, function
            if block is None:
                block, function = _locate(cfg, addr)
            findings.append(Finding(
                rule=rule, severity=severity, message=message, pc=addr,
                block=block, function=function, evidence=evidence))

        dst = insn.dst
        if (dst is not None and dst.mode is AddrMode.ABSOLUTE
                and _writes_operand(insn)):
            target = dst.value
            if layout.ivt.start <= target <= layout.ivt.end:
                vector = (target - layout.ivt.start) // 2
                finding("ivt-write", "critical",
                        f"store to interrupt vector {vector} "
                        f"(&0x{target:04x}) rewrites the dispatch table",
                        target=target, vector=vector)
            elif layout.in_pmem(target):
                finding("pmem-write", "critical",
                        f"store to program memory &0x{target:04x} from "
                        f"untrusted code (W^X / immutability violation)",
                        target=target)
            elif layout.in_secure_dmem(target):
                finding("secure-ram-write", "critical",
                        f"store to the secure DMEM bank &0x{target:04x} "
                        f"(shadow stack / call table) from untrusted code",
                        target=target)
            elif layout.in_secure_rom(target):
                finding("rom-write", "critical",
                        f"store into the trusted ROM &0x{target:04x}",
                        target=target)
        src = insn.src
        if src is not None and src.mode is AddrMode.ABSOLUTE:
            source = src.value
            if layout.in_secure_dmem(source):
                finding("secure-ram-read", "critical",
                        f"read of the secure DMEM bank &0x{source:04x} "
                        f"from untrusted code",
                        source=source)
        if decoded.kind is TransferKind.JUMP_INDIRECT:
            finding("indirect-jump-unresolved", "warn",
                    f"{insn.opcode.mnemonic} into PC has no statically "
                    f"resolvable target set; the trace replayer rejects "
                    f"this edge",
                    mnemonic=insn.opcode.mnemonic)
    return findings
