"""Rule 1: interprocedural worst-case stack bounds.

Folds per-instruction stack effects (push/pop/call/ret/reti plus
``add/sub #N, sp`` frame adjustments) over each function's block CFG
with a max-dataflow pass, then composes functions over the call graph:
the worst depth at a call site is the local depth plus the pushed
return address plus the callee's own worst case.  Interrupts add the
hardware's PC+SR push plus the deepest handler, ``irq_nesting`` times.

Unbounded shapes -- recursive call cycles and loops whose net stack
effect is negative -- are findings in their own right; bounded firmware
is checked against the RAM floor (the end of the linked data sections)
and, for EILID-instrumented images, against the shadow-stack capacity
the secure DMEM bank can hold.

Indirect call sites use the EILID-registered target set when the image
carries one, falling back to the *address-taken* entries (the classic
binary-CFI refinement) -- deliberately narrower than ``recover_cfg``'s
all-entries fallback, which would manufacture call-graph cycles
through ``__start``.
"""

from typing import Dict, Optional, Tuple

from repro.analyze.findings import Finding
from repro.cfg.recover import RecoveredCfg, TransferKind
from repro.isa.operands import AddrMode
from repro.isa.registers import SP

# Dataflow divergence guard: no 64 KB device nests this deep.
_DEPTH_CAP = 0x20000
_UNBOUNDED = (None, None)


def _sp_adjust(insn) -> Optional[int]:
    """Signed stack-pointer delta for ``add/sub #N, sp`` style insns."""
    dst = insn.dst
    if dst is None or dst.mode is not AddrMode.REGISTER or dst.reg != SP:
        return None
    src = insn.src
    if src is None or src.mode not in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
        return 0  # mov r4, sp etc.: untracked, treated as no-op
    value = src.value
    signed = value - 0x10000 if value >= 0x8000 else value
    name = insn.opcode.mnemonic
    if name == "add":
        return signed
    if name == "sub":
        return -signed
    if name == "mov":
        # SP re-initialisation (crt0): depth resets to zero.
        return "reset"
    return 0


class _StackModel:
    """Memoised per-function worst cases over the call graph."""

    def __init__(self, cfg: RecoveredCfg, indirect_callees: Tuple[str, ...]):
        self.cfg = cfg
        self.indirect_callees = indirect_callees
        # fname -> (worst_bytes, worst_call_nesting); (None, None) when
        # unbounded.
        self.memo: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        self._visiting = set()
        self.findings = []
        self._flagged = set()

    def _flag(self, rule: str, func, message: str, **evidence):
        if (rule, func.name) in self._flagged:
            return
        self._flagged.add((rule, func.name))
        self.findings.append(Finding(
            rule=rule, severity="critical", message=message,
            pc=func.entry, block=func.entry, function=func.name,
            evidence=evidence))

    def worst(self, fname: str):
        if fname in self.memo:
            return self.memo[fname]
        if fname in self._visiting:
            return _UNBOUNDED  # call cycle: the caller flags it
        func = self.cfg.functions.get(fname)
        if func is None or not func.blocks:
            return 0, 0
        self._visiting.add(fname)
        try:
            result = self._walk(func)
        finally:
            self._visiting.discard(fname)
        self.memo[fname] = result
        return result

    def _callee_worst(self, func, site_names, pc):
        """Max (bytes, nest) over a call site's possible callees."""
        worst_bytes = worst_nest = 0
        for callee in site_names:
            if callee in self._visiting:
                self._flag(
                    "stack-recursion", func,
                    f"call cycle through {callee}; worst-case stack "
                    f"depth is unbounded",
                    cycle_member=callee, call_pc=pc)
                return _UNBOUNDED
            bytes_, nest = self.worst(callee)
            if bytes_ is None:
                return _UNBOUNDED
            worst_bytes = max(worst_bytes, bytes_)
            worst_nest = max(worst_nest, nest)
        return worst_bytes, worst_nest

    def _walk(self, func):
        """Max-dataflow over one function's blocks; None = unbounded."""
        entries = self.cfg.function_entries
        in_depth: Dict[int, int] = {func.entry: 0}
        worklist = [func.entry]
        worst_bytes = 0
        worst_nest = 0
        while worklist:
            start = worklist.pop()
            cur = in_depth[start]
            block = func.blocks.get(start)
            if block is None:
                continue
            for decoded in block.insns:
                kind = decoded.kind
                insn = decoded.insn
                name = insn.opcode.mnemonic
                if kind in (TransferKind.CALL, TransferKind.CALL_INDIRECT):
                    if kind is TransferKind.CALL:
                        callees = ()
                        if decoded.target in entries:
                            callees = (entries[decoded.target],)
                    else:
                        callees = self.indirect_callees
                    sub_bytes, sub_nest = self._callee_worst(
                        func, callees, decoded.addr)
                    if sub_bytes is None:
                        return _UNBOUNDED
                    worst_bytes = max(worst_bytes, cur + 2 + sub_bytes)
                    worst_nest = max(worst_nest, 1 + sub_nest)
                    # The callee unwinds its frame and the return pops:
                    # net effect on the caller's depth is zero.
                elif kind is TransferKind.RET:
                    cur -= 2
                elif kind is TransferKind.RETI:
                    cur -= 4
                elif name == "push":
                    cur += 2
                elif name == "mov" and insn.src is not None \
                        and insn.src.mode is AddrMode.AUTOINC \
                        and insn.src.reg == SP:
                    cur -= 2  # pop rN
                else:
                    delta = _sp_adjust(insn)
                    if delta == "reset":
                        cur = 0
                    elif delta:
                        cur -= delta  # sp += delta shrinks the depth
                worst_bytes = max(worst_bytes, cur)
                if worst_bytes > _DEPTH_CAP:
                    self._flag(
                        "stack-unbounded", func,
                        "a loop grows the stack on every iteration; "
                        "worst-case depth diverges",
                        block=block.start)
                    return _UNBOUNDED
            terminator = block.insns[-1] if block.insns else None
            for successor in block.successors:
                if successor in func.blocks:
                    if in_depth.get(successor, -1) < cur:
                        in_depth[successor] = cur
                        worklist.append(successor)
                elif (terminator is not None
                      and terminator.kind is TransferKind.JUMP
                      and successor in entries):
                    # Tail jump into another function (the shim -> ROM
                    # pattern): its depth stacks on top of ours, with
                    # no pushed return address.
                    sub_bytes, sub_nest = self._callee_worst(
                        func, (entries[successor],), terminator.addr)
                    if sub_bytes is None:
                        return _UNBOUNDED
                    worst_bytes = max(worst_bytes, cur + sub_bytes)
                    worst_nest = max(worst_nest, sub_nest)
        return worst_bytes, worst_nest


def _data_floor(program, layout) -> int:
    """The first address the stack must not cross (end of static data)."""
    floor = layout.dmem.start
    for extent in program.sections:
        if extent.size > 0 and layout.in_dmem(extent.base):
            floor = max(floor, extent.end + 1)
    return floor


def analyze_stack(cfg: RecoveredCfg, program, variant: str,
                  indirect_callees: Tuple[str, ...],
                  stack_margin: int = 64, irq_nesting: int = 1):
    """Run the stack-bounds rule; returns (findings, stats)."""
    layout = program.layout
    model = _StackModel(cfg, indirect_callees)
    entry_name = cfg.function_entries.get(cfg.entry)
    main_bytes, main_nest = (model.worst(entry_name)
                             if entry_name else (0, 0))

    handler_bytes = handler_nest = 0
    deepest_handler = None
    for vector, handler in sorted(cfg.vectors.items()):
        if vector == 15 or handler not in cfg.function_entries:
            continue
        hname = cfg.function_entries[handler]
        bytes_, nest = model.worst(hname)
        if bytes_ is None:
            main_bytes = None
            break
        # Hardware interrupt entry pushes PC and SR (4 bytes).
        if 4 + bytes_ > handler_bytes:
            handler_bytes, handler_nest = 4 + bytes_, 1 + nest
            deepest_handler = hname

    findings = list(model.findings)
    stats = {}
    if main_bytes is not None:
        worst_total = main_bytes + irq_nesting * handler_bytes
        worst_nest = main_nest + irq_nesting * handler_nest
        floor = _data_floor(program, layout)
        lowest = layout.stack_top - worst_total
        stats = {"stack_worst_bytes": worst_total,
                 "stack_lowest_addr": lowest,
                 "stack_floor_addr": floor,
                 "call_nesting_worst": worst_nest}
        evidence = {"worst_bytes": worst_total, "lowest": lowest,
                    "floor": floor, "stack_top": layout.stack_top,
                    "irq_handler": deepest_handler,
                    "irq_nesting": irq_nesting}
        if lowest < floor:
            findings.append(Finding(
                rule="stack-overflow", severity="critical",
                message=(f"worst-case stack depth {worst_total} bytes "
                         f"drives SP to 0x{lowest & 0xFFFF:04x}, below the "
                         f"data floor 0x{floor:04x}"),
                function=entry_name, evidence=evidence))
        elif lowest - floor < stack_margin:
            findings.append(Finding(
                rule="stack-margin", severity="warn",
                message=(f"only {lowest - floor} bytes of stack headroom "
                         f"left above the data floor (margin {stack_margin})"),
                function=entry_name, evidence=evidence))
        capacity = layout.secure_dmem.size // 2
        if worst_nest > capacity:
            findings.append(Finding(
                rule="shadow-stack-overflow",
                severity="critical" if variant == "eilid" else "warn",
                message=(f"worst-case call nesting {worst_nest} exceeds the "
                         f"shadow-stack capacity of {capacity} entries"),
                function=entry_name,
                evidence={"nesting": worst_nest, "capacity": capacity}))
    return findings, stats
