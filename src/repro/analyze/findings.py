"""Typed findings and the deterministic analysis report.

A :class:`Finding` is one rule hit: rule id, severity, location
(pc/block/function where resolvable), a human message and a JSON-safe
``evidence`` dict.  An :class:`AnalysisReport` is the ordered set of
findings one analysis run produced over one firmware image, plus the
image stats the rules ran against.

Determinism is a contract, not an accident: findings sort on a total
key ``(rule, pc, function, message)``, evidence dicts hold only
JSON-safe values inserted in sorted order, and ``to_dict()`` carries
no wall-clock -- two runs over the same image serialise to identical
bytes, which is what lets fleets pin a report baseline per image.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

SEVERITIES = ("info", "warn", "critical")


class AnalyzeError(ReproError):
    """Static-analysis failure (bad rule name, unanalyzable image)."""


@dataclass(frozen=True)
class Finding:
    """One rule hit on one location of the analyzed image."""

    rule: str
    severity: str  # one of SEVERITIES
    message: str
    pc: Optional[int] = None  # instruction address, when resolvable
    block: Optional[int] = None  # enclosing basic-block start address
    function: Optional[str] = None  # enclosing function name
    evidence: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise AnalyzeError(f"unknown severity {self.severity!r}; "
                               f"one of {', '.join(SEVERITIES)}")

    @property
    def sort_key(self) -> Tuple:
        return (self.rule, self.pc if self.pc is not None else -1,
                self.function or "", self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "pc": self.pc,
            "block": self.block,
            "function": self.function,
            "evidence": {key: self.evidence[key]
                         for key in sorted(self.evidence)},
        }

    @staticmethod
    def from_dict(data: dict) -> "Finding":
        return Finding(
            rule=data["rule"],
            severity=data["severity"],
            message=data["message"],
            pc=data.get("pc"),
            block=data.get("block"),
            function=data.get("function"),
            evidence=dict(data.get("evidence", {})),
        )

    def render(self) -> str:
        where = ""
        if self.pc is not None:
            where = f" @0x{self.pc:04x}"
        if self.function:
            where += f" [{self.function}]"
        return f"{self.severity:>8}  {self.rule}{where}: {self.message}"


@dataclass
class AnalysisReport:
    """Every finding one analysis run produced, deterministically ordered."""

    name: str
    variant: str
    rules: Tuple[str, ...]  # the rules that actually ran, sorted
    findings: List[Finding] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def finalize(self) -> "AnalysisReport":
        """Impose the canonical ordering; idempotent."""
        self.findings.sort(key=lambda finding: finding.sort_key)
        return self

    # ---- aggregate queries -----------------------------------------------

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def criticals(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "critical"]

    @property
    def ok(self) -> bool:
        """Clean enough to enroll: no critical findings."""
        return not self.criticals

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    # ---- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        self.finalize()
        return {
            "name": self.name,
            "variant": self.variant,
            "rules": list(self.rules),
            "ok": self.ok,
            "counts": {severity: self.count(severity)
                       for severity in SEVERITIES},
            "findings": [finding.to_dict() for finding in self.findings],
            "stats": {key: self.stats[key] for key in sorted(self.stats)},
        }

    def render(self) -> str:
        self.finalize()
        lines = [f"analysis: {self.name} ({self.variant}) -- "
                 f"{len(self.findings)} findings "
                 f"({self.count('critical')} critical, "
                 f"{self.count('warn')} warn, {self.count('info')} info)"]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)
