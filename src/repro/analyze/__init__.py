"""Static analysis over recovered firmware CFGs.

Rule-based lint catching, before a device ever runs, the classes of
badness EILID/CASU otherwise catch at runtime: worst-case stack bounds
(:mod:`.stack`), stores into protected regions (:mod:`.regions`),
CFI-policy coverage gaps (:mod:`.coverage`), and the sweep-guided
coverage loop that turns fault-sweep escape clusters into proposed
policy tightenings (:mod:`.correlate`).
"""

from repro.analyze.correlate import (
    apply_cfi_patch,
    cluster_escapes,
    correlate_sweep,
)
from repro.analyze.coverage import address_taken_entries
from repro.analyze.findings import (
    SEVERITIES,
    AnalysisReport,
    AnalyzeError,
    Finding,
)
from repro.analyze.runner import RULE_GROUPS, analyze_cfg, analyze_program

__all__ = [
    "SEVERITIES",
    "RULE_GROUPS",
    "AnalysisReport",
    "AnalyzeError",
    "Finding",
    "address_taken_entries",
    "analyze_cfg",
    "analyze_program",
    "apply_cfi_patch",
    "cluster_escapes",
    "correlate_sweep",
]
