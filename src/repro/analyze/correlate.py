"""Rule 4: fault-sweep correlation -- the sweep-guided coverage loop.

Takes a finished :class:`~repro.faults.campaign.FaultReport`, clusters
its ``escape`` / ``silent-corruption`` sites by the basic block the
fault triggered in, correlates each cluster with the static findings
on that block, and emits **proposed CFI-policy tightenings** as
machine-applyable JSON patches:

* ``narrow-indirect-targets`` -- when the image runs with the
  all-function-entries fallback target set (no EILID call-table
  registrations) and faults escaped, propose narrowing the policy's
  indirect-target set to the *address-taken* entries.
  :func:`apply_cfi_patch` applies this to a :class:`CfiPolicy`; a
  re-run sweep grading escapes against the patched policy
  (``FaultCampaign(..., policy=...)``) turns bent-pointer escapes into
  replay detections.
* ``monitor-range`` -- when a cluster's block carries a region-write
  finding, propose the written range for runtime monitoring (a
  monitor-side change; not applyable to a CfiPolicy).

Everything is a pure function of (report, cfg, findings): same inputs,
byte-identical proposal JSON.
"""

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analyze.coverage import address_taken_entries
from repro.analyze.findings import AnalyzeError, Finding
from repro.cfg.policy import CfiPolicy
from repro.cfg.recover import RecoveredCfg

ESCAPE_OUTCOMES = ("escape", "silent-corruption")


def _block_of(cfg: RecoveredCfg, pc: int) -> Tuple[Optional[int], Optional[str]]:
    func = cfg.function_at(pc)
    if func is None:
        return None, None
    for start, block in func.blocks.items():
        if block.start <= pc <= block.end:
            return start, func.name
    return None, func.name


def cluster_escapes(report, cfg: RecoveredCfg) -> List[dict]:
    """Group escape/silent fault sites by (profile, basic block)."""
    buckets: Dict[Tuple[str, int], dict] = {}
    for profile in sorted(report.outcomes):
        for doc in report.outcomes[profile]:
            if doc["outcome"] not in ESCAPE_OUTCOMES:
                continue
            block, function = _block_of(cfg, doc["pc"])
            key = (profile, block if block is not None else -1)
            bucket = buckets.setdefault(key, {
                "profile": profile, "block": block, "function": function,
                "pcs": [], "fault_ids": [], "outcomes": {}})
            if doc["pc"] not in bucket["pcs"]:
                bucket["pcs"].append(doc["pc"])
            bucket["fault_ids"].append(doc["id"])
            bucket["outcomes"][doc["outcome"]] = \
                bucket["outcomes"].get(doc["outcome"], 0) + 1
    clusters = []
    for key in sorted(buckets):
        bucket = buckets[key]
        bucket["pcs"].sort()
        bucket["fault_ids"].sort()
        bucket["outcomes"] = {k: bucket["outcomes"][k]
                              for k in sorted(bucket["outcomes"])}
        clusters.append(bucket)
    return clusters


def correlate_sweep(report, cfg: RecoveredCfg,
                    findings: List[Finding]) -> dict:
    """Clusters + findings-per-cluster + proposed tightenings."""
    clusters = cluster_escapes(report, cfg)
    by_block: Dict[int, List[Finding]] = {}
    for finding in findings:
        if finding.block is not None:
            by_block.setdefault(finding.block, []).append(finding)

    indirect_sites = [site for site in cfg.call_sites if site.target is None]
    proposals: List[dict] = []
    seen_actions = set()
    for cluster in clusters:
        block = cluster["block"]
        related = by_block.get(block, []) if block is not None else []
        cluster["findings"] = [f.to_dict() for f in related]

        # A cluster on an over-wide indirect-target image: propose the
        # address-taken narrowing once, carrying every cluster that
        # motivated it as evidence.
        if (indirect_sites and not cfg.indirect_targets_registered
                and "narrow-indirect-targets" not in seen_actions):
            taken = address_taken_entries(cfg)
            if taken:
                seen_actions.add("narrow-indirect-targets")
                proposals.append({
                    "action": "narrow-indirect-targets",
                    "targets": list(taken),
                    "was": sorted(cfg.indirect_targets),
                    "reason": (f"escape cluster(s) on an image whose "
                               f"indirect-target set fell back to all "
                               f"{len(cfg.indirect_targets)} entries; "
                               f"narrow to the {len(taken)} address-taken "
                               f"entries"),
                })
        for finding in related:
            target = finding.evidence.get("target")
            if finding.rule.endswith("-write") and target is not None:
                key = ("monitor-range", target)
                if key in seen_actions:
                    continue
                seen_actions.add(key)
                proposals.append({
                    "action": "monitor-range",
                    "start": target, "end": target + 1,
                    "reason": (f"escape cluster overlaps a {finding.rule} "
                               f"finding at 0x{(finding.pc or 0):04x}"),
                })
    proposals.sort(key=lambda p: (p["action"], p.get("start", -1)))
    return {"clusters": clusters, "proposals": proposals}


def apply_cfi_patch(policy: CfiPolicy, patch: dict) -> CfiPolicy:
    """Apply one machine-readable tightening to a compiled policy."""
    action = patch.get("action")
    if action == "narrow-indirect-targets":
        targets = frozenset(int(t) for t in patch["targets"])
        if not targets:
            raise AnalyzeError("narrow-indirect-targets patch with an "
                               "empty target set would forbid every "
                               "indirect call")
        extra = targets - policy.indirect_targets
        if extra:
            raise AnalyzeError(
                "patch targets "
                + ", ".join(f"0x{t:04x}" for t in sorted(extra))
                + " are not in the policy's current set; a tightening "
                  "may only narrow")
        return replace(policy, indirect_targets=targets,
                       indirect_from_table=True)
    raise AnalyzeError(f"patch action {action!r} is not applyable to a "
                       f"CFI policy (monitor-side actions configure the "
                       f"hardware monitor instead)")
