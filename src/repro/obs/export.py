"""Metrics exporters: Prometheus text format and JSON snapshots.

The bridge from the in-process :class:`~repro.obs.metrics.
MetricsRegistry` to anything outside it.  Two formats, one source of
truth (``registry.snapshot()``):

* :func:`to_prometheus` -- the Prometheus text exposition format
  (``# TYPE`` lines plus ``name value`` samples).  Counters and
  gauges map directly; histograms export as summaries
  (``_count``/``_sum``) plus ``_min``/``_max``/``_mean`` gauges,
  which is everything the count/total/min/max histogram carries.
  Metric names are prefixed (``eilid_`` by default) and sanitised to
  the Prometheus grammar.
* :func:`to_json_doc` -- the snapshot wrapped in the repo's usual
  schema/version envelope shape, for files and ``--json`` pipes.

:func:`parse_prometheus` is the matching line-format lint: it parses
an exposition back into ``{name: [(labels, value), ...]}`` and raises
:class:`~repro.obs.events.ObsError` on any malformed line -- CI runs
the export of a real campaign through it as a smoke check.

:func:`write_snapshot` writes either format atomically (tmp +
rename), which is what long campaigns use for periodic dumps: a
scraper never reads a half-written file.
"""

import json
import os
import re
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.events import ObsError

__all__ = ["to_prometheus", "to_json_doc", "parse_prometheus",
           "write_snapshot", "EXPORT_FORMATS"]

EXPORT_FORMATS = ("prom", "json")

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
# One exposition sample: name, optional {labels}, numeric value.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$")


def _prom_name(name: str, prefix: str) -> str:
    flat = _SANITISE.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def to_prometheus(snapshot: dict, prefix: str = "eilid") -> str:
    """Render a registry ``snapshot()`` as Prometheus text exposition."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        flat = _prom_name(name, prefix)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        flat = _prom_name(name, prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_prom_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        flat = _prom_name(name, prefix)
        lines.append(f"# TYPE {flat} summary")
        lines.append(f"{flat}_count {_prom_value(summary['count'])}")
        lines.append(f"{flat}_sum {_prom_value(summary['total'])}")
        for stat in ("min", "max", "mean"):
            lines.append(f"# TYPE {flat}_{stat} gauge")
            lines.append(f"{flat}_{stat} {_prom_value(summary[stat])}")
    return "\n".join(lines) + "\n"


def to_json_doc(snapshot: dict, source: Optional[str] = None) -> dict:
    """The snapshot in the repo's schema/version envelope shape."""
    doc = {"schema": "metrics-snapshot", "version": 1,
           "generated_ts": round(time.time(), 6), "metrics": snapshot}
    if source is not None:
        doc["source"] = source
    return doc


def parse_prometheus(text: str) -> Dict[str, List[Tuple[str, float]]]:
    """Lint/parse an exposition; raises :class:`ObsError` on bad lines.

    Returns ``{metric_name: [(labels_or_empty, value), ...]}``.  This
    is a *format* check (the thing a scraper's parser would reject),
    not a semantic one -- CI feeds real exports through it.
    """
    samples: Dict[str, List[Tuple[str, float]]] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ObsError(f"line {number}: malformed comment {raw!r}")
            if parts[1] == "TYPE" and not _NAME_OK.match(parts[2]):
                raise ObsError(f"line {number}: bad metric name {parts[2]!r}")
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ObsError(f"line {number}: malformed sample {raw!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ObsError(f"line {number}: non-numeric value "
                           f"{match.group('value')!r}") from None
        samples.setdefault(match.group("name"), []).append(
            (match.group("labels") or "", value))
    return samples


def write_snapshot(path: str, snapshot: dict, fmt: str = "json",
                   source: Optional[str] = None):
    """Atomically write *snapshot* to *path* in *fmt* (json|prom)."""
    if fmt not in EXPORT_FORMATS:
        raise ObsError(f"unknown export format {fmt!r}; "
                       f"one of {', '.join(EXPORT_FORMATS)}")
    if fmt == "prom":
        payload = to_prometheus(snapshot)
    else:
        payload = json.dumps(to_json_doc(snapshot, source=source),
                             indent=2, sort_keys=True) + "\n"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.replace(tmp_path, path)
