"""Observability: stored history, live streams, alerts, exporters.

Four pieces, all consumed by the fleet stack and the scenario API:

* :mod:`repro.obs.events`  -- the append-only event log (memory /
  JSONL / SQLite behind ``open_event_log``) that registry, protocol
  and campaign layers write their operational facts to, and that
  ``fleet history`` replays into timelines, rollups and trends.
* :mod:`repro.obs.bus`     -- the live half: every log fans its
  emissions out on an in-process :class:`EventBus`, and a second
  process follows the durable file with an ``open_event_tail``
  cursor (what ``fleet watch --follow`` polls).
* :mod:`repro.obs.alerts`  -- declarative rules over sliding event
  windows (quarantine-rate, wave-stall, violation-surge,
  replay-burst) firing ``alert`` events back into the same log.
* :mod:`repro.obs.metrics` / :mod:`repro.obs.export` -- the
  process-global :class:`MetricsRegistry` of counters / gauges /
  histograms plus causal span trees (near-zero disabled path), and
  its Prometheus / JSON exporters.
"""

from repro.obs.alerts import AlertEngine, AlertRule, build_rules, default_rules
from repro.obs.bus import EventBus, EventTail, open_event_tail
from repro.obs.events import (
    EVENT_KINDS,
    EventLog,
    JsonlEventLog,
    MemoryEventLog,
    ObsError,
    SqliteEventLog,
    open_event_log,
)
from repro.obs.export import (
    parse_prometheus,
    to_json_doc,
    to_prometheus,
    write_snapshot,
)
from repro.obs.metrics import METRICS, Histogram, MetricsRegistry, get_metrics

__all__ = [
    "EVENT_KINDS",
    "AlertEngine",
    "AlertRule",
    "EventBus",
    "EventLog",
    "EventTail",
    "Histogram",
    "JsonlEventLog",
    "METRICS",
    "MemoryEventLog",
    "MetricsRegistry",
    "ObsError",
    "SqliteEventLog",
    "build_rules",
    "default_rules",
    "get_metrics",
    "open_event_log",
    "open_event_tail",
    "parse_prometheus",
    "to_json_doc",
    "to_prometheus",
    "write_snapshot",
]
