"""Observability: the event-log telemetry DB and the metrics layer.

Two halves, both consumed by the fleet stack and the scenario API:

* :mod:`repro.obs.events`  -- the append-only event log (memory /
  JSONL / SQLite behind ``open_event_log``) that registry, protocol
  and campaign layers write their operational facts to, and that
  ``fleet history`` replays into timelines, rollups and trends.
* :mod:`repro.obs.metrics` -- the process-global
  :class:`MetricsRegistry` of counters/gauges/histograms plus
  context-manager spans, with a near-zero disabled path.
"""

from repro.obs.events import (
    EVENT_KINDS,
    EventLog,
    JsonlEventLog,
    MemoryEventLog,
    ObsError,
    SqliteEventLog,
    open_event_log,
)
from repro.obs.metrics import METRICS, Histogram, MetricsRegistry, get_metrics

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "Histogram",
    "JsonlEventLog",
    "METRICS",
    "MemoryEventLog",
    "MetricsRegistry",
    "ObsError",
    "SqliteEventLog",
    "get_metrics",
    "open_event_log",
]
