"""Process-global metrics: counters, gauges, histograms, spans.

One :class:`MetricsRegistry` per process (the module-level
:data:`METRICS`), fed by the fleet layers (telemetry folds its
aggregates in), the API session (phase spans), the campaign engine
(wave spans) and the interpreter (``run_steps`` batch boundaries --
never the per-step loop, see PR 3's hot-path contract).

The disabled path is deliberately near-zero: every recording call
starts with one attribute check on ``registry.enabled``, and
``span()`` returns a shared no-op context manager, so a registry
switched off costs one boolean test per *batch* of work.  That is the
property the ``bench_micro`` overhead gate pins.

Histograms are the lightweight kind a verifier needs for trend lines:
count / total / min / max (mean derives), not bucketed quantiles --
``snapshot()`` keeps them JSON-safe for the CLI and result envelopes.
"""

import threading
import time
from typing import Dict

__all__ = ["Histogram", "MetricsRegistry", "METRICS", "get_metrics"]


class Histogram:
    """Running summary of one observed series (durations, batch sizes)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float):
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
        }


class _NullSpan:
    """The shared disabled-path span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Times one block and folds it into ``<name>.ms``."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed_ms = (time.perf_counter() - self._started) * 1e3
        self._registry.observe(self._name + ".ms", elapsed_ms)
        return False


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with a cheap off switch.

    Every mutator is guarded by ``self.enabled`` *before* the lock is
    taken, so a disabled registry costs one attribute read per call --
    nothing allocates, nothing synchronises.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ---- recording -------------------------------------------------------

    def inc(self, name: str, value: int = 1):
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float):
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float):
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def span(self, name: str):
        """A context manager timing its block into ``<name>.ms``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # ---- control ---------------------------------------------------------

    def enable(self, flag: bool = True):
        self.enabled = flag

    def reset(self):
        """Drop every series (tests and benchmarks isolate with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ---- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> dict:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram else Histogram().snapshot()

    def snapshot(self) -> dict:
        """A JSON-safe dump of every series (sorted for stable output)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {name: histogram.snapshot()
                               for name, histogram
                               in sorted(self._histograms.items())},
            }


# The process-global registry every layer records into.  Enabled by
# default: the fleet layers are instrumented at batch/wave/exchange
# granularity, cheap enough to leave on (the floors in benchmarks/
# gate exactly that).
METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return METRICS
