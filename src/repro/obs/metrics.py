"""Process-global metrics: counters, gauges, histograms, spans.

One :class:`MetricsRegistry` per process (the module-level
:data:`METRICS`), fed by the fleet layers (telemetry folds its
aggregates in), the API session (phase spans), the campaign engine
(wave spans) and the interpreter (``run_steps`` batch boundaries --
never the per-step loop, see PR 3's hot-path contract).

The disabled path is deliberately near-zero: every recording call
starts with one attribute check on ``registry.enabled``, and
``span()`` returns a shared no-op context manager, so a registry
switched off costs one boolean test per *batch* of work.  That is the
property the ``bench_micro`` overhead gate pins.

Spans are causal: each carries an id, a parent id and a trace id (the
root span of its tree), so campaign -> wave -> device-offer timings
form a tree rather than a flat bag of histograms.  Parentage comes
from a per-thread span stack by default; code that crosses a thread
pool passes ``parent=`` explicitly (pool threads have empty stacks).
Finished spans land in a bounded ring -- overflow increments the
``obs.spans_dropped`` counter instead of growing without bound -- and
:meth:`MetricsRegistry.merge` stitches a worker process's snapshot
into the parent registry, remapping span ids and re-rooting the
worker's root spans under a parent-side span (the shard wire format's
other half).

Histograms are the lightweight kind a verifier needs for trend lines:
count / total / min / max (mean derives), not bucketed quantiles --
``snapshot()`` keeps them JSON-safe for the CLI and result envelopes.
"""

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["Histogram", "MetricsRegistry", "METRICS", "get_metrics",
           "SPAN_RING_CAPACITY"]

# Finished spans kept per registry; enough for a full campaign's wave
# and shard spans plus the per-device tail of the last few waves.
SPAN_RING_CAPACITY = 4096


class Histogram:
    """Running summary of one observed series (durations, batch sizes)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float):
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge_snapshot(self, snap: dict):
        """Fold another histogram's ``snapshot()`` dict into this one."""
        count = snap.get("count", 0)
        if not count:
            return
        self.count += count
        self.total += snap.get("total", 0.0)
        if snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] > self.max:
            self.max = snap["max"]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
        }


class _NullSpan:
    """The shared disabled-path span: enter/exit do nothing."""

    __slots__ = ()

    id = None
    trace = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Times one block into ``<name>.ms`` and records a span-tree node."""

    __slots__ = ("_registry", "_name", "_started", "_ts",
                 "id", "parent", "trace")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 parent: Optional[str] = None):
        self._registry = registry
        self._name = name
        self._started = 0.0
        self._ts = 0.0
        self.id = None
        # Explicit parent (a span id, or another span object) wins over
        # the thread-local stack -- the pool-thread escape hatch.
        self.parent = getattr(parent, "id", parent)
        self.trace = None

    def __enter__(self):
        self._registry._open_span(self)
        self._started = time.perf_counter()
        self._ts = time.time()
        return self

    def __exit__(self, *exc):
        elapsed_ms = (time.perf_counter() - self._started) * 1e3
        self._registry._close_span(self, elapsed_ms)
        return False


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with a cheap off switch.

    Every mutator is guarded by ``self.enabled`` *before* the lock is
    taken, so a disabled registry costs one attribute read per call --
    nothing allocates, nothing synchronises.
    """

    def __init__(self, enabled: bool = True,
                 span_capacity: int = SPAN_RING_CAPACITY):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: deque = deque(maxlen=span_capacity)
        self._span_seq = 0
        # Trace id per live/recent span id, so an explicit string
        # parent still lands its children in the right trace.  Bounded:
        # pruned to the newest half when it outgrows the span ring.
        self._trace_index: Dict[str, str] = {}
        self._tls = threading.local()

    # ---- recording -------------------------------------------------------

    def inc(self, name: str, value: int = 1):
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float):
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float):
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def span(self, name: str, parent: Optional[str] = None):
        """A context manager timing its block into ``<name>.ms``.

        The finished span also lands in the span ring with causal ids:
        parentage defaults to the enclosing ``span()`` on the same
        thread; pass ``parent=`` (a span id or span object) when the
        block runs on a pool thread that did not inherit the stack.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, parent=parent)

    # ---- span plumbing ---------------------------------------------------

    def _span_stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _open_span(self, span: _Span):
        stack = self._span_stack()
        if span.parent is None and stack:
            parent = stack[-1]
            span.parent = parent.id
            span.trace = parent.trace
        with self._lock:
            self._span_seq += 1
            span.id = f"s{self._span_seq}"
            if span.trace is None:
                if span.parent is not None:
                    span.trace = self._trace_index.get(span.parent)
                if span.trace is None:
                    span.trace = span.id  # a root starts its own trace
            self._index_trace(span.id, span.trace)
        stack.append(span)

    def _close_span(self, span: _Span, elapsed_ms: float):
        stack = self._span_stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; stay consistent
            stack.remove(span)
        doc = {"id": span.id, "parent": span.parent, "trace": span.trace,
               "name": span._name, "ts": round(span._ts, 6),
               "ms": round(elapsed_ms, 6)}
        with self._lock:
            histogram = self._histograms.get(span._name + ".ms")
            if histogram is None:
                histogram = self._histograms[span._name + ".ms"] = Histogram()
            histogram.observe(elapsed_ms)
            if len(self._spans) == self._spans.maxlen:
                self._counters["obs.spans_dropped"] = \
                    self._counters.get("obs.spans_dropped", 0) + 1
            self._spans.append(doc)

    def _index_trace(self, span_id: str, trace: str):
        # Caller holds self._lock.
        index = self._trace_index
        if len(index) >= 4 * (self._spans.maxlen or SPAN_RING_CAPACITY):
            survivors = sorted(index, key=lambda sid: int(sid[1:]))
            for stale in survivors[:len(survivors) // 2]:
                del index[stale]
        index[span_id] = trace

    # ---- merging (process-shard wire format) -----------------------------

    def merge(self, snapshot: dict, reroot_to: Optional[str] = None):
        """Fold a worker registry's ``snapshot()`` into this one.

        Counters add, gauges overwrite (latest wins), histograms fold
        their summaries, and spans are stitched in with fresh ids:
        worker-local parent links are remapped, and spans whose parent
        did not travel (the worker's roots) are re-parented onto
        *reroot_to* -- the parent-side span (e.g. the wave) that caused
        the shard to run -- joining its trace.
        """
        if not self.enabled or not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, snap in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge_snapshot(snap)
            spans = snapshot.get("spans", [])
            if not spans:
                return
            id_map = {}
            for doc in spans:
                self._span_seq += 1
                id_map[doc["id"]] = f"s{self._span_seq}"
            reroot_trace = (self._trace_index.get(reroot_to)
                            if reroot_to is not None else None)
            for doc in spans:
                new_id = id_map[doc["id"]]
                parent = doc.get("parent")
                if parent in id_map:
                    parent = id_map[parent]
                else:
                    parent = reroot_to  # worker root -> parent-side cause
                trace = id_map.get(doc.get("trace"))
                if reroot_trace is not None:
                    trace = reroot_trace
                elif trace is None:
                    trace = new_id
                stitched = dict(doc)
                stitched.update(id=new_id, parent=parent, trace=trace)
                self._index_trace(new_id, trace)
                if len(self._spans) == self._spans.maxlen:
                    self._counters["obs.spans_dropped"] = \
                        self._counters.get("obs.spans_dropped", 0) + 1
                self._spans.append(stitched)

    # ---- control ---------------------------------------------------------

    def enable(self, flag: bool = True):
        self.enabled = flag

    def reset(self):
        """Drop every series (tests and benchmarks isolate with this)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._trace_index.clear()
            self._span_seq = 0
            # Replace (not clear) the thread-local span stacks: a
            # forked pool worker inherits the forking thread's stack
            # of still-open parent spans, and parenting new spans onto
            # those stale ids would cross-link the merged tree.
            self._tls = threading.local()

    # ---- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> dict:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram else Histogram().snapshot()

    def spans(self, name: Optional[str] = None,
              trace: Optional[str] = None) -> List[dict]:
        """Finished spans, oldest first (filters are ANDed)."""
        with self._lock:
            return [dict(doc) for doc in self._spans
                    if (name is None or doc["name"] == name)
                    and (trace is None or doc["trace"] == trace)]

    def span_tree(self) -> List[dict]:
        """The recorded spans as a forest of ``children``-nested nodes.

        Spans whose parent fell out of the bounded ring surface as
        roots -- the tree never silently drops a recorded span.
        """
        spans = self.spans()
        nodes = {doc["id"]: dict(doc, children=[]) for doc in spans}
        roots = []
        for doc in spans:
            node = nodes[doc["id"]]
            parent = nodes.get(doc["parent"])
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def snapshot(self) -> dict:
        """A JSON-safe dump of every series (sorted for stable output)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {name: histogram.snapshot()
                               for name, histogram
                               in sorted(self._histograms.items())},
                "spans": [dict(doc) for doc in self._spans],
            }


# The process-global registry every layer records into.  Enabled by
# default: the fleet layers are instrumented at batch/wave/exchange
# granularity, cheap enough to leave on (the floors in benchmarks/
# gate exactly that).
METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return METRICS
