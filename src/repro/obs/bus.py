"""Live event fan-out: the in-process bus and cross-process tails.

PR 6 made the event log queryable after the fact; this module makes
it watchable while it happens, two ways:

* :class:`EventBus` -- every :class:`~repro.obs.events.EventLog`
  carries one.  ``emit()`` publishes each stored document to the
  bus's subscribers *after* releasing the log's lock, so a subscriber
  (the alert engine, a live renderer) may itself emit follow-up
  events without deadlocking.  A misbehaving subscriber never breaks
  emission: exceptions are swallowed and counted on ``bus.errors``.
  The no-subscriber path is one tuple truthiness test -- the fleet
  layers pay nothing for the capability when nobody is watching.

* Tail cursors -- a *second process* cannot share the bus, but it can
  follow the durable log file: :func:`open_event_tail` returns a
  cursor whose ``read()`` yields every newly durable event since the
  last call, in seq order, exactly once.  The JSONL tail holds a read
  handle and buffers a torn final line until its newline arrives; the
  SQLite tail opens the database read-only and sees whatever the
  writer has committed (``flush()`` -- the same durability points the
  registry uses).  ``fleet watch --follow`` polls one of these.
"""

import json
import os
import sqlite3
import threading
from typing import Callable, List, Optional

__all__ = ["EventBus", "EventTail", "JsonlTail", "SqliteTail",
           "open_event_tail"]


class _Subscription:
    """Opaque handle returned by :meth:`EventBus.subscribe`."""

    __slots__ = ("callback", "kinds")

    def __init__(self, callback: Callable[[dict], None],
                 kinds: Optional[frozenset]):
        self.callback = callback
        self.kinds = kinds


class EventBus:
    """Synchronous fan-out of event documents to in-process subscribers.

    Subscription changes copy the subscriber tuple under a lock;
    ``publish`` reads the tuple without locking (tuples are immutable,
    a concurrent subscribe simply lands on the next publish).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._subscribers: tuple = ()
        # Subscriber exceptions land here instead of on the emitter.
        self.errors = 0

    def subscribe(self, callback: Callable[[dict], None],
                  kinds=None) -> _Subscription:
        """Register *callback* for every event (or just *kinds*)."""
        subscription = _Subscription(
            callback, frozenset(kinds) if kinds is not None else None)
        with self._lock:
            self._subscribers = self._subscribers + (subscription,)
        return subscription

    def unsubscribe(self, subscription: _Subscription):
        with self._lock:
            self._subscribers = tuple(entry for entry in self._subscribers
                                      if entry is not subscription)

    def __len__(self):
        return len(self._subscribers)

    def publish(self, doc: dict):
        subscribers = self._subscribers
        if not subscribers:
            return
        for subscription in subscribers:
            if subscription.kinds is not None \
                    and doc["kind"] not in subscription.kinds:
                continue
            try:
                subscription.callback(doc)
            except Exception:
                self.errors += 1


class EventTail:
    """Cursor contract: ``read()`` returns newly durable events once.

    ``last_seq`` is the resume token -- persist it and reopen with
    ``open_event_tail(path, since_seq=last_seq)`` to continue without
    duplicates after a restart.
    """

    def __init__(self, path: str, since_seq: int = 0):
        self.path = path
        self.last_seq = since_seq

    def read(self) -> List[dict]:
        raise NotImplementedError

    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class JsonlTail(EventTail):
    """Follow a JSONL event log by file position.

    The writer appends whole lines and flushes per event, but a read
    can still race the write syscall: any trailing partial line is
    buffered here until its newline shows up in a later read, so a
    torn tail is delivered exactly once -- complete -- or not yet.
    """

    def __init__(self, path: str, since_seq: int = 0):
        super().__init__(path, since_seq)
        self._handle = None
        self._partial = ""

    def read(self) -> List[dict]:
        if self._handle is None:
            try:
                self._handle = open(self.path, "r", encoding="utf-8")
            except FileNotFoundError:
                return []  # writer has not created the log yet
        chunk = self._handle.read()
        if not chunk and not self._partial:
            return []
        buffered = self._partial + chunk
        lines = buffered.split("\n")
        self._partial = lines.pop()  # "" on a newline-terminated read
        docs = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn line the writer abandoned (kill)
            if not isinstance(doc, dict) or "seq" not in doc:
                continue
            if doc["seq"] <= self.last_seq:
                continue  # already delivered (reopen overlap)
            self.last_seq = doc["seq"]
            docs.append(doc)
        return docs

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SqliteTail(EventTail):
    """Follow a SQLite event log read-only, by indexed seq ranges.

    Opens lazily with ``mode=ro`` so the tail can never take a write
    lock from the campaign; a locked or not-yet-initialised database
    reads as "nothing new yet" and the next poll retries.
    """

    def __init__(self, path: str, since_seq: int = 0):
        super().__init__(path, since_seq)
        self._conn = None

    def read(self) -> List[dict]:
        if self._conn is None:
            if not os.path.exists(self.path):
                return []
            try:
                self._conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True,
                    check_same_thread=False)
            except sqlite3.OperationalError:
                return []
        try:
            rows = self._conn.execute(
                "SELECT doc FROM events WHERE seq > ? ORDER BY seq",
                (self.last_seq,)).fetchall()
        except sqlite3.OperationalError:
            return []  # writer holds the lock or schema not created yet
        docs = []
        for (raw,) in rows:
            doc = json.loads(raw)
            if doc["seq"] <= self.last_seq:
                continue
            self.last_seq = doc["seq"]
            docs.append(doc)
        return docs

    def close(self):
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def open_event_tail(path: Optional[str], since_seq: int = 0) -> EventTail:
    """A follow cursor for the durable log at *path* (suffix dispatch
    mirrors :func:`~repro.obs.events.open_event_log`)."""
    from repro.obs.events import SQLITE_SUFFIXES, ObsError

    if path is None or path == ":memory:":
        raise ObsError("only durable event logs (jsonl/sqlite paths) can "
                       "be tailed from another process")
    if path.endswith(SQLITE_SUFFIXES):
        return SqliteTail(path, since_seq=since_seq)
    return JsonlTail(path, since_seq=since_seq)
