"""Declarative alert rules over sliding windows of fleet events.

The operator-facing layer of the event stream: an
:class:`AlertEngine` subscribes to an event log's bus (or replays a
stored log offline) and evaluates every rule against each incoming
document.  A rule that trips produces an ``alert`` event -- written
into the *same* log, tagged with the campaign it fired in -- so
alerts are replayable history exactly like the facts that caused
them, and ``fleet watch`` streams them interleaved with those facts.

Rules window on **event timestamps**, not wall-clock reads, so a
replay of last week's log fires the same alerts the live run did.
Each rule fires at most once per (rule, campaign): an operator wants
"this campaign's quarantine rate spiked", not one alert per
quarantined device.

The four built-ins mirror the failure modes the protocol layer can
produce (see ``fleet/protocol.py``):

* ``quarantine-rate``  -- quarantines / offers over the window
  crossed the threshold: a tampered package burst or a compromised
  path in the rollout.
* ``wave-stall``       -- no wave committed within N x the median
  inter-wave gap: the campaign wedged (worker pool death, store
  livelock) without halting.
* ``violation-surge``  -- the sum of folded violation deltas over the
  window crossed the threshold: fleet-wide memory-safety faults.
* ``replay-burst``     -- several quarantines whose reason is replay/
  forged-MAC shaped inside the window: an active on-path attacker,
  not an isolated flake.

Thresholds come from ``FleetSpec.alerts`` via :func:`build_rules`.
A disabled engine never subscribes at all, so the no-alerting path
costs the emitter nothing beyond the bus's empty-tuple check.
"""

import statistics
from collections import deque
from typing import Dict, List, Optional

__all__ = ["AlertEngine", "AlertRule", "QuarantineRateRule",
           "WaveStallRule", "ViolationSurgeRule", "ReplayBurstRule",
           "RULE_REGISTRY", "REPLAY_REASONS", "default_rules",
           "build_rules"]

# Quarantine reasons that smell like an active on-path attacker
# rather than a single bad device (the protocol's forgery verdicts).
REPLAY_REASONS = frozenset({"replay", "bad-mac", "bad-ack-mac",
                            "stale-report"})


class AlertRule:
    """One windowed predicate over the event stream.

    Subclasses set :attr:`name` and implement :meth:`observe`, which
    returns a JSON-safe context dict when the rule trips on this
    document (the engine handles once-per-campaign latching) and
    ``None`` otherwise.  State is keyed per campaign so concurrent or
    successive campaigns evaluate independently.
    """

    name = "abstract"
    default_severity = "warning"

    def __init__(self, threshold: float, window: float = 30.0,
                 min_events: int = 3, severity: Optional[str] = None):
        if window <= 0:
            raise ValueError("window must be > 0 seconds")
        if min_events < 1:
            raise ValueError("min_events must be >= 1")
        self.threshold = threshold
        self.window = window
        self.min_events = min_events
        self.severity = severity or self.default_severity

    def observe(self, doc: dict) -> Optional[dict]:
        raise NotImplementedError

    def _prune(self, entries: deque, now: float):
        while entries and now - entries[0][0] > self.window:
            entries.popleft()

    def describe(self) -> dict:
        return {"rule": self.name, "severity": self.severity,
                "threshold": self.threshold, "window": self.window,
                "min_events": self.min_events}


class QuarantineRateRule(AlertRule):
    """Quarantines per offer over the window crossed the threshold."""

    name = "quarantine-rate"
    default_severity = "critical"

    def __init__(self, threshold: float = 0.05, window: float = 30.0,
                 min_events: int = 3, severity: Optional[str] = None):
        super().__init__(threshold, window, min_events, severity)
        self._offers: Dict[Optional[str], deque] = {}
        self._quarantines: Dict[Optional[str], deque] = {}

    def observe(self, doc: dict) -> Optional[dict]:
        kind = doc["kind"]
        if kind not in ("offer", "quarantine"):
            return None
        campaign = doc["campaign"]
        offers = self._offers.setdefault(campaign, deque())
        quarantines = self._quarantines.setdefault(campaign, deque())
        now = doc["ts"]
        (offers if kind == "offer" else quarantines).append((now, doc["seq"]))
        self._prune(offers, now)
        self._prune(quarantines, now)
        if len(quarantines) < self.min_events or not offers:
            return None
        rate = len(quarantines) / len(offers)
        if rate < self.threshold:
            return None
        return {
            "rate": round(rate, 4),
            "quarantined": len(quarantines),
            "offered": len(offers),
            "message": (f"quarantine rate {100 * rate:.1f}% "
                        f"({len(quarantines)}/{len(offers)} offers in "
                        f"{self.window:g}s) >= "
                        f"{100 * self.threshold:.1f}%"),
        }


class WaveStallRule(AlertRule):
    """No wave-commit within ``threshold`` x the median inter-wave gap.

    Needs at least ``min_events`` committed waves to estimate the
    campaign's cadence; after that, *any* later event arriving more
    than ``threshold * median_gap`` after the last commit trips it --
    the campaign is demonstrably still alive (events flow) but its
    waves stopped landing.
    """

    name = "wave-stall"
    default_severity = "warning"

    def __init__(self, threshold: float = 3.0, window: float = 300.0,
                 min_events: int = 2, severity: Optional[str] = None):
        super().__init__(threshold, window, min_events, severity)
        self._last_commit: Dict[Optional[str], float] = {}
        self._gaps: Dict[Optional[str], List[float]] = {}
        self._ended: set = set()

    def observe(self, doc: dict) -> Optional[dict]:
        campaign = doc["campaign"]
        if campaign is None or campaign in self._ended:
            return None
        kind = doc["kind"]
        now = doc["ts"]
        if kind == "campaign-end":
            self._ended.add(campaign)
            return None
        if kind == "wave-commit":
            last = self._last_commit.get(campaign)
            if last is not None:
                self._gaps.setdefault(campaign, []).append(now - last)
            self._last_commit[campaign] = now
            return None
        gaps = self._gaps.get(campaign, ())
        if len(gaps) < self.min_events:
            return None
        median_gap = statistics.median(gaps)
        stalled_for = now - self._last_commit[campaign]
        if median_gap <= 0 or stalled_for <= self.threshold * median_gap:
            return None
        return {
            "stalled_s": round(stalled_for, 6),
            "median_wave_s": round(median_gap, 6),
            "waves": len(gaps) + 1,
            "message": (f"no wave committed for {stalled_for:.2f}s "
                        f"(> {self.threshold:g}x the {median_gap:.2f}s "
                        f"median wave time)"),
        }


class ViolationSurgeRule(AlertRule):
    """Summed violation deltas over the window crossed the threshold."""

    name = "violation-surge"
    default_severity = "critical"

    def __init__(self, threshold: float = 10, window: float = 30.0,
                 min_events: int = 1, severity: Optional[str] = None):
        super().__init__(threshold, window, min_events, severity)
        self._deltas: deque = deque()

    def observe(self, doc: dict) -> Optional[dict]:
        if doc["kind"] != "violation-delta":
            return None
        now = doc["ts"]
        count = sum(doc["data"].get("deltas", {}).values())
        self._deltas.append((now, count))
        self._prune(self._deltas, now)
        total = sum(count for _, count in self._deltas)
        if len(self._deltas) < self.min_events or total < self.threshold:
            return None
        return {
            "violations": total,
            "reports": len(self._deltas),
            "message": (f"{total} runtime violations across "
                        f"{len(self._deltas)} reports in "
                        f"{self.window:g}s >= {self.threshold:g}"),
        }


class ReplayBurstRule(AlertRule):
    """Several replay/forged-MAC quarantines inside one window."""

    name = "replay-burst"
    default_severity = "critical"

    def __init__(self, threshold: float = 3, window: float = 30.0,
                 min_events: int = 1, severity: Optional[str] = None):
        super().__init__(threshold, window, min_events, severity)
        self._hits: deque = deque()

    def observe(self, doc: dict) -> Optional[dict]:
        if doc["kind"] != "quarantine":
            return None
        reason = doc["data"].get("reason", "")
        if reason not in REPLAY_REASONS:
            return None
        now = doc["ts"]
        self._hits.append((now, reason))
        self._prune(self._hits, now)
        if len(self._hits) < max(self.threshold, self.min_events):
            return None
        reasons: Dict[str, int] = {}
        for _, hit_reason in self._hits:
            reasons[hit_reason] = reasons.get(hit_reason, 0) + 1
        return {
            "quarantines": len(self._hits),
            "reasons": reasons,
            "message": (f"{len(self._hits)} replay/forged-MAC "
                        f"quarantines in {self.window:g}s "
                        f"(>= {self.threshold:g}): active attacker"),
        }


RULE_REGISTRY = {
    QuarantineRateRule.name: QuarantineRateRule,
    WaveStallRule.name: WaveStallRule,
    ViolationSurgeRule.name: ViolationSurgeRule,
    ReplayBurstRule.name: ReplayBurstRule,
}


def default_rules() -> List[AlertRule]:
    """One of each built-in rule at its default threshold."""
    return [rule_cls() for rule_cls in RULE_REGISTRY.values()]


def build_rules(config: Optional[dict]) -> List[AlertRule]:
    """Rules from a ``FleetSpec.alerts``-shaped mapping.

    ``None`` -> every default rule.  Otherwise each key names a rule;
    its value is ``False`` (drop the rule), ``True``/``None`` (keep
    the defaults), a number (override the threshold) or a dict of
    constructor overrides (``threshold`` / ``window`` / ``min_events``
    / ``severity``).  Unnamed rules keep their defaults -- the config
    adjusts the panel, it does not have to restate it.
    """
    if config is None:
        return default_rules()
    rules: List[AlertRule] = []
    for name, rule_cls in RULE_REGISTRY.items():
        value = config.get(name, True)
        if value is False:
            continue
        if value is True or value is None:
            rules.append(rule_cls())
        elif isinstance(value, dict):
            rules.append(rule_cls(**value))
        else:
            rules.append(rule_cls(threshold=value))
    return rules


class AlertEngine:
    """Evaluate rules against an event stream; latch and log alerts.

    Live use: ``engine.attach(log)`` subscribes to the log's bus and
    every future emission is evaluated; a tripped rule appends an
    ``alert`` event to the same log (severity, rule context, human
    message) and remembers it on ``engine.fired``.  Offline use:
    ``engine.replay(log)`` runs the stored history through the same
    rules without writing anything -- what `fleet alerts` does to a
    log recorded without an engine.

    A disabled engine does not subscribe, so the emission hot path
    pays nothing for alerting that is switched off (the bench_micro
    gate pins exactly that).
    """

    def __init__(self, rules: Optional[List[AlertRule]] = None,
                 enabled: bool = True):
        self.rules = list(rules) if rules is not None else default_rules()
        self.enabled = enabled
        self.log = None
        self.fired: List[dict] = []
        self._latched: set = set()
        self._subscription = None

    # ---- wiring ----------------------------------------------------------

    def attach(self, log) -> "AlertEngine":
        """Subscribe to *log*'s bus; tripped rules emit into *log*."""
        self.log = log
        if self.enabled and self._subscription is None:
            self._subscription = log.bus.subscribe(self.observe)
        return self

    def detach(self):
        if self._subscription is not None and self.log is not None:
            self.log.bus.unsubscribe(self._subscription)
        self._subscription = None
        self.log = None

    # ---- evaluation ------------------------------------------------------

    def observe(self, doc: dict):
        """Evaluate one event document against every rule."""
        if not self.enabled or doc["kind"] == "alert":
            return  # never alert on alerts (self-feedback)
        for rule in self.rules:
            context = rule.observe(doc)
            if context is None:
                continue
            key = (rule.name, doc["campaign"])
            if key in self._latched:
                continue  # one alert per rule per campaign
            self._latched.add(key)
            payload = {"rule": rule.name, "severity": rule.severity,
                       "threshold": rule.threshold, **context}
            record = {"campaign": doc["campaign"], "ts": doc["ts"],
                      "trigger_seq": doc["seq"], **payload}
            self.fired.append(record)
            if self.log is not None:
                # Re-enters the log's emit() -- safe, because the bus
                # publishes outside the log lock and kind "alert" is
                # ignored above.
                self.log.emit("alert", campaign=doc["campaign"], **payload)

    def replay(self, log) -> List[dict]:
        """Run a stored log through the rules (no writes); return fired."""
        for doc in log.events():
            self.observe(doc)
        return self.fired
