"""Append-only event log: the fleet's longitudinal memory.

The registry, protocol and campaign layers emit one document per
operational fact -- a device enrolled, a heartbeat verified, a device
quarantined, an offer answered, a wave committed, a campaign started
or ended, a violation delta folded -- and the log replays them later:
per-device timelines, per-campaign rollups, cross-campaign trends.
One-shot aggregates (``FleetTelemetry``) answer "what happened this
process"; the event log answers "what happened to this fleet, ever".

Event documents are flat and JSON-safe::

    {"seq": 17, "ts": 1754556000.0, "kind": "attest",
     "device": "dev-00003", "campaign": null, "data": {...}}

``seq`` is a per-log monotonic counter (the replay order), ``ts`` is
wall-clock, ``campaign`` tags events belonging to one rollout
(campaign ids are minted by :meth:`EventLog.start_campaign`).

Three backends, one contract, mirroring ``fleet/store.py``:

* :class:`MemoryEventLog` -- a list; the default, zero I/O.
* :class:`JsonlEventLog`  -- one appended JSON line per event; loads
  tolerate a torn final line.
* :class:`SqliteEventLog` -- one indexed table, inserts batched until
  ``flush()`` commits.

``open_event_log(path)`` picks the backend exactly like
``open_store``: ``None``/``":memory:"`` -> memory, ``.db``/
``.sqlite``/``.sqlite3`` -> SQLite, anything else -> JSON lines.

Durability rides the registry's: :meth:`~repro.fleet.registry.
FleetRegistry.flush` flushes its event log in the same call, so every
registry durability point (per attest sweep, per campaign wave) is an
event-log durability point too.
"""

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.obs.bus import EventBus

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "JsonlEventLog",
    "MemoryEventLog",
    "ObsError",
    "SqliteEventLog",
    "open_event_log",
]


class ObsError(ReproError):
    """Event-log / metrics-layer failure."""


# The closed vocabulary of operational facts.  A closed set keeps the
# queries honest: a rollup can enumerate what it folds, and a typo'd
# kind fails at emit time instead of vanishing from every timeline.
EVENT_KINDS = (
    "enroll",
    "attest",
    "quarantine",
    "offer",
    "wave-commit",
    "campaign-start",
    "campaign-end",
    "violation-delta",
    "alert",
    "fault-inject",
    "fault-outcome",
    "analysis-finding",
)


class EventLog:
    """Backend contract + the query layer shared by every backend.

    Subclasses implement ``_append`` (store one document), ``_loaded``
    (the documents found at open, for seq recovery) and optionally
    override :meth:`events` with an indexed scan.  ``flush()`` must be
    a durability point: every event emitted before it survives a kill
    after it.
    """

    backend = "abstract"

    def __init__(self):
        self._lock = threading.Lock()
        self._seq = 0
        # The live half: every stored document also fans out to this
        # bus's subscribers (alert engine, watchers).  Publication
        # happens OUTSIDE self._lock so a subscriber may emit follow-up
        # events (an alert) without deadlocking the log.
        self.bus = EventBus()

    # ---- emission --------------------------------------------------------

    def emit(self, kind: str, device: Optional[str] = None,
             campaign: Optional[str] = None, **data) -> dict:
        """Append one event; returns the stored document."""
        if kind not in EVENT_KINDS:
            raise ObsError(f"unknown event kind {kind!r}; "
                           f"one of {', '.join(EVENT_KINDS)}")
        with self._lock:
            self._seq += 1
            doc = {"seq": self._seq, "ts": time.time(), "kind": kind,
                   "device": device, "campaign": campaign, "data": data}
            self._append(doc)
        self.bus.publish(doc)
        return doc

    def start_campaign(self, **data) -> str:
        """Mint a campaign id and emit its ``campaign-start`` event.

        Ids are derived from the start event's own sequence number
        (``c<seq>``), so they are unique per log and sort in start
        order across process restarts without any extra state.
        """
        with self._lock:
            self._seq += 1
            campaign_id = f"c{self._seq}"
            doc = {"seq": self._seq, "ts": time.time(),
                   "kind": "campaign-start", "device": None,
                   "campaign": campaign_id, "data": data}
            self._append(doc)
        self.bus.publish(doc)
        return campaign_id

    def _append(self, doc: dict):
        raise NotImplementedError

    # ---- lifecycle -------------------------------------------------------

    def flush(self):
        pass

    def close(self):
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ---- scanning --------------------------------------------------------

    def events(self, kind: Optional[str] = None, device: Optional[str] = None,
               campaign: Optional[str] = None,
               since: Optional[int] = None) -> List[dict]:
        """Every matching event in seq order (filters are ANDed)."""
        return [dict(doc) for doc in self._scan()
                if (kind is None or doc["kind"] == kind)
                and (device is None or doc["device"] == device)
                and (campaign is None or doc["campaign"] == campaign)
                and (since is None or doc["seq"] > since)]

    def _scan(self) -> Iterable[dict]:
        raise NotImplementedError

    def tail(self, since_seq: int = 0) -> List[dict]:
        """Every event with ``seq > since_seq``, in seq order.

        The in-process follow cursor: call with the last seq you saw
        and you get exactly the events you missed.  (A *different*
        process follows the durable file instead, via
        :func:`repro.obs.bus.open_event_tail`.)
        """
        return self.events(since=since_seq)

    def __len__(self):
        return len(self.events())

    # ---- queries ---------------------------------------------------------

    def device_timeline(self, device_id: str) -> List[dict]:
        """Every event about one device, oldest first."""
        return self.events(device=device_id)

    def device_rollup(self) -> Dict[str, dict]:
        """Per-device triage summary folded from the whole log.

        ``last_seen_ts`` is the newest event about the device,
        ``quarantine_reason`` the most recent quarantine's reason (None
        for healthy devices), ``campaigns`` the number of distinct
        campaigns that offered to it -- the exit-code-2 triage view,
        answerable without re-running any attestation.
        """
        rollup: Dict[str, dict] = {}
        for doc in self._scan():
            device_id = doc["device"]
            if device_id is None:
                continue
            entry = rollup.get(device_id)
            if entry is None:
                entry = rollup[device_id] = {
                    "first_seen_ts": doc["ts"],
                    "last_seen_ts": doc["ts"],
                    "last_seen_seq": doc["seq"],
                    "events": 0,
                    "attests": 0,
                    "attest_failures": 0,
                    "offers": 0,
                    "campaigns": 0,
                    "quarantine_reason": None,
                    "violations": 0,
                    "_campaigns": set(),
                }
            entry["events"] += 1
            entry["last_seen_ts"] = doc["ts"]
            entry["last_seen_seq"] = doc["seq"]
            kind = doc["kind"]
            data = doc["data"]
            if kind == "attest":
                entry["attests"] += 1
                if not data.get("ok", False):
                    entry["attest_failures"] += 1
            elif kind == "offer":
                entry["offers"] += 1
                if doc["campaign"] is not None:
                    entry["_campaigns"].add(doc["campaign"])
            elif kind == "quarantine":
                entry["quarantine_reason"] = data.get("reason", "")
            elif kind == "violation-delta":
                entry["violations"] += sum(
                    count for count in data.get("deltas", {}).values())
        for entry in rollup.values():
            entry["campaigns"] = len(entry.pop("_campaigns"))
        return rollup

    def campaign_rollup(self) -> List[dict]:
        """One summary per campaign, in start order.

        Folds the campaign's start/end bracket, its offer outcomes by
        status label, its wave commits, and every quarantine tagged
        with its id (incl. the per-reason breakdown the security triage
        wants).
        """
        campaigns: Dict[str, dict] = {}
        for doc in self._scan():
            campaign_id = doc["campaign"]
            if campaign_id is None:
                continue
            entry = campaigns.get(campaign_id)
            if entry is None:
                entry = campaigns[campaign_id] = {
                    "campaign": campaign_id,
                    "target_version": None,
                    "backend": None,
                    "started_ts": None,
                    "ended_ts": None,
                    "status": None,
                    "offers": {},
                    "applied": 0,
                    "failed": 0,
                    "skipped": 0,
                    "resumed": 0,
                    "waves": 0,
                    "quarantined": 0,
                    "quarantine_reasons": {},
                    "alerts": 0,
                    "alert_rules": {},
                    "devices_per_sec": None,
                    "elapsed_s": None,
                }
            kind = doc["kind"]
            data = doc["data"]
            if kind == "campaign-start":
                entry["started_ts"] = doc["ts"]
                entry["target_version"] = data.get("target_version")
                entry["backend"] = data.get("backend")
            elif kind == "campaign-end":
                entry["ended_ts"] = doc["ts"]
                entry["status"] = data.get("status")
                entry["applied"] = data.get("applied", 0)
                entry["failed"] = data.get("failed", 0)
                entry["skipped"] = data.get("skipped", 0)
                entry["resumed"] = data.get("resumed", 0)
                entry["devices_per_sec"] = data.get("devices_per_sec")
                entry["elapsed_s"] = data.get("elapsed_s")
            elif kind == "offer":
                label = data.get("status", "unreachable")
                entry["offers"][label] = entry["offers"].get(label, 0) + 1
            elif kind == "wave-commit":
                entry["waves"] += 1
            elif kind == "quarantine":
                entry["quarantined"] += 1
                reason = data.get("reason", "")
                reasons = entry["quarantine_reasons"]
                reasons[reason] = reasons.get(reason, 0) + 1
            elif kind == "alert":
                entry["alerts"] += 1
                rule = data.get("rule", "")
                rules = entry["alert_rules"]
                rules[rule] = rules.get(rule, 0) + 1
        return sorted(campaigns.values(),
                      key=lambda entry: int(entry["campaign"][1:]))

    def trends(self) -> dict:
        """Cross-campaign series (one entry per campaign, start order).

        Always well-formed: an empty log yields empty (not missing)
        series, and a campaign without an end event yet -- in flight,
        or killed mid-run -- contributes ``0.0`` throughput rather
        than ``None`` so the series stay numeric and plottable.
        """
        rollups = self.campaign_rollup()
        return {
            "campaigns": [entry["campaign"] for entry in rollups],
            "target_versions": [entry["target_version"] for entry in rollups],
            "devices_per_sec": [entry["devices_per_sec"] or 0.0
                                for entry in rollups],
            "applied": [entry["applied"] for entry in rollups],
            "failed": [entry["failed"] for entry in rollups],
            "quarantined": [entry["quarantined"] for entry in rollups],
            "alerts": [entry["alerts"] for entry in rollups],
        }


class MemoryEventLog(EventLog):
    """List-backed log: the in-process default, zero I/O."""

    backend = "memory"

    def __init__(self):
        super().__init__()
        self._events: List[dict] = []

    def _append(self, doc: dict):
        self._events.append(doc)

    def _scan(self):
        return self._events


class JsonlEventLog(EventLog):
    """One JSON line per event; a torn final line is skipped on load.

    The log is append-only by nature (events never rewrite), so unlike
    the registry's JsonlStore there is nothing to compact -- growth is
    the point.  Writes push to the kernel immediately; ``flush()``
    adds the fsync that makes a durability point.
    """

    backend = "jsonl"

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._events = self._load_file()
        if self._events:
            self._seq = self._events[-1]["seq"]
        self._file = open(path, "a", encoding="utf-8")

    def _load_file(self) -> List[dict]:
        events: List[dict] = []
        if not os.path.exists(self.path):
            return events
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a kill mid-append
                if isinstance(doc, dict) and "seq" in doc:
                    events.append(doc)
        return events

    def _append(self, doc: dict):
        self._events.append(doc)
        self._file.write(json.dumps(doc, sort_keys=True) + "\n")
        self._file.flush()

    def _scan(self):
        return self._events

    def flush(self):
        with self._lock:
            if self._file.closed:
                return
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self):
        if self._file.closed:
            return
        self.flush()
        self._file.close()


class SqliteEventLog(EventLog):
    """SQLite-backed log: inserts batched until ``flush()`` commits.

    The scale backend: events stay on disk, not in a Python list, and
    :meth:`events` filters with indexed SQL.  The uncommitted window
    matches the registry's (campaigns flush both per wave).
    """

    backend = "sqlite"

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._closed = False
        self._conn = sqlite3.connect(path, check_same_thread=False)
        with self._conn:  # schema setup commits immediately
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS events ("
                " seq INTEGER PRIMARY KEY, ts REAL NOT NULL,"
                " kind TEXT NOT NULL, device TEXT, campaign TEXT,"
                " doc TEXT NOT NULL)")
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS events_device"
                " ON events (device)")
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS events_campaign"
                " ON events (campaign)")
        row = self._conn.execute("SELECT MAX(seq) FROM events").fetchone()
        self._seq = int(row[0]) if row and row[0] is not None else 0

    def _append(self, doc: dict):
        self._conn.execute(
            "INSERT INTO events (seq, ts, kind, device, campaign, doc)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (doc["seq"], doc["ts"], doc["kind"], doc["device"],
             doc["campaign"], json.dumps(doc, sort_keys=True)))

    def events(self, kind: Optional[str] = None, device: Optional[str] = None,
               campaign: Optional[str] = None,
               since: Optional[int] = None) -> List[dict]:
        clauses, params = [], []
        for column, value in (("kind", kind), ("device", device),
                              ("campaign", campaign)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if since is not None:
            clauses.append("seq > ?")
            params.append(since)
        query = "SELECT doc FROM events"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY seq"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [json.loads(row[0]) for row in rows]

    def _scan(self):
        with self._lock:
            rows = self._conn.execute(
                "SELECT doc FROM events ORDER BY seq").fetchall()
        return [json.loads(row[0]) for row in rows]

    def flush(self):
        with self._lock:
            if not self._closed:
                self._conn.commit()

    def close(self):
        with self._lock:
            if self._closed:
                return
            self._conn.commit()
            self._conn.close()
            self._closed = True


SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def open_event_log(path: Optional[str]) -> EventLog:
    """Pick a backend from *path*: memory, SQLite, or JSON lines."""
    if path is None or path == ":memory:":
        return MemoryEventLog()
    if path.endswith(SQLITE_SUFFIXES):
        return SqliteEventLog(path)
    return JsonlEventLog(path)
