"""Instruction decoder: word stream -> :class:`Instruction`.

The decoder pulls extension words lazily through a ``fetch`` callable so
the CPU can account each word fetch on the bus (monitors observe every
fetch).  A convenience wrapper decodes from a flat word list for the
disassembler and tests.
"""

from repro.errors import DecodingError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import (
    FORMAT1_BY_CODE,
    FORMAT2_BY_CODE,
    JUMP_BY_CODE,
    FORMAT2_BYTE_CAPABLE,
)
from repro.isa.operands import (
    complete_source,
    decode_dest,
    decode_source,
)


def decode(first_word, fetch_next):
    """Decode one instruction.

    *first_word* is the already-fetched instruction word; *fetch_next* is
    a zero-argument callable returning successive extension words.
    """
    top = (first_word >> 13) & 0x7
    if top == 0b001:
        return _decode_jump(first_word)
    if (first_word >> 10) == 0b000100:
        return _decode_single(first_word, fetch_next)
    code = (first_word >> 12) & 0xF
    if code >= 0x4:
        return _decode_double(first_word, fetch_next)
    raise DecodingError(f"illegal instruction word 0x{first_word:04x}")


def decode_words(words):
    """Decode from a word list; returns ``(instruction, words_consumed)``."""
    taken = {"n": 1}

    def fetch():
        if taken["n"] >= len(words):
            raise DecodingError("truncated instruction")
        word = words[taken["n"]]
        taken["n"] += 1
        return word

    insn = decode(words[0], fetch)
    return insn, taken["n"]


def _decode_double(word, fetch_next):
    opcode = FORMAT1_BY_CODE[(word >> 12) & 0xF]
    src_reg = (word >> 8) & 0xF
    ad_bit = (word >> 7) & 0x1
    byte_mode = bool((word >> 6) & 0x1)
    as_bits = (word >> 4) & 0x3
    dst_reg = word & 0xF

    src, needs_ext = decode_source(src_reg, as_bits)
    if needs_ext:
        src = complete_source(src_reg, as_bits, fetch_next())
    dst_ext = fetch_next() if ad_bit else None
    dst = decode_dest(dst_reg, ad_bit, dst_ext)
    return Instruction(opcode, src=src, dst=dst, byte_mode=byte_mode)


def _decode_single(word, fetch_next):
    code = (word >> 7) & 0x7
    if code not in FORMAT2_BY_CODE:
        raise DecodingError(f"illegal format-II opcode in 0x{word:04x}")
    opcode = FORMAT2_BY_CODE[code]
    if opcode.mnemonic == "reti":
        return Instruction(opcode)
    byte_mode = bool((word >> 6) & 0x1)
    if byte_mode and opcode.mnemonic not in FORMAT2_BYTE_CAPABLE:
        raise DecodingError(f"{opcode.mnemonic} has no byte variant")
    as_bits = (word >> 4) & 0x3
    reg = word & 0xF
    dst, needs_ext = decode_source(reg, as_bits)
    if needs_ext:
        dst = complete_source(reg, as_bits, fetch_next())
    return Instruction(opcode, dst=dst, byte_mode=byte_mode)


def _decode_jump(word):
    opcode = JUMP_BY_CODE[(word >> 10) & 0x7]
    offset = word & 0x3FF
    if offset & 0x200:
        offset -= 0x400
    return Instruction(opcode, offset=offset)
