"""Decoded-instruction container shared by encoder, decoder and CPU."""

from dataclasses import dataclass
from typing import Optional

from repro.errors import IsaError
from repro.isa.opcodes import Format, Opcode
from repro.isa.operands import Operand


@dataclass(frozen=True)
class Instruction:
    """A single (possibly multi-word) MSP430 instruction.

    ``byte_mode`` selects the ``.b`` variant of format I/II instructions.
    ``offset`` is the signed *word* offset of jump instructions.
    """

    opcode: Opcode
    src: Optional[Operand] = None
    dst: Optional[Operand] = None
    byte_mode: bool = False
    offset: Optional[int] = None

    def __post_init__(self):
        fmt = self.opcode.format
        if fmt is Format.DOUBLE:
            if self.src is None or self.dst is None:
                raise IsaError(f"{self.opcode.mnemonic} needs source and destination")
        elif fmt is Format.SINGLE:
            if self.opcode.mnemonic == "reti":
                if self.src is not None or self.dst is not None:
                    raise IsaError("reti takes no operands")
            elif self.dst is None:
                raise IsaError(f"{self.opcode.mnemonic} needs one operand")
        elif fmt is Format.JUMP:
            if self.offset is None:
                raise IsaError(f"{self.opcode.mnemonic} needs a jump offset")
        # All fields are frozen, so the encoded size is fixed; latch it
        # once -- size_bytes sits on the per-step trace-classification
        # hot path and cached instructions are re-used across steps.
        words = 1
        if self.src is not None:
            words += self.src.extension_words
        if self.dst is not None and fmt in (Format.DOUBLE, Format.SINGLE):
            words += self.dst.extension_words
        object.__setattr__(self, "_size_words", words)

    @property
    def mnemonic(self):
        return self.opcode.mnemonic

    @property
    def size_words(self):
        """Total encoded size in 16-bit words."""
        return self._size_words

    @property
    def size_bytes(self):
        return self._size_words * 2

    def render(self):
        """Canonical assembly text (used by listings and disassembly)."""
        name = self.mnemonic + (".b" if self.byte_mode else "")
        fmt = self.opcode.format
        if fmt is Format.DOUBLE:
            return f"{name} {self.src.render()}, {self.dst.render()}"
        if fmt is Format.SINGLE:
            if self.mnemonic == "reti":
                return name
            return f"{name} {self.dst.render()}"
        sign = "+" if self.offset >= 0 else ""
        return f"{name} ${sign}{self.offset * 2 + 2}"

    def __str__(self):
        return self.render()
