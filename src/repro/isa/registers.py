"""Register file conventions of the MSP430.

R0..R3 are special: R0 is the program counter, R1 the stack pointer,
R2 the status register (and constant generator 1), R3 constant
generator 2.  R4..R15 are general purpose; EILID reserves R4..R7 for its
runtime (paper Table III).
"""

from repro.errors import IsaError

PC = 0
SP = 1
SR = 2
CG2 = 3

NUM_REGISTERS = 16

REGISTER_NAMES = tuple(
    {0: "pc", 1: "sp", 2: "sr", 3: "cg2"}.get(n, f"r{n}") for n in range(NUM_REGISTERS)
)

_ALIASES = {
    "pc": PC,
    "sp": SP,
    "sr": SR,
    "cg2": CG2,
}


def register_name(num):
    """Return the canonical display name for register *num* (``r0``..``r15``).

    The canonical assembly spelling uses ``rN`` for every register; the
    aliases ``pc``/``sp``/``sr`` are accepted on input only.
    """
    if not 0 <= num < NUM_REGISTERS:
        raise IsaError(f"register number out of range: {num}")
    return f"r{num}"


def parse_register(text):
    """Parse a register operand token (``r0``..``r15``, ``pc``, ``sp``, ``sr``).

    Returns the register number, or ``None`` if *text* is not a register.
    """
    low = text.strip().lower()
    if low in _ALIASES:
        return _ALIASES[low]
    if low.startswith("r") and low[1:].isdigit():
        num = int(low[1:])
        if 0 <= num < NUM_REGISTERS:
            return num
    return None


# Status-register flag bit positions (SLAU049 section 3.2.3).
FLAG_C = 0x0001
FLAG_Z = 0x0002
FLAG_N = 0x0004
FLAG_GIE = 0x0008
FLAG_CPUOFF = 0x0010
FLAG_OSCOFF = 0x0020
FLAG_SCG0 = 0x0040
FLAG_SCG1 = 0x0080
FLAG_V = 0x0100

STATUS_FLAG_NAMES = {
    FLAG_C: "C",
    FLAG_Z: "Z",
    FLAG_N: "N",
    FLAG_GIE: "GIE",
    FLAG_CPUOFF: "CPUOFF",
    FLAG_OSCOFF: "OSCOFF",
    FLAG_SCG0: "SCG0",
    FLAG_SCG1: "SCG1",
    FLAG_V: "V",
}


def describe_sr(value):
    """Human-readable list of flags set in an SR *value* (for traces)."""
    names = [name for bit, name in sorted(STATUS_FLAG_NAMES.items()) if value & bit]
    return "|".join(names) if names else "-"
