"""Instruction encoder: :class:`Instruction` -> list of 16-bit words."""

from repro.errors import EncodingError
from repro.isa.opcodes import (
    Format,
    FORMAT2_BYTE_CAPABLE,
    JUMP_OFFSET_MIN,
    JUMP_OFFSET_MAX,
)


def encode(insn):
    """Encode *insn* into its instruction-stream words (first word first)."""
    fmt = insn.opcode.format
    if fmt is Format.DOUBLE:
        return _encode_double(insn)
    if fmt is Format.SINGLE:
        return _encode_single(insn)
    return _encode_jump(insn)


def _encode_double(insn):
    try:
        src_reg, as_bits, src_ext = insn.src.source_encoding()
        dst_reg, ad_bit, dst_ext = insn.dst.dest_encoding()
    except Exception as exc:  # IsaError from operand helpers
        raise EncodingError(f"cannot encode {insn.mnemonic}: {exc}") from exc
    word = (
        (insn.opcode.code << 12)
        | (src_reg << 8)
        | (ad_bit << 7)
        | ((1 if insn.byte_mode else 0) << 6)
        | (as_bits << 4)
        | dst_reg
    )
    words = [word]
    if src_ext is not None:
        words.append(src_ext & 0xFFFF)
    if dst_ext is not None:
        words.append(dst_ext & 0xFFFF)
    return words


def _encode_single(insn):
    name = insn.mnemonic
    if name == "reti":
        return [0x1300]
    if insn.byte_mode and name not in FORMAT2_BYTE_CAPABLE:
        raise EncodingError(f"{name} has no byte variant")
    try:
        dst_reg, as_bits, ext = insn.dst.source_encoding()
    except Exception as exc:
        raise EncodingError(f"cannot encode {name}: {exc}") from exc
    word = (
        0x1000
        | (insn.opcode.code << 7)
        | ((1 if insn.byte_mode else 0) << 6)
        | (as_bits << 4)
        | dst_reg
    )
    words = [word]
    if ext is not None:
        words.append(ext & 0xFFFF)
    return words


def _encode_jump(insn):
    offset = insn.offset
    if not JUMP_OFFSET_MIN <= offset <= JUMP_OFFSET_MAX:
        raise EncodingError(
            f"jump offset {offset} words out of range "
            f"[{JUMP_OFFSET_MIN}, {JUMP_OFFSET_MAX}]"
        )
    word = 0x2000 | (insn.opcode.code << 10) | (offset & 0x3FF)
    return [word]
