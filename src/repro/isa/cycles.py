"""Instruction cycle counts (MSP430x1xx Family User's Guide, SLAU049,
Tables 3-14 and 3-15).

These tables drive the simulator's cycle accounting and therefore every
run-time number in the Table IV reproduction.  Counts are for the CPU
clock (MCLK); the paper reports run-times at 100 MHz, i.e. 1 cycle =
0.01 us.
"""

from repro.errors import IsaError
from repro.isa.opcodes import Format
from repro.isa.operands import AddrMode
from repro.isa.registers import PC

INTERRUPT_CYCLES = 6
RESET_CYCLES = 4
RETI_CYCLES = 5
JUMP_CYCLES = 2

# Format I (SLAU049 Table 3-15): cycles keyed by (src class, dst class).
# Source classes: Rn, @Rn, @Rn+, #N, x(Rn) (covers symbolic/absolute).
# Destination classes: Rm, PC, x(Rm) (covers symbolic/absolute).

_SRC_CLASS = {
    AddrMode.REGISTER: "Rn",
    AddrMode.CONSTANT: "Rn",  # constant generators behave as register source
    AddrMode.INDIRECT: "@Rn",
    AddrMode.AUTOINC: "@Rn+",
    AddrMode.IMMEDIATE: "#N",
    AddrMode.INDEXED: "x(Rn)",
    AddrMode.SYMBOLIC: "x(Rn)",
    AddrMode.ABSOLUTE: "x(Rn)",
}

_FORMAT1_CYCLES = {
    # src:   (dst=Rm, dst=PC, dst=x(Rm))
    "Rn": (1, 2, 4),
    "@Rn": (2, 2, 5),
    "@Rn+": (2, 3, 5),
    "#N": (2, 3, 5),
    "x(Rn)": (3, 3, 6),
}

# Format II (SLAU049 Table 3-14): cycles keyed by operand class.

_FORMAT2_CYCLES = {
    # op:     Rn  @Rn  @Rn+  #N  x(Rn)
    "rra": (1, 3, 3, None, 4),
    "rrc": (1, 3, 3, None, 4),
    "swpb": (1, 3, 3, None, 4),
    "sxt": (1, 3, 3, None, 4),
    "push": (3, 4, 5, 4, 5),
    "call": (4, 4, 5, 5, 5),
}

_FORMAT2_COLUMN = {
    "Rn": 0,
    "@Rn": 1,
    "@Rn+": 2,
    "#N": 3,
    "x(Rn)": 4,
}


def instruction_cycles(insn):
    """Return the MCLK cycles consumed by executing *insn*."""
    fmt = insn.opcode.format
    if fmt is Format.JUMP:
        return JUMP_CYCLES
    if fmt is Format.SINGLE:
        if insn.mnemonic == "reti":
            return RETI_CYCLES
        klass = _SRC_CLASS[insn.dst.mode]
        cycles = _FORMAT2_CYCLES[insn.mnemonic][_FORMAT2_COLUMN[klass]]
        if cycles is None:
            raise IsaError(f"{insn.mnemonic} does not accept an immediate operand")
        # CALL x(Rn) via the absolute mode costs one extra cycle (&EDE
        # column of Table 3-14).
        if insn.mnemonic == "call" and insn.dst.mode is AddrMode.ABSOLUTE:
            cycles += 1
        return cycles
    src_klass = _SRC_CLASS[insn.src.mode]
    row = _FORMAT1_CYCLES[src_klass]
    if insn.dst.mode is AddrMode.REGISTER:
        return row[1] if insn.dst.reg == PC else row[0]
    return row[2]
