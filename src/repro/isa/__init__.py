"""MSP430 instruction-set architecture model.

This package models the 16-bit MSP430 core ISA as implemented by
openMSP430: the 27 core instructions in three formats (double-operand,
single-operand, relative jump), the seven addressing modes including the
constant generators on R2/R3, byte/word variants, status-register flag
semantics, and the instruction cycle counts of the MSP430x1xx family
user's guide (TI SLAU049).

The model is shared by the assembler/encoder (`repro.toolchain`), the
CPU simulator (`repro.cpu`) and the EILID instrumenter (`repro.eilid`).
"""

from repro.isa.registers import (
    PC,
    SP,
    SR,
    CG2,
    REGISTER_NAMES,
    register_name,
    parse_register,
)
from repro.isa.operands import AddrMode, Operand
from repro.isa.opcodes import (
    Format,
    Opcode,
    FORMAT1_OPCODES,
    FORMAT2_OPCODES,
    JUMP_OPCODES,
)
from repro.isa.instructions import Instruction
from repro.isa.encode import encode
from repro.isa.decode import decode
from repro.isa.cycles import instruction_cycles, INTERRUPT_CYCLES, RESET_CYCLES

__all__ = [
    "PC",
    "SP",
    "SR",
    "CG2",
    "REGISTER_NAMES",
    "register_name",
    "parse_register",
    "AddrMode",
    "Operand",
    "Format",
    "Opcode",
    "FORMAT1_OPCODES",
    "FORMAT2_OPCODES",
    "JUMP_OPCODES",
    "Instruction",
    "encode",
    "decode",
    "instruction_cycles",
    "INTERRUPT_CYCLES",
    "RESET_CYCLES",
]
