"""Control-transfer instruction descriptors for low-end MCU platforms.

This is the substrate behind the paper's Table II: for each popular
low-end platform, the instructions EILIDinst must recognise -- function
call, function return, return-from-interrupt, and the forms an indirect
call can take.  The MSP430 descriptor is cross-checked against the ISA
tables in this package by a unit test; the AVR and PIC16 descriptors are
data used for the table and for the instrumenter's portability layer.
"""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class PlatformIsa:
    """Control-transfer instruction summary for one MCU platform."""

    name: str
    word_bits: int
    call: Tuple[str, ...]
    ret: Tuple[str, ...]
    reti: Tuple[str, ...]
    indirect_call: Tuple[str, ...]

    def table_row(self):
        """Row for the Table II reproduction."""
        return {
            "platform": self.name,
            "call": ", ".join(m.upper() for m in self.call),
            "return": ", ".join(m.upper() for m in self.ret),
            "return_from_interrupt": ", ".join(m.upper() for m in self.reti),
            "indirect_call": ", ".join(m.upper() for m in self.indirect_call),
        }


MSP430 = PlatformIsa(
    name="TI MSP430",
    word_bits=16,
    call=("call",),
    ret=("ret",),
    reti=("reti",),
    indirect_call=("call",),  # CALL with a register/indirect operand
)

ATMEGA32 = PlatformIsa(
    name="AVR ATMega32",
    word_bits=8,
    call=("call",),
    ret=("ret",),
    reti=("reti",),
    indirect_call=("rcall", "icall"),
)

PIC16 = PlatformIsa(
    name="Microchip PIC16",
    word_bits=8,
    call=("call",),
    ret=("return",),
    reti=("retfie",),
    indirect_call=("call", "rcall"),
)

PLATFORMS = (MSP430, ATMEGA32, PIC16)


def platform_by_name(name):
    """Look up a platform descriptor by (case-insensitive) name."""
    low = name.lower()
    for platform in PLATFORMS:
        if low in platform.name.lower():
            return platform
    raise KeyError(f"unknown platform: {name}")
