"""Operand and addressing-mode model.

The MSP430 has seven addressing modes.  Source operands use the 2-bit
``As`` field plus the register number; destinations use the 1-bit ``Ad``
field.  The modes are:

===========  ==================  ==========================
mode         assembly            effective address
===========  ==================  ==========================
REGISTER     ``rN``              (register itself)
INDEXED      ``x(rN)``           ``rN + x``
SYMBOLIC     ``LABEL``           ``PC + x`` (PC-relative)
ABSOLUTE     ``&LABEL``          ``x``
INDIRECT     ``@rN``             ``rN``
AUTOINC      ``@rN+``            ``rN`` (then ``rN += size``)
IMMEDIATE    ``#x``              (value is the extension word)
===========  ==================  ==========================

Constant generators: with R2 as source, As=10/11 produce the constants
4/8 with no extension word; with R3 as source, As=00..11 produce
0/1/2/-1.  The encoder exploits these automatically for immediates.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import IsaError
from repro.isa.registers import PC, SR, CG2, register_name


class AddrMode(enum.Enum):
    REGISTER = "register"
    INDEXED = "indexed"
    SYMBOLIC = "symbolic"
    ABSOLUTE = "absolute"
    INDIRECT = "indirect"
    AUTOINC = "autoinc"
    IMMEDIATE = "immediate"
    CONSTANT = "constant"  # constant-generator encodings of R2/R3

    @property
    def has_extension_word(self):
        return self in (
            AddrMode.INDEXED,
            AddrMode.SYMBOLIC,
            AddrMode.ABSOLUTE,
            AddrMode.IMMEDIATE,
        )


# Constants available from the generators, mapped to (reg, as_bits).
CG_CONSTANTS = {
    0: (CG2, 0b00),
    1: (CG2, 0b01),
    2: (CG2, 0b10),
    0xFFFF: (CG2, 0b11),
    4: (SR, 0b10),
    8: (SR, 0b11),
}

# Reverse map: (reg, as_bits) -> constant value.
CG_VALUES = {pair: value for value, pair in CG_CONSTANTS.items()}


@dataclass(frozen=True)
class Operand:
    """A single decoded/parseable operand.

    ``value`` is the extension-word payload (index, address or
    immediate), already reduced modulo 2**16 for concrete operands.  For
    CONSTANT mode it is the generated constant.
    """

    mode: AddrMode
    reg: Optional[int] = None
    value: Optional[int] = None

    # ---- constructors ----------------------------------------------------

    @staticmethod
    def register(reg):
        return Operand(AddrMode.REGISTER, reg=reg)

    @staticmethod
    def indexed(value, reg):
        return Operand(AddrMode.INDEXED, reg=reg, value=value & 0xFFFF)

    @staticmethod
    def symbolic(value):
        return Operand(AddrMode.SYMBOLIC, reg=PC, value=value & 0xFFFF)

    @staticmethod
    def absolute(value):
        return Operand(AddrMode.ABSOLUTE, reg=SR, value=value & 0xFFFF)

    @staticmethod
    def indirect(reg):
        return Operand(AddrMode.INDIRECT, reg=reg)

    @staticmethod
    def autoinc(reg):
        return Operand(AddrMode.AUTOINC, reg=reg)

    @staticmethod
    def immediate(value):
        return Operand(AddrMode.IMMEDIATE, reg=PC, value=value & 0xFFFF)

    @staticmethod
    def constant(value, reg, as_bits):
        return Operand(AddrMode.CONSTANT, reg=reg, value=value & 0xFFFF)

    # ---- properties ------------------------------------------------------

    @property
    def is_pc_register(self):
        return self.mode is AddrMode.REGISTER and self.reg == PC

    @property
    def extension_words(self):
        if self.mode is AddrMode.IMMEDIATE and self.value in CG_CONSTANTS:
            return 0  # the constant generators encode these for free
        return 1 if self.mode.has_extension_word else 0

    def source_encoding(self):
        """Return ``(reg, as_bits, ext_word_or_None)`` for a source field."""
        mode = self.mode
        if mode is AddrMode.REGISTER:
            return self.reg, 0b00, None
        if mode is AddrMode.INDEXED:
            return self.reg, 0b01, self.value
        if mode is AddrMode.SYMBOLIC:
            return PC, 0b01, self.value
        if mode is AddrMode.ABSOLUTE:
            return SR, 0b01, self.value
        if mode is AddrMode.INDIRECT:
            return self.reg, 0b10, None
        if mode is AddrMode.AUTOINC:
            return self.reg, 0b11, None
        if mode is AddrMode.IMMEDIATE:
            if self.value in CG_CONSTANTS:
                reg, as_bits = CG_CONSTANTS[self.value]
                return reg, as_bits, None
            return PC, 0b11, self.value
        if mode is AddrMode.CONSTANT:
            reg, as_bits = CG_CONSTANTS[self.value]
            return reg, as_bits, None
        raise IsaError(f"cannot encode source operand mode {mode}")

    def dest_encoding(self):
        """Return ``(reg, ad_bit, ext_word_or_None)`` for a destination field."""
        mode = self.mode
        if mode is AddrMode.REGISTER:
            return self.reg, 0, None
        if mode is AddrMode.INDEXED:
            return self.reg, 1, self.value
        if mode is AddrMode.SYMBOLIC:
            return PC, 1, self.value
        if mode is AddrMode.ABSOLUTE:
            return SR, 1, self.value
        raise IsaError(f"operand mode {mode} is not a legal destination")

    def render(self):
        """Canonical assembly text for this operand."""
        mode = self.mode
        if mode is AddrMode.REGISTER:
            return register_name(self.reg)
        if mode is AddrMode.INDEXED:
            return f"{_hex(self.value)}({register_name(self.reg)})"
        if mode is AddrMode.SYMBOLIC:
            return _hex(self.value)
        if mode is AddrMode.ABSOLUTE:
            return f"&{_hex(self.value)}"
        if mode is AddrMode.INDIRECT:
            return f"@{register_name(self.reg)}"
        if mode is AddrMode.AUTOINC:
            return f"@{register_name(self.reg)}+"
        if mode in (AddrMode.IMMEDIATE, AddrMode.CONSTANT):
            return f"#{_hex(self.value)}"
        raise IsaError(f"cannot render operand mode {mode}")


def _hex(value):
    value &= 0xFFFF
    return f"0x{value:x}" if value > 9 else str(value)


def decode_source(reg, as_bits):
    """Map a decoded (reg, As) pair to an operand *shape*.

    Returns ``(Operand-or-None, needs_extension_word)``.  If the operand
    requires an extension word, the caller fetches it and completes the
    operand via :func:`complete_source`.
    """
    if reg == CG2:
        return Operand.constant(CG_VALUES[(CG2, as_bits)], CG2, as_bits), False
    if reg == SR and as_bits >= 0b10:
        return Operand.constant(CG_VALUES[(SR, as_bits)], SR, as_bits), False
    if as_bits == 0b00:
        return Operand.register(reg), False
    if as_bits == 0b01:
        if reg == SR:
            return None, True  # absolute
        if reg == PC:
            return None, True  # symbolic
        return None, True  # indexed
    if as_bits == 0b10:
        return Operand.indirect(reg), False
    if as_bits == 0b11:
        if reg == PC:
            return None, True  # immediate
        return Operand.autoinc(reg), False
    raise IsaError(f"invalid As bits: {as_bits}")


def complete_source(reg, as_bits, ext_word):
    """Build the extension-word source operand for (reg, As, ext)."""
    if as_bits == 0b01:
        if reg == SR:
            return Operand.absolute(ext_word)
        if reg == PC:
            return Operand.symbolic(ext_word)
        return Operand.indexed(ext_word, reg)
    if as_bits == 0b11 and reg == PC:
        return Operand.immediate(ext_word)
    raise IsaError(f"(reg={reg}, As={as_bits}) does not take an extension word")


def decode_dest(reg, ad_bit, ext_word=None):
    """Map a decoded (reg, Ad[, ext]) to a destination operand."""
    if ad_bit == 0:
        return Operand.register(reg)
    if ext_word is None:
        raise IsaError("indexed destination requires an extension word")
    if reg == SR:
        return Operand.absolute(ext_word)
    if reg == PC:
        return Operand.symbolic(ext_word)
    return Operand.indexed(ext_word, reg)
