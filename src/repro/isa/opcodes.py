"""Opcode tables for the three MSP430 instruction formats.

Format I  (double operand): opcode in bits 15..12 (values 0x4..0xF).
Format II (single operand): bits 15..10 = 000100, opcode in bits 9..7.
Jumps: bits 15..13 = 001, condition in bits 12..10, signed 10-bit
word offset in bits 9..0.

Emulated instructions (RET, POP, BR, NOP, CLR, ...) are pure assembler
aliases over these cores; they live in `repro.toolchain.emulated`.
"""

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    DOUBLE = "format-i"
    SINGLE = "format-ii"
    JUMP = "jump"


@dataclass(frozen=True)
class Opcode:
    """One core instruction: mnemonic, format, and encoding field value."""

    mnemonic: str
    format: Format
    code: int
    writes_dest: bool = True  # CMP/BIT/TST do not write back
    sets_flags: bool = True  # MOV/BIC/BIS/PUSH/CALL do not touch flags


# ---- Format I: double operand ---------------------------------------------

_F1 = [
    ("mov", 0x4, True, False),
    ("add", 0x5, True, True),
    ("addc", 0x6, True, True),
    ("subc", 0x7, True, True),
    ("sub", 0x8, True, True),
    ("cmp", 0x9, False, True),
    ("dadd", 0xA, True, True),
    ("bit", 0xB, False, True),
    ("bic", 0xC, True, False),
    ("bis", 0xD, True, False),
    ("xor", 0xE, True, True),
    ("and", 0xF, True, True),
]

FORMAT1_OPCODES = {
    name: Opcode(name, Format.DOUBLE, code, writes, flags)
    for name, code, writes, flags in _F1
}
FORMAT1_BY_CODE = {op.code: op for op in FORMAT1_OPCODES.values()}

# ---- Format II: single operand ---------------------------------------------

_F2 = [
    ("rrc", 0b000, True, True),
    ("swpb", 0b001, True, False),
    ("rra", 0b010, True, True),
    ("sxt", 0b011, True, True),
    ("push", 0b100, False, False),
    ("call", 0b101, False, False),
    ("reti", 0b110, False, True),  # restores SR from the stack
]

FORMAT2_OPCODES = {
    name: Opcode(name, Format.SINGLE, code, writes, flags)
    for name, code, writes, flags in _F2
}
FORMAT2_BY_CODE = {op.code: op for op in FORMAT2_OPCODES.values()}

# Format II mnemonics that allow a byte (.b) variant.
FORMAT2_BYTE_CAPABLE = {"rrc", "rra", "push"}

# ---- Jumps ------------------------------------------------------------------

_JUMPS = [
    ("jnz", 0b000),
    ("jz", 0b001),
    ("jnc", 0b010),
    ("jc", 0b011),
    ("jn", 0b100),
    ("jge", 0b101),
    ("jl", 0b110),
    ("jmp", 0b111),
]

JUMP_OPCODES = {name: Opcode(name, Format.JUMP, code, False, False) for name, code in _JUMPS}
JUMP_BY_CODE = {op.code: op for op in JUMP_OPCODES.values()}

# Accepted aliases for jump conditions (both spellings appear in TI docs).
JUMP_ALIASES = {
    "jne": "jnz",
    "jeq": "jz",
    "jlo": "jnc",
    "jhs": "jc",
}

JUMP_OFFSET_MIN = -512
JUMP_OFFSET_MAX = 511


def lookup(mnemonic):
    """Find the :class:`Opcode` for a core mnemonic (no emulated forms)."""
    low = mnemonic.lower()
    low = JUMP_ALIASES.get(low, low)
    for table in (FORMAT1_OPCODES, FORMAT2_OPCODES, JUMP_OPCODES):
        if low in table:
            return table[low]
    return None
