"""Consistent device-id sharding over the durable registry stores.

One verifier daemon fronting a large fleet should not funnel every
record write through one file: :class:`ShardedStore` splits the
registry across N :class:`~repro.fleet.store.RegistryStore` backends
(any mix of the existing JSONL/SQLite/memory ones) behind a
consistent-hash router, while presenting the exact single-store
contract the registry already talks to -- ``FleetRegistry`` and
``FleetSimulation`` take a ``ShardedStore`` where they took a path.

Routing is a classic hash ring with virtual nodes
(:class:`ShardRouter`): each shard owns ``VNODES`` points on a 64-bit
ring keyed by SHA-256, a device id maps to the first point at or past
its own hash.  Two properties matter here:

* **stability** -- the ring is derived only from shard *index*, so a
  daemon restart (or a different process entirely) reopening the same
  shard paths routes every id identically; records never migrate
  behind the registry's back.
* **minimal movement** -- growing N shards to N+1 remaps only the ids
  that land on the new shard's points (~1/(N+1) of the fleet), which
  is the seam a later multi-machine verifier needs: shard k can move
  to another host wholesale, and resharding touches few devices.

The meta document (logical clock, package log, firmware pin) is fleet-
global, not per-device, so it lives on shard 0 alone -- one writer,
one durable copy, no merge question.
"""

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

from repro.fleet.store import RegistryStore, open_store

# Virtual nodes per shard.  64 keeps the worst shard within a few
# percent of the mean for double-digit shard counts while the ring
# stays tiny (N*64 points, built once at open).
VNODES = 64


def _ring_hash(key: str) -> int:
    """64-bit ring position of *key* (stable across processes --
    unlike ``hash()``, which PYTHONHASHSEED randomises per run)."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class ShardRouter:
    """Consistent-hash ring mapping device ids to shard indexes."""

    def __init__(self, shards: int, vnodes: int = VNODES):
        if shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards = shards
        self.vnodes = vnodes
        points = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_ring_hash(f"shard-{shard}/{vnode}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, device_id: str) -> int:
        """The shard owning *device_id*: first ring point clockwise."""
        index = bisect.bisect_right(self._points, _ring_hash(device_id))
        return self._owners[index % len(self._owners)]

    def partition(self, device_ids: Sequence[str]) -> Dict[int, List[str]]:
        """Group ids by owning shard (routing preserves input order)."""
        groups: Dict[int, List[str]] = {}
        for device_id in device_ids:
            groups.setdefault(self.shard_for(device_id), []).append(device_id)
        return groups


class ShardedStore(RegistryStore):
    """N registry stores behind one ``RegistryStore`` contract.

    Record documents route by device id through the ring; the meta
    document lives on shard 0.  ``flush()`` flushes every shard --
    the campaign engine's per-wave durability point must cover the
    whole wave no matter how its devices were distributed -- and
    ``close()`` closes every shard (compacting JSONL backends).
    """

    backend = "sharded"

    def __init__(self, stores: Sequence[RegistryStore],
                 vnodes: int = VNODES):
        self.stores = list(stores)
        self.router = ShardRouter(len(self.stores), vnodes=vnodes)

    def load_records(self) -> Dict[str, dict]:
        # Merge in shard order.  A record can only appear on two shards
        # after an offline reshard (shard added/removed); last-wins is
        # the same rule the JSONL log already applies to duplicates,
        # and the next save re-homes the record onto its current owner.
        records: Dict[str, dict] = {}
        for store in self.stores:
            records.update(store.load_records())
        return records

    def save_record(self, doc: dict):
        self.stores[self.router.shard_for(doc["device_id"])].save_record(doc)

    def load_meta(self) -> dict:
        return self.stores[0].load_meta()

    def save_meta(self, meta: dict):
        self.stores[0].save_meta(meta)

    def flush(self):
        for store in self.stores:
            store.flush()

    def close(self):
        for store in self.stores:
            store.close()

    def counts(self) -> List[int]:
        """Live records per shard (observability: ``GET /status``)."""
        return [len(store.load_records()) for store in self.stores]


def open_sharded_store(paths: Optional[Sequence[str]],
                       vnodes: int = VNODES) -> RegistryStore:
    """Open shard backends from paths (``open_store`` suffix rules).

    No paths opens a single in-memory store -- a daemon can run
    stateless for demos.  One path skips the ring entirely and returns
    that store unsharded, so ``serve run --store-shard x.db`` behaves
    exactly like today's ``--store x.db`` (same file layout, no
    routing layer to pay for).
    """
    paths = list(paths or ())
    if not paths:
        return open_store(None)
    if len(paths) == 1:
        return open_store(paths[0])
    return ShardedStore([open_store(path) for path in paths], vnodes=vnodes)
