"""The fleet control plane: async verifier daemon + client + shards.

``serve`` turns the synchronous library/CLI verifier into a
long-running service: an asyncio daemon
(:class:`~repro.serve.daemon.VerifierDaemon`) pumps many device
conversations concurrently over the existing HMAC protocol, exposes
enroll/attest/rollout plus streaming campaign status over HTTP/JSON,
and persists through N sharded durable stores
(:class:`~repro.serve.shard.ShardedStore`).  Everything is stdlib.
"""

from repro.serve.client import FleetClient, ServeError
from repro.serve.daemon import DaemonThread, VerifierDaemon
from repro.serve.pump import AsyncFleetPump, PumpBusy
from repro.serve.shard import ShardedStore, ShardRouter, open_sharded_store

__all__ = [
    "AsyncFleetPump",
    "DaemonThread",
    "FleetClient",
    "PumpBusy",
    "ServeError",
    "ShardRouter",
    "ShardedStore",
    "VerifierDaemon",
    "open_sharded_store",
]
