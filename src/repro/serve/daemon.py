"""The verifier control plane: an asyncio HTTP/1.1 JSON daemon.

One long-running process fronts a fleet: enroll/attest/rollout arrive
as HTTP requests, fan out through :class:`~repro.serve.pump
.AsyncFleetPump` onto the existing HMAC protocol, and persist through
whatever store the fleet was opened on -- usually a
:class:`~repro.serve.shard.ShardedStore` spanning several durable
backends.  Everything is stdlib: ``asyncio.start_server`` carries the
sockets, the HTTP parsing is the ~40 lines a JSON-only,
``Connection: close`` API actually needs.

Endpoints (every JSON body is the same ``schema``/``version``
envelope the CLI emits; streams are JSONL, one event document per
line, exactly the ``fleet watch --json`` shape):

====================================  =======================================
``GET  /status``                      readiness + fleet/shard/campaign summary
``POST /enroll``                      ``{"count": N}`` or ``{"device_ids": []}``
``POST /attest``                      concurrent sweep (optional device subset)
``POST /rollout``                     start a campaign, returns its id live
``GET  /campaigns/<id>``              one campaign: live state + report/rollup
``GET  /campaigns/<id>/events``       JSONL stream of its events, live
``GET  /events?since=N&follow=1``     JSONL stream of the whole event log
``GET  /metrics``                     Prometheus text (obs/export)
====================================  =======================================

Request observability rides the existing metrics registry: a
``serve.request`` span plus per-endpoint counters and latency
histograms, recorded once per *request* (never per device), so the
disabled path stays at one attribute check -- bench_micro gates it
like every other obs layer.

Shutdown is graceful by contract: SIGTERM/SIGINT stop accepting,
signal the running campaign (it stops at its next wave boundary --
flushed waves stay durable, ``rollout --resume`` finishes the rest),
drain in-flight exchanges, flush every shard store and the event log,
and exit 0.
"""

import asyncio
import json
import signal
import threading
import time
from typing import AsyncIterator, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.api.results import envelope
from repro.fleet.campaign import CampaignConfig
from repro.fleet.registry import FleetError
from repro.obs.export import to_prometheus
from repro.obs.metrics import METRICS
from repro.serve.pump import AsyncFleetPump, PumpBusy

# How often streaming endpoints poll the event log for new documents.
# 50ms keeps first-event latency far inside the 1s gate while a quiet
# stream costs ~20 empty tail reads a second.
STREAM_POLL_S = 0.05
# Reading a request (line + headers + body) may not stall the loop.
REQUEST_TIMEOUT_S = 30.0
MAX_BODY_BYTES = 8 << 20


class JsonResponse:
    def __init__(self, status: int, doc: dict):
        self.status = status
        self.doc = doc


class TextResponse:
    def __init__(self, status: int, body: str,
                 content_type: str = "text/plain; version=0.0.4"):
        self.status = status
        self.body = body
        self.content_type = content_type


class StreamResponse:
    """A JSONL stream: ``lines`` yields one JSON-safe dict per line."""

    def __init__(self, lines: AsyncIterator[dict]):
        self.status = 200
        self.lines = lines


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _error(status: int, message: str) -> JsonResponse:
    return JsonResponse(status, envelope("serve.error", error=message,
                                         status=status))


class VerifierDaemon:
    """Serve one :class:`~repro.fleet.simulation.FleetSimulation`."""

    def __init__(self, fleet, host: str = "127.0.0.1", port: int = 0,
                 max_workers: int = 0):
        self.fleet = fleet
        self.pump = AsyncFleetPump(fleet, max_workers=max_workers)
        self.host = host
        self.port = port  # 0 -> ephemeral; the bound port replaces it
        self.started_at = time.time()
        # campaign id -> {"running": bool, "report": dict | None}
        self.campaigns: Dict[str, dict] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._shutting_down = False
        self._clients: set = set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ---- lifecycle -------------------------------------------------------

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self, ready=None):
        """Serve until a shutdown request, then drain and flush."""
        if self._server is None:
            await self.start()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (ValueError, NotImplementedError, RuntimeError):
                # Not the main thread (DaemonThread) or no signal
                # support; the owner calls request_shutdown() directly.
                pass
        if ready is not None:
            ready(self)
        await self._shutdown_requested.wait()
        await self.shutdown()

    def request_shutdown(self):
        """Begin graceful shutdown; safe from any thread or a signal."""
        self.pump.campaign_stop.set()
        loop, event = self._loop, self._shutdown_requested
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    async def shutdown(self):
        """Drain in-flight work, flush every shard store, stop."""
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Campaign first (wave boundary), then in-flight exchanges,
        # then the durable flush across every shard + the event log.
        await self.pump.drain()
        pending = [task for task in self._clients if not task.done()]
        if pending:
            # Streams observe _shutting_down within one poll interval.
            done, still = await asyncio.wait(pending, timeout=5.0)
            for task in still:
                task.cancel()
        self.pump.close()

    # ---- HTTP plumbing ---------------------------------------------------

    async def _handle_client(self, reader, writer):
        task = asyncio.current_task()
        self._clients.add(task)
        try:
            await self._handle_one(reader, writer)
        except (ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            pass  # client went away or stalled; nothing to answer
        finally:
            self._clients.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(self, reader, writer):
        request_line = await asyncio.wait_for(reader.readline(),
                                              REQUEST_TIMEOUT_S)
        if not request_line:
            return
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._write_response(writer, _error(400, "malformed "
                                                           "request line"))
            return
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(),
                                          REQUEST_TIMEOUT_S)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = None
        length = int(headers.get("content-length") or 0)
        if length:
            if length > MAX_BODY_BYTES:
                await self._write_response(writer, _error(400, "body too "
                                                               "large"))
                return
            raw = await asyncio.wait_for(reader.readexactly(length),
                                         REQUEST_TIMEOUT_S)
            try:
                body = json.loads(raw)
            except ValueError:
                await self._write_response(
                    writer, _error(400, "request body is not JSON"))
                return
        parts = urlsplit(target)
        query = {key: values[-1]
                 for key, values in parse_qs(parts.query).items()}
        response = await self.dispatch(method.upper(), parts.path, query,
                                       body)
        await self._write_response(writer, response)

    async def _write_response(self, writer, response):
        if isinstance(response, StreamResponse):
            writer.write(self._head(200, "application/x-ndjson"))
            await writer.drain()
            async for doc in response.lines:
                writer.write(json.dumps(doc, sort_keys=True).encode()
                             + b"\n")
                await writer.drain()
            return
        if isinstance(response, TextResponse):
            payload = response.body.encode()
            content_type = response.content_type
        else:
            payload = (json.dumps(response.doc, sort_keys=True) + "\n"
                       ).encode()
            content_type = "application/json"
        writer.write(self._head(response.status, content_type, len(payload))
                     + payload)
        await writer.drain()

    @staticmethod
    def _head(status: int, content_type: str,
              length: Optional[int] = None) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 f"Content-Type: {content_type}",
                 "Connection: close"]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode()

    # ---- routing ---------------------------------------------------------

    async def dispatch(self, method: str, path: str,
                       query: Optional[dict] = None,
                       body: Optional[dict] = None):
        """Route one request; also the seam benchmarks/tests drive
        without a socket.  Request accounting happens here, once per
        request -- per-endpoint counters and latency histograms under
        a ``serve.request`` span, one attribute check when disabled."""
        query = query or {}
        endpoint, handler = self._route(method, path)
        if handler is None:
            return _error(*endpoint)  # (status, message) on no route
        started = time.perf_counter()
        try:
            with METRICS.span("serve.request"):
                return await handler(path, query, body)
        except PumpBusy as error:
            return _error(409, str(error))
        except (FleetError, ValueError) as error:
            return _error(400, str(error))
        except KeyError as error:
            return _error(404, f"unknown device {error.args[0]!r}"
                          if error.args else "not found")
        finally:
            if METRICS.enabled:
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                METRICS.inc("serve.requests")
                METRICS.inc(f"serve.requests.{endpoint}")
                METRICS.observe(f"serve.request.{endpoint}.ms", elapsed_ms)

    def _route(self, method: str, path: str):
        routes = {
            ("GET", "/status"): ("status", self._h_status),
            ("POST", "/enroll"): ("enroll", self._h_enroll),
            ("POST", "/attest"): ("attest", self._h_attest),
            ("POST", "/rollout"): ("rollout", self._h_rollout),
            ("GET", "/events"): ("events", self._h_events),
            ("GET", "/metrics"): ("metrics", self._h_metrics),
        }
        entry = routes.get((method, path))
        if entry is not None:
            return entry
        if path.startswith("/campaigns/"):
            if method != "GET":
                return (405, f"{method} not allowed on {path}"), None
            rest = path[len("/campaigns/"):]
            if rest.endswith("/events"):
                return "campaign-events", self._h_campaign_events
            if "/" not in rest and rest:
                return "campaign", self._h_campaign
        known_paths = {p for _, p in routes}
        if path in known_paths or path.startswith("/campaigns/"):
            return (405, f"{method} not allowed on {path}"), None
        return (404, f"no route for {path}"), None

    # ---- handlers --------------------------------------------------------

    async def _h_status(self, path, query, body):
        registry = self.fleet.registry
        store = registry.store
        backend = store.backend if store is not None else "none"
        shards = getattr(store, "stores", None)
        return JsonResponse(200, envelope(
            "serve.status",
            ready=not self._shutting_down,
            shutting_down=self._shutting_down,
            url=self.url,
            uptime_s=round(time.time() - self.started_at, 3),
            devices=len(registry),
            states=registry.state_histogram(),
            store={"backend": backend,
                   "shards": len(shards) if shards is not None else 1},
            campaigns={cid: {"running": entry["running"],
                             "status": (entry["report"] or {}).get("status")}
                       for cid, entry in self.campaigns.items()},
        ))

    async def _h_enroll(self, path, query, body):
        body = body or {}
        count = int(body.get("count") or 0)
        device_ids = body.get("device_ids")
        if not count and not device_ids:
            return _error(400, "enroll wants {'count': N} or "
                               "{'device_ids': [...]}")
        results = await self.pump.enroll(count=count, device_ids=device_ids)
        failed = [r for r in results if not r["ok"]]
        return JsonResponse(200, envelope(
            "serve.enroll", ok=not failed, enrolled=len(results) - len(failed),
            failed=failed, devices=len(self.fleet.registry),
            device_ids=[r["device"] for r in results]))

    async def _h_attest(self, path, query, body):
        body = body or {}
        results = await self.pump.attest(body.get("device_ids"))
        failed = [r for r in results if not r["ok"]]
        return JsonResponse(200, envelope(
            "serve.attest", ok=not failed, attested=len(results),
            failed=failed, results=results))

    async def _h_rollout(self, path, query, body):
        body = body or {}
        if "version" not in body:
            return _error(400, "rollout wants {'version': N, ...}")
        version = int(body["version"])
        options = {}
        if body.get("waves"):
            options["wave_fractions"] = tuple(
                float(f) for f in body["waves"])
        for knob in ("failure_threshold", "max_attempts", "workers",
                     "batch_size", "backend", "verify_after_wave"):
            if knob in body:
                options[knob] = body[knob]
        config = CampaignConfig(**options)
        campaign_id, future = await self.pump.start_rollout(
            version, config=config, resume=bool(body.get("resume")),
            device_ids=body.get("device_ids"))
        if campaign_id is None:
            # Never minted an id: the campaign was empty (or failed
            # before its first event).  The future is already done.
            report = await future
            return JsonResponse(200, envelope(
                "serve.rollout", campaign=None,
                report=self._report_doc(report)))
        entry = self.campaigns[campaign_id] = {"running": True,
                                               "report": None}

        def _finish(done):
            entry["running"] = False
            if not done.cancelled() and done.exception() is None:
                entry["report"] = self._report_doc(done.result())

        future.add_done_callback(_finish)
        return JsonResponse(200, envelope(
            "serve.rollout", campaign=campaign_id, target_version=version,
            running=True))

    @staticmethod
    def _report_doc(report) -> dict:
        return {
            "status": report.status.value,
            "target_version": report.target_version,
            "applied": report.applied,
            "failed": report.failed,
            "skipped": report.skipped,
            "resumed": report.resumed,
            "offered": report.offered,
            "halt_reason": report.halt_reason,
            "elapsed_s": round(report.elapsed_s, 6),
            "devices_per_sec": round(report.devices_per_sec, 1),
            "backend": report.backend,
            "waves": [{"index": wave.index, "size": wave.size,
                       "applied": wave.applied, "failed": wave.failed,
                       "statuses": dict(wave.statuses)}
                      for wave in report.waves],
        }

    async def _h_campaign(self, path, query, body):
        campaign_id = path.rsplit("/", 1)[1]
        entry = self.campaigns.get(campaign_id)
        rollup = next((item for item in self.fleet.events.campaign_rollup()
                       if item["campaign"] == campaign_id), None)
        if entry is None and rollup is None:
            return _error(404, f"unknown campaign {campaign_id!r}")
        return JsonResponse(200, envelope(
            "serve.campaign", campaign=campaign_id,
            running=bool(entry and entry["running"]),
            report=entry["report"] if entry else None,
            rollup=rollup))

    async def _h_campaign_events(self, path, query, body):
        campaign_id = path.split("/")[2]
        entry = self.campaigns.get(campaign_id)
        has_history = any(
            True for _ in self.fleet.events.events(campaign=campaign_id))
        if entry is None and not has_history:
            return _error(404, f"unknown campaign {campaign_id!r}")
        since = int(query.get("since") or 0)
        return StreamResponse(self._campaign_stream(campaign_id, since))

    async def _campaign_stream(self, campaign_id: str, since: int):
        """Live per-wave progress: the event log's tail cursor,
        filtered to one campaign, polled until its campaign-end."""
        cursor = since
        while True:
            docs = self.fleet.events.tail(since_seq=cursor)
            if docs:
                cursor = docs[-1]["seq"]
            ended = False
            for doc in docs:
                if doc["campaign"] != campaign_id:
                    continue
                yield doc
                if doc["kind"] == "campaign-end":
                    ended = True
            if ended or self._shutting_down:
                return
            entry = self.campaigns.get(campaign_id)
            if not docs and (entry is None or not entry["running"]):
                # Backlog drained and nothing is producing more: the
                # campaign finished before this cursor position (or
                # predates this daemon).  Do not wait forever.
                return
            await asyncio.sleep(STREAM_POLL_S)

    async def _h_events(self, path, query, body):
        since = int(query.get("since") or 0)
        follow = query.get("follow", "0") not in ("0", "", "false")
        return StreamResponse(self._event_stream(since, follow))

    async def _event_stream(self, since: int, follow: bool):
        cursor = since
        while True:
            docs = self.fleet.events.tail(since_seq=cursor)
            if docs:
                cursor = docs[-1]["seq"]
            for doc in docs:
                yield doc
            if not follow or self._shutting_down:
                return
            await asyncio.sleep(STREAM_POLL_S)

    async def _h_metrics(self, path, query, body):
        return TextResponse(200, to_prometheus(METRICS.snapshot()))


class DaemonThread:
    """Run a daemon on a dedicated thread + loop (tests, benchmarks).

    The constructor blocks until the daemon is bound and serving;
    ``stop()`` runs the full graceful-shutdown path and joins."""

    def __init__(self, fleet, host: str = "127.0.0.1", port: int = 0,
                 max_workers: int = 0, ready_timeout: float = 120.0):
        self.daemon = VerifierDaemon(fleet, host=host, port=port,
                                     max_workers=max_workers)
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main,
                                        name="serve-daemon", daemon=True)
        self._thread.start()
        if not self._ready.wait(ready_timeout):
            raise RuntimeError("daemon did not become ready in time")
        if self.error is not None:
            raise RuntimeError(f"daemon failed to start: {self.error!r}")

    def _main(self):
        try:
            asyncio.run(self.daemon.run(
                ready=lambda _daemon: self._ready.set()))
        except BaseException as error:  # noqa: BLE001 -- surfaced to owner
            self.error = error
        finally:
            self._ready.set()

    @property
    def url(self) -> str:
        return self.daemon.url

    def stop(self, timeout: float = 120.0):
        self.daemon.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("daemon thread did not shut down in time")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()
        return False
