"""FleetClient: the stdlib counterpart of the serve daemon's API.

One class, ``http.client`` underneath, one connection per request
(the daemon speaks ``Connection: close``).  JSON endpoints return the
decoded envelope; streaming endpoints return generators yielding one
event document per JSONL line, read incrementally so callers see
wave commits while the campaign is still rolling.  Tests, the
benchmarks, the demo and the ``--url`` CLI paths all drive the daemon
through this -- nobody else hand-writes HTTP.
"""

import http.client
import json
import socket
import time
from typing import Iterator, List, Optional, Sequence
from urllib.parse import urlencode, urlsplit


class ServeError(RuntimeError):
    """A non-2xx daemon response (the envelope's error rides along)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class FleetClient:
    """Talk to one running verifier daemon."""

    def __init__(self, url: str, timeout: float = 60.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} "
                             f"(the daemon speaks plain http)")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    # ---- plumbing --------------------------------------------------------

    def _connect(self, timeout: Optional[float] = None):
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        connection = self._connect()
        try:
            payload = None if body is None else json.dumps(body)
            connection.request(method, path, body=payload,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            doc = json.loads(response.read().decode() or "{}")
            if response.status >= 400:
                raise ServeError(response.status,
                                 doc.get("error", "request failed"))
            return doc
        finally:
            connection.close()

    def _stream(self, path: str,
                timeout: Optional[float] = None) -> Iterator[dict]:
        """Yield one document per JSONL line as the daemon writes them."""
        connection = self._connect(timeout)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            if response.status >= 400:
                doc = json.loads(response.read().decode() or "{}")
                raise ServeError(response.status,
                                 doc.get("error", "request failed"))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    # ---- endpoints -------------------------------------------------------

    def status(self) -> dict:
        return self._request("GET", "/status")

    def wait_ready(self, timeout: float = 120.0) -> dict:
        """Poll /status until the daemon answers (startup of a big
        fleet -- device builds -- happens before the socket binds, but
        a subprocess daemon's bind itself takes a moment)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.status()
            except (ConnectionError, socket.error, ServeError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def enroll(self, count: int = 0,
               device_ids: Optional[Sequence[str]] = None) -> dict:
        body = {"count": count}
        if device_ids is not None:
            body["device_ids"] = list(device_ids)
        return self._request("POST", "/enroll", body)

    def attest(self, device_ids: Optional[Sequence[str]] = None) -> dict:
        body = {} if device_ids is None \
            else {"device_ids": list(device_ids)}
        return self._request("POST", "/attest", body)

    def rollout(self, version: int, waves: Optional[Sequence[float]] = None,
                resume: bool = False, **options) -> dict:
        body = dict(options, version=version, resume=resume)
        if waves is not None:
            body["waves"] = list(waves)
        return self._request("POST", "/rollout", body)

    def campaign(self, campaign_id: str) -> dict:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def campaign_events(self, campaign_id: str, since: int = 0,
                        timeout: Optional[float] = None) -> Iterator[dict]:
        """Stream one campaign's events live; ends at campaign-end."""
        return self._stream(
            f"/campaigns/{campaign_id}/events?{urlencode({'since': since})}",
            timeout=timeout)

    def events(self, since: int = 0, follow: bool = False,
               timeout: Optional[float] = None) -> Iterator[dict]:
        query = urlencode({"since": since, "follow": int(follow)})
        return self._stream(f"/events?{query}", timeout=timeout)

    def metrics(self) -> str:
        connection = self._connect()
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            text = response.read().decode()
            if response.status >= 400:
                raise ServeError(response.status, "metrics unavailable")
            return text
        finally:
            connection.close()

    def wait_campaign(self, campaign_id: str,
                      timeout: float = 300.0) -> dict:
        """Poll until the campaign stops running; return its doc."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.campaign(campaign_id)
            if not doc.get("running"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still running after "
                    f"{timeout:.0f}s")
            time.sleep(0.1)


def collect(stream: Iterator[dict], limit: int = 0) -> List[dict]:
    """Drain a stream (optionally the first *limit* documents)."""
    docs = []
    for doc in stream:
        docs.append(doc)
        if limit and len(docs) >= limit:
            break
    return docs
