"""Async session layer: interleave HMAC exchanges on one event loop.

The protocol layer (:mod:`repro.fleet.protocol`) is synchronous and
per-device stateful -- a ``VerifierSession`` draws nonces from its
record and must never run two exchanges for the *same* device at
once, but exchanges for *different* devices are independent (the
thread-backend campaign already exploits this).  The pump lifts that
contract onto asyncio:

* every device gets an ``asyncio.Lock``, so per-device ordering is
  preserved no matter how many HTTP requests target it;
* the blocking exchange itself runs on a small thread pool via
  ``run_in_executor`` (HMAC/SHA release the GIL inside hashlib), so
  thousands of device conversations interleave on one loop;
* registry/store flushes batch at durability points: one ``flush()``
  per attest *request* (after its whole gather), never per device --
  the same rule ``attest_all`` and the campaign's per-wave flush
  follow.

Rollouts keep their wave semantics by running the existing
``RolloutCampaign`` on an executor thread, exclusively: while a
campaign is in flight new attest/enroll calls are refused (409 at the
HTTP layer) rather than silently interleaved with campaign offers,
and the campaign id is captured from the event bus the moment
``campaign-start`` is published, so the HTTP response can return it
while the waves are still rolling.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.fleet.campaign import CampaignConfig


class PumpBusy(RuntimeError):
    """A rollout holds the fleet exclusively; retry after campaign-end."""


class AsyncFleetPump:
    """Drive one :class:`~repro.fleet.simulation.FleetSimulation`
    concurrently from an event loop.  Not thread-safe itself: call it
    only from the loop that created it."""

    def __init__(self, fleet, max_workers: int = 0):
        self.fleet = fleet
        import os
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers or min(8, (os.cpu_count() or 1) + 2),
            thread_name_prefix="serve-pump")
        self._device_locks: Dict[str, asyncio.Lock] = {}
        self._enroll_lock = asyncio.Lock()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # One cooperative stop event for the lifetime of the pump: set
        # by graceful shutdown, observed by the running campaign at its
        # next wave boundary (flushed waves stay durable; the rest
        # resumes later with resume=True).
        self.campaign_stop = threading.Event()
        self._campaign_future: Optional[asyncio.Future] = None
        self._campaign_id: Optional[str] = None

    # ---- bookkeeping -----------------------------------------------------

    def _enter(self):
        self._inflight += 1
        self._idle.clear()

    def _exit(self):
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    @property
    def campaign_running(self) -> bool:
        future = self._campaign_future
        return future is not None and not future.done()

    @property
    def campaign_future(self) -> Optional[asyncio.Future]:
        return self._campaign_future

    def _check_free(self):
        if self.campaign_running:
            raise PumpBusy(
                f"campaign {self._campaign_id or '?'} is in flight; the "
                f"fleet is exclusive to it until campaign-end")

    def _lock_for(self, device_id: str) -> asyncio.Lock:
        lock = self._device_locks.get(device_id)
        if lock is None:
            lock = self._device_locks[device_id] = asyncio.Lock()
        return lock

    async def _run_blocking(self, func, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self.executor, func, *args)

    # ---- fleet operations ------------------------------------------------

    async def attest_one(self, device_id: str):
        """One heartbeat, ordered per device, protocol work off-loop."""
        self._check_free()
        self._enter()
        try:
            async with self._lock_for(device_id):
                return await self._run_blocking(self._attest_sync, device_id)
        finally:
            self._exit()

    def _attest_sync(self, device_id: str):
        result = self.fleet.session(device_id).attest()
        record = self.fleet.registry.get(device_id)
        self.fleet.registry.save(record)
        return result, record

    async def attest(self, device_ids: Optional[Sequence[str]] = None
                     ) -> List[dict]:
        """Concurrent sweep; ONE flush after the gather (durability
        point), mirroring the sync ``attest_all`` batch rule."""
        self._check_free()
        ids = (list(device_ids) if device_ids is not None
               else self.fleet.registry.ids())
        unknown = [i for i in ids if i not in self.fleet.agents]
        if unknown:
            raise KeyError(f"no simulated device for {unknown[0]!r}")
        outcomes = await asyncio.gather(
            *(self.attest_one(device_id) for device_id in ids))
        await self._run_blocking(self.fleet.registry.flush)
        return [
            {"device": device_id, "ok": result.ok, "detail": result.detail,
             "attempts": result.attempts, "state": record.state.value,
             "nonce_high_water": record.nonce_high_water}
            for device_id, (result, record) in zip(ids, outcomes)
        ]

    async def enroll(self, count: int = 0,
                     device_ids: Optional[Sequence[str]] = None
                     ) -> List[dict]:
        """Enroll new devices (serialised: enrollment builds a full
        simulated device and mutates fleet-wide tables)."""
        self._check_free()
        self._enter()
        try:
            async with self._enroll_lock:
                return await self._run_blocking(
                    self._enroll_sync, count, device_ids)
        finally:
            self._exit()

    def _enroll_sync(self, count, device_ids) -> List[dict]:
        registry = self.fleet.registry
        if device_ids:
            results = [(device_id, self.fleet.enroll(device_id))
                       for device_id in device_ids]
            registry.flush()
        else:
            start = len(registry)
            enrolls = self.fleet.enroll_many(count)
            results = [(f"dev-{start + index:05d}", result)
                       for index, result in enumerate(enrolls)]
        return [{"device": device_id, "ok": result.ok,
                 "detail": result.detail} for device_id, result in results]

    async def start_rollout(self, version: int,
                            config: Optional[CampaignConfig] = None,
                            resume: bool = False,
                            device_ids: Optional[Sequence[str]] = None):
        """Launch a campaign on an executor thread; return
        ``(campaign_id, future)`` as soon as the id is minted.

        The id is published on the event bus (``campaign-start``)
        before the first wave runs; an empty campaign never mints one,
        so the wait also resolves when the campaign future completes.
        """
        self._check_free()
        # Exchanges already in flight finish first: a campaign must see
        # every record at rest, same as the sync path.
        await self._idle.wait()
        loop = asyncio.get_running_loop()
        started = loop.create_future()

        def _capture(doc):
            if not started.done():
                loop.call_soon_threadsafe(
                    lambda: started.done() or started.set_result(
                        doc["campaign"]))

        subscription = self.fleet.events.bus.subscribe(
            _capture, kinds=("campaign-start",))
        self._campaign_id = None
        future = self._campaign_future = asyncio.ensure_future(
            self._run_blocking(
                self.fleet.rollout, version, None, config, 0.0, 0.0,
                resume, device_ids, self.campaign_stop))

        def _unsubscribe(_):
            self.fleet.events.bus.unsubscribe(subscription)

        future.add_done_callback(_unsubscribe)
        await asyncio.wait({started, future},
                           return_when=asyncio.FIRST_COMPLETED)
        if started.done():
            self._campaign_id = started.result()
        else:
            started.cancel()
        return self._campaign_id, future

    # ---- shutdown --------------------------------------------------------

    async def drain(self, timeout: float = 60.0):
        """Graceful-stop sequence: signal the campaign, wait for its
        wave boundary, wait for in-flight exchanges, flush durably."""
        self.campaign_stop.set()
        future = self._campaign_future
        if future is not None and not future.done():
            try:
                await asyncio.wait_for(asyncio.shield(future), timeout)
            except (asyncio.TimeoutError, Exception):  # noqa: BLE001
                pass  # report (or error) surfaced via the future itself
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        await self._run_blocking(self._flush_sync)

    def _flush_sync(self):
        registry = self.fleet.registry
        for record in registry:
            registry.save(record)
        registry.flush()  # also flushes the attached event log

    def close(self):
        self.executor.shutdown(wait=True)
