"""EILID reproduction: execution integrity for low-end IoT devices.

A full-system reproduction of *EILID: Execution Integrity for Low-end
IoT Devices* (DATE 2025): a cycle-accurate MSP430-class simulator, an
assembler/linker toolchain, a mini-C compiler, the CASU active
root-of-trust (hardware monitor + authenticated update), the EILID
instrumenter / trusted runtime / secure shadow stack, the paper's seven
evaluation applications, an attack suite, a verification layer
(model-checked monitor properties + runtime control-flow oracles), a
binary control-flow analysis and trace-attestation layer
(:mod:`repro.cfg`: CFG recovery from linked images, CFI-policy
compilation, branch-trace replay), and a fleet subsystem
(:mod:`repro.fleet`) that enrolls, attests and updates thousands of
simulated devices from the verifier side.

Quickstart (the public scenario API, :mod:`repro.api`)::

    from repro.api import FirmwareSpec, ScenarioSpec, run_scenario

    spec = ScenarioSpec(
        firmware=FirmwareSpec(kind="minicc", variant="eilid",
                              source=open("app.c").read()),
        security="eilid",
    )
    result = run_scenario(spec)  # build -> run -> attest -> verify
    print(result.run.cycles, result.ok, result.to_dict())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

def _read_version() -> str:
    """Single-source the version from pyproject.toml.

    A source checkout (PYTHONPATH=src) reads the adjacent
    pyproject.toml directly; an installed package falls back to its
    distribution metadata.
    """
    import pathlib
    import re

    pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(r'^version\s*=\s*"([^"]+)"',
                          pyproject.read_text(), re.MULTILINE)
        if match:
            return match.group(1)
    except OSError:
        pass
    try:
        from importlib.metadata import version

        return version("eilid-repro")
    except Exception:
        return "0+unknown"


__version__ = _read_version()

__all__ = ["__version__"]
