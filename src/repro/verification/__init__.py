"""Verification layer: model checking and trace oracles.

CASU's monitor is formally verified in the original work; EILID
inherits those guarantees ("we avoid introducing any new hardware
overhead and preserve CASU's formally verified properties", Sec. IV).
This package reproduces that claim at the model level:

* :mod:`repro.verification.fsm` + :mod:`repro.verification.model_checker`
  -- guarded-transition FSMs over boolean signal abstractions, checked
  exhaustively (every reachable state x every input valuation) against
  safety invariants and transition properties, with counterexample
  extraction.
* :mod:`repro.verification.properties` -- the abstract monitor models
  and their LTL-style sub-properties (the VRASED/CASU property
  decomposition), plus deliberately buggy mutants used to demonstrate
  that the checker actually finds violations.
* :mod:`repro.verification.oracles` -- runtime oracles that replay a
  device execution and independently judge P1/P2 (every return/reti
  lands where its call/interrupt said it would), used to cross-check
  both the simulator and the EILID runtime.
"""

from repro.verification.fsm import Fsm, Transition
from repro.verification.model_checker import (
    CheckResult,
    check_invariant,
    check_transition_property,
    reachable_states,
)
from repro.verification.properties import (
    pmem_guard_fsm,
    pmem_guard_fsm_buggy,
    rom_atomicity_fsm,
    w_xor_x_fsm,
    secure_ram_fsm,
    MONITOR_PROPERTIES,
)
from repro.verification.oracles import ControlFlowOracle, OracleDeviation

__all__ = [
    "Fsm",
    "Transition",
    "CheckResult",
    "check_invariant",
    "check_transition_property",
    "reachable_states",
    "pmem_guard_fsm",
    "pmem_guard_fsm_buggy",
    "rom_atomicity_fsm",
    "w_xor_x_fsm",
    "secure_ram_fsm",
    "MONITOR_PROPERTIES",
    "ControlFlowOracle",
    "OracleDeviation",
]
