"""Runtime control-flow oracles.

:class:`ControlFlowOracle` watches a device execution from the outside
(it sees only :class:`StepRecord` streams) and independently judges the
paper's properties:

* **P1** -- every executed return transfers to the address the matching
  call pushed;
* **P2** -- every ``reti`` resumes at the interrupted PC.

On a benign EILID run the oracle must observe zero deviations (the
instrumentation is transparent); on an attacked baseline run the oracle
records exactly the hijack the unprotected device misses.  Tests use it
both ways, and as a cross-check that a device reset always happens *at
or before* the step where the oracle sees the deviation.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cpu.core import StepKind
from repro.isa.operands import AddrMode
from repro.isa.registers import PC, SP


@dataclass(frozen=True)
class OracleDeviation:
    kind: str  # "return" | "reti"
    pc: int
    expected: Optional[int]
    actual: int

    def __str__(self):
        expected = f"0x{self.expected:04x}" if self.expected is not None else "<empty>"
        return (
            f"{self.kind} at 0x{self.pc:04x}: expected {expected}, "
            f"got 0x{self.actual:04x}"
        )


def _is_return(insn):
    """A `ret` after emulation: mov @sp+, pc."""
    return (
        insn is not None
        and insn.mnemonic == "mov"
        and insn.dst is not None
        and insn.dst.mode is AddrMode.REGISTER
        and insn.dst.reg == PC
        and insn.src is not None
        and insn.src.mode is AddrMode.AUTOINC
        and insn.src.reg == SP
    )


@dataclass
class ControlFlowOracle:
    call_stack: List[int] = field(default_factory=list)
    irq_stack: List[int] = field(default_factory=list)
    deviations: List[OracleDeviation] = field(default_factory=list)
    returns_checked: int = 0
    retis_checked: int = 0

    def observe(self, record, violation=None):
        """Feed one step; suitable as a ``Device.run`` observer."""
        if violation is not None:
            # The device reset: abandoned frames will never return.
            self.call_stack.clear()
            self.irq_stack.clear()
            return
        if record.kind is StepKind.INTERRUPT:
            self.irq_stack.append(record.pc)
            return
        if record.kind is not StepKind.INSTRUCTION:
            return
        insn = record.insn
        if insn.mnemonic == "call":
            self.call_stack.append(record.pc + insn.size_bytes)
            return
        if insn.mnemonic == "reti":
            self.retis_checked += 1
            expected = self.irq_stack.pop() if self.irq_stack else None
            if expected != record.next_pc:
                self.deviations.append(
                    OracleDeviation("reti", record.pc, expected, record.next_pc)
                )
            return
        if _is_return(insn):
            self.returns_checked += 1
            expected = self.call_stack.pop() if self.call_stack else None
            if expected != record.next_pc:
                self.deviations.append(
                    OracleDeviation("return", record.pc, expected, record.next_pc)
                )

    @property
    def clean(self):
        return not self.deviations
