"""Guarded-transition FSMs over boolean input signals.

A state machine is a set of named states, a tuple of boolean input
signal names, and ordered guarded transitions.  On each step the first
transition whose guard matches fires; if none matches the machine
self-loops.  This is the abstraction level at which the VRASED/CASU
line verifies its hardware monitors (each monitor is a small Mealy
machine over bus signals).
"""

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Sequence

from repro.errors import VerificationError

Inputs = Dict[str, bool]


@dataclass(frozen=True)
class Transition:
    source: str
    guard: Callable[[Inputs], bool]
    target: str
    label: str = ""


@dataclass
class Fsm:
    name: str
    states: Sequence[str]
    inputs: Sequence[str]
    initial: str
    transitions: List[Transition] = field(default_factory=list)

    def __post_init__(self):
        if self.initial not in self.states:
            raise VerificationError(f"{self.name}: initial state not in states")
        for t in self.transitions:
            if t.source not in self.states or t.target not in self.states:
                raise VerificationError(f"{self.name}: bad transition {t.label}")

    def step(self, state: str, inputs: Inputs) -> str:
        for transition in self.transitions:
            if transition.source == state and transition.guard(inputs):
                return transition.target
        return state

    def input_space(self):
        """All 2^n input valuations."""
        names = list(self.inputs)
        for values in product((False, True), repeat=len(names)):
            yield dict(zip(names, values))

    def run(self, input_trace: Sequence[Inputs]) -> List[str]:
        """States visited on *input_trace* (including the initial one)."""
        state = self.initial
        states = [state]
        for inputs in input_trace:
            state = self.step(state, inputs)
            states.append(state)
        return states
