"""Abstract monitor models and their verified sub-properties.

Each function returns an :class:`Fsm` abstracting one hardware
sub-monitor over boolean signals, together with the safety properties
the CASU/VRASED decomposition attaches to it.  ``MONITOR_PROPERTIES``
bundles (fsm, property list) pairs for the test suite and the
``eilid verify`` CLI command.

The VIOL state models the latched reset line: once entered it is
absorbing (the device resets; the monitor restarts with the MCU).
"""

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.verification.fsm import Fsm, Transition
from repro.verification.model_checker import (
    CheckResult,
    check_invariant,
    check_transition_property,
)

OK = "OK"
VIOL = "VIOL"
IN_ROM = "IN_ROM"


@dataclass
class MonitorProperty:
    name: str
    kind: str  # "invariant" | "transition"
    predicate: Callable
    description: str = ""


def w_xor_x_fsm() -> Fsm:
    """No fetch outside executable regions."""
    return Fsm(
        name="w-xor-x",
        states=(OK, VIOL),
        inputs=("fetch", "addr_executable"),
        initial=OK,
        transitions=[
            Transition(OK, lambda i: i["fetch"] and not i["addr_executable"], VIOL,
                       "fetch-from-nx"),
            Transition(VIOL, lambda i: True, VIOL, "latched"),
        ],
    )


W_XOR_X_PROPERTIES = [
    MonitorProperty(
        "nx-fetch-trips",
        "transition",
        lambda s, i, n: not (s == OK and i["fetch"] and not i["addr_executable"]) or n == VIOL,
        "a fetch from non-executable memory always moves OK -> VIOL",
    ),
    MonitorProperty(
        "no-false-positive",
        "transition",
        lambda s, i, n: not (s == OK and (not i["fetch"] or i["addr_executable"])) or n == OK,
        "benign cycles never trip the monitor",
    ),
    MonitorProperty(
        "violation-latched",
        "transition",
        lambda s, i, n: s != VIOL or n == VIOL,
        "the reset line stays asserted until the MCU resets",
    ),
]


def pmem_guard_fsm() -> Fsm:
    """PMEM writes only from ROM during an open update session."""
    return Fsm(
        name="pmem-guard",
        states=(OK, VIOL),
        inputs=("pmem_write", "pc_in_rom", "update_open"),
        initial=OK,
        transitions=[
            Transition(
                OK,
                lambda i: i["pmem_write"] and not (i["pc_in_rom"] and i["update_open"]),
                VIOL,
                "unauthorised-pmem-write",
            ),
            Transition(VIOL, lambda i: True, VIOL, "latched"),
        ],
    )


def pmem_guard_fsm_buggy() -> Fsm:
    """A deliberately broken guard (checks only the ROM bit) -- used to
    show the checker produces counterexamples, mirroring mutation
    testing of the verified Verilog."""
    return Fsm(
        name="pmem-guard-buggy",
        states=(OK, VIOL),
        inputs=("pmem_write", "pc_in_rom", "update_open"),
        initial=OK,
        transitions=[
            Transition(OK, lambda i: i["pmem_write"] and not i["pc_in_rom"], VIOL,
                       "missing-update-check"),
            Transition(VIOL, lambda i: True, VIOL, "latched"),
        ],
    )


PMEM_GUARD_PROPERTIES = [
    MonitorProperty(
        "unauthorised-write-trips",
        "transition",
        lambda s, i, n: not (
            s == OK and i["pmem_write"] and not (i["pc_in_rom"] and i["update_open"])
        ) or n == VIOL,
        "a PMEM write without (ROM && update session) always trips",
    ),
    MonitorProperty(
        "authorised-write-passes",
        "transition",
        lambda s, i, n: not (
            s == OK and i["pmem_write"] and i["pc_in_rom"] and i["update_open"]
        ) or n == OK,
        "the secure-update copy loop is never reset",
    ),
    MonitorProperty(
        "violation-latched",
        "transition",
        lambda s, i, n: s != VIOL or n == VIOL,
    ),
]


def secure_ram_fsm() -> Fsm:
    """Shadow-stack bank access only while executing in ROM (the EILID
    hardware extension)."""
    return Fsm(
        name="secure-ram-guard",
        states=(OK, VIOL),
        inputs=("secure_ram_access", "pc_in_rom"),
        initial=OK,
        transitions=[
            Transition(OK, lambda i: i["secure_ram_access"] and not i["pc_in_rom"], VIOL,
                       "untrusted-shadow-access"),
            Transition(VIOL, lambda i: True, VIOL, "latched"),
        ],
    )


SECURE_RAM_PROPERTIES = [
    MonitorProperty(
        "untrusted-access-trips",
        "transition",
        lambda s, i, n: not (s == OK and i["secure_ram_access"] and not i["pc_in_rom"])
        or n == VIOL,
        "shadow-stack data is unreachable from untrusted code",
    ),
    MonitorProperty(
        "rom-access-passes",
        "transition",
        lambda s, i, n: not (s == OK and i["secure_ram_access"] and i["pc_in_rom"]) or n == OK,
    ),
    MonitorProperty(
        "violation-latched",
        "transition",
        lambda s, i, n: s != VIOL or n == VIOL,
    ),
]


def rom_atomicity_fsm() -> Fsm:
    """ROM entered only at the entry point, left only from the exit
    section, never interrupted while inside."""
    return Fsm(
        name="rom-atomicity",
        states=(OK, IN_ROM, VIOL),
        inputs=("next_in_rom", "at_entry", "in_exit", "irq"),
        initial=OK,
        transitions=[
            # Outside -> inside must land on the entry point.
            Transition(OK, lambda i: i["next_in_rom"] and not i["at_entry"], VIOL,
                       "mid-rom-entry"),
            Transition(OK, lambda i: i["next_in_rom"] and i["at_entry"], IN_ROM, "enter"),
            # Interrupt acceptance while inside is a violation.
            Transition(IN_ROM, lambda i: i["irq"], VIOL, "irq-in-rom"),
            # Inside -> outside must come from the exit section.
            Transition(IN_ROM, lambda i: not i["next_in_rom"] and not i["in_exit"], VIOL,
                       "mid-rom-exit"),
            Transition(IN_ROM, lambda i: not i["next_in_rom"] and i["in_exit"], OK, "leave"),
            Transition(VIOL, lambda i: True, VIOL, "latched"),
        ],
    )


ROM_ATOMICITY_PROPERTIES = [
    MonitorProperty(
        "entry-only-at-entry-point",
        "transition",
        lambda s, i, n: not (s == OK and i["next_in_rom"] and not i["at_entry"]) or n == VIOL,
        "jumping into the middle of the ROM resets",
    ),
    MonitorProperty(
        "exit-only-from-exit-section",
        "transition",
        lambda s, i, n: not (
            s == IN_ROM and not i["irq"] and not i["next_in_rom"] and not i["in_exit"]
        ) or n == VIOL,
        "leaving the ROM other than through `leave` resets",
    ),
    MonitorProperty(
        "no-interrupt-inside",
        "transition",
        lambda s, i, n: not (s == IN_ROM and i["irq"]) or n == VIOL,
        "secure execution is atomic w.r.t. interrupts",
    ),
    MonitorProperty(
        "violation-latched",
        "transition",
        lambda s, i, n: s != VIOL or n == VIOL,
    ),
]


MONITOR_PROPERTIES: List[Tuple[Fsm, List[MonitorProperty]]] = [
    (w_xor_x_fsm(), W_XOR_X_PROPERTIES),
    (pmem_guard_fsm(), PMEM_GUARD_PROPERTIES),
    (secure_ram_fsm(), SECURE_RAM_PROPERTIES),
    (rom_atomicity_fsm(), ROM_ATOMICITY_PROPERTIES),
]


def check_all() -> List[CheckResult]:
    """Check every monitor property; returns one result per property."""
    results = []
    for fsm, properties in MONITOR_PROPERTIES:
        for prop in properties:
            name = f"{fsm.name}/{prop.name}"
            if prop.kind == "invariant":
                results.append(check_invariant(fsm, prop.predicate, name))
            else:
                results.append(check_transition_property(fsm, prop.predicate, name))
    return results
