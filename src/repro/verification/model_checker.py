"""Explicit-state model checker for monitor FSMs.

Two property classes cover what the CASU lineage proves about its
monitors:

* **state invariants** -- a predicate that must hold in every reachable
  state (``G inv`` over the state space);
* **transition properties** -- a predicate over
  ``(state, inputs, next_state)`` that must hold for every reachable
  transition (``G (antecedent -> X consequent)`` patterns, e.g. "an
  unauthorised PMEM write in a non-violation state moves the machine to
  the violation state").

The input alphabet is exhaustively enumerated (monitors have <= 5
boolean signals, so the product space is tiny) and counterexample paths
are reconstructed for failures.
"""

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.verification.fsm import Fsm, Inputs


@dataclass
class CheckResult:
    holds: bool
    property_name: str
    counterexample: Optional[List[Tuple[str, Optional[Inputs]]]] = None
    states_explored: int = 0

    def __str__(self):
        if self.holds:
            return f"{self.property_name}: HOLDS ({self.states_explored} states)"
        trace = " -> ".join(
            state + ("" if inputs is None else f" {inputs}")
            for state, inputs in self.counterexample
        )
        return f"{self.property_name}: FAILS: {trace}"


def _bfs(fsm: Fsm):
    """Reachable states with predecessor links for path reconstruction."""
    parents: Dict[str, Optional[Tuple[str, Inputs]]] = {fsm.initial: None}
    queue = deque([fsm.initial])
    while queue:
        state = queue.popleft()
        for inputs in fsm.input_space():
            nxt = fsm.step(state, inputs)
            if nxt not in parents:
                parents[nxt] = (state, inputs)
                queue.append(nxt)
    return parents


def _path_to(parents, state) -> List[Tuple[str, Optional[Inputs]]]:
    path = []
    cursor: Optional[str] = state
    while cursor is not None:
        link = parents[cursor]
        if link is None:
            path.append((cursor, None))
            cursor = None
        else:
            parent, inputs = link
            path.append((cursor, inputs))
            cursor = parent
    path.reverse()
    return path


def reachable_states(fsm: Fsm):
    return set(_bfs(fsm))


def check_invariant(fsm: Fsm, predicate: Callable[[str], bool], name="invariant") -> CheckResult:
    parents = _bfs(fsm)
    for state in parents:
        if not predicate(state):
            return CheckResult(False, name, _path_to(parents, state), len(parents))
    return CheckResult(True, name, states_explored=len(parents))


def check_transition_property(
    fsm: Fsm,
    predicate: Callable[[str, Inputs, str], bool],
    name="transition-property",
) -> CheckResult:
    parents = _bfs(fsm)
    for state in parents:
        for inputs in fsm.input_space():
            nxt = fsm.step(state, inputs)
            if not predicate(state, inputs, nxt):
                path = _path_to(parents, state)
                path.append((nxt, inputs))
                return CheckResult(False, name, path, len(parents))
    return CheckResult(True, name, states_explored=len(parents))
