"""UART: TX logging, RX injection queue, status register, RX interrupt.

The RX side takes a schedule of ``(cycle, byte)`` pairs; once the device
clock passes a pair's cycle the byte becomes readable (and vector 10 is
raised if interrupts were requested via :attr:`rx_irq_enabled`).
"""

from collections import deque
from typing import Iterable, Tuple

from repro.peripherals import ports
from repro.peripherals.base import Peripheral


class Uart(Peripheral):
    name = "uart"
    _log_attrs = ("tx_log",)

    def __init__(self, rx_schedule: Iterable[Tuple[int, int]] = (), rx_irq_enabled=False):
        super().__init__()
        self._rx_schedule = deque(sorted(rx_schedule))
        self._rx_fifo = deque()
        self.rx_irq_enabled = rx_irq_enabled
        self.tx_log = []

    def _register(self, bus):
        bus.register_peripheral_word(ports.UART_TX, write=self._write_tx)
        bus.register_peripheral_word(ports.UART_RX, read=self._read_rx)
        bus.register_peripheral_word(ports.UART_STATUS, read=self._read_status)

    def _write_tx(self, value):
        byte = value & 0xFF
        self.tx_log.append((self.now, byte))
        self.emit("uart.tx", byte)

    def _read_rx(self):
        if self._rx_fifo:
            return self._rx_fifo.popleft()
        return 0

    def _read_status(self):
        status = ports.UART_TX_READY
        if self._rx_fifo:
            status |= ports.UART_RX_AVAILABLE
        return status

    def tick(self, cycles):
        super().tick(cycles)
        while self._rx_schedule and self._rx_schedule[0][0] <= self.now:
            _, byte = self._rx_schedule.popleft()
            self._rx_fifo.append(byte & 0xFF)
            if self.rx_irq_enabled:
                self.raise_irq(ports.UART_VECTOR)

    def reset(self):
        self._rx_fifo.clear()

    def _snapshot_extra(self):
        return {
            "rx_schedule": [list(pair) for pair in self._rx_schedule],
            "rx_fifo": list(self._rx_fifo),
            "rx_irq_enabled": self.rx_irq_enabled,
            "tx_log": [list(pair) for pair in self.tx_log],
        }

    def _restore_extra(self, state):
        self._rx_schedule = deque(tuple(pair) for pair in state["rx_schedule"])
        self._rx_fifo = deque(state["rx_fifo"])
        self.rx_irq_enabled = bool(state["rx_irq_enabled"])
        self.tx_log[:] = [tuple(pair) for pair in state["tx_log"]]

    @property
    def tx_bytes(self):
        return bytes(byte for _, byte in self.tx_log)
