"""GPIO port: OUT drives external lines (logged), IN samples a schedule."""

from typing import Callable, Optional

from repro.peripherals import ports
from repro.peripherals.base import Peripheral


class Gpio(Peripheral):
    name = "gpio"

    def __init__(self, input_schedule: Optional[Callable[[int], int]] = None):
        """*input_schedule* maps the current cycle to the IN register value."""
        super().__init__()
        self.out = 0
        self.direction = 0
        self.input_schedule = input_schedule or (lambda cycle: 0)

    def _register(self, bus):
        bus.register_peripheral_word(ports.GPIO_OUT, read=lambda: self.out, write=self._write_out)
        bus.register_peripheral_word(ports.GPIO_IN, read=self._read_in)
        bus.register_peripheral_word(
            ports.GPIO_DIR, read=lambda: self.direction, write=self._write_dir
        )

    def _write_out(self, value):
        self.out = value & 0xFFFF
        self.emit("gpio.out", self.out)

    def _write_dir(self, value):
        self.direction = value & 0xFFFF

    def _read_in(self):
        return self.input_schedule(self.now) & 0xFFFF

    def reset(self):
        self.out = 0
        self.direction = 0

    def _snapshot_extra(self):
        return {"out": self.out, "direction": self.direction}

    def _restore_extra(self, state):
        self.out = state["out"]
        self.direction = state["direction"]
