"""16-bit up-counter with compare interrupt (Timer_A flavour).

CTL bit0 enables counting (one count per CPU cycle), bit1 enables the
compare interrupt.  When COUNT reaches CCR the counter wraps to zero
and, if enabled, vector 9 is requested.
"""

from repro.peripherals import ports
from repro.peripherals.base import Peripheral


class Timer(Peripheral):
    name = "timer"

    def __init__(self):
        super().__init__()
        self.ctl = 0
        self.count = 0
        self.ccr = 0xFFFF
        self.fire_count = 0

    def _register(self, bus):
        bus.register_peripheral_word(ports.TIMER_CTL, read=lambda: self.ctl, write=self._write_ctl)
        bus.register_peripheral_word(
            ports.TIMER_COUNT, read=lambda: self.count, write=self._write_count
        )
        bus.register_peripheral_word(ports.TIMER_CCR, read=lambda: self.ccr, write=self._write_ccr)

    def _write_ctl(self, value):
        self.ctl = value & 0xFFFF

    def _write_count(self, value):
        self.count = value & 0xFFFF

    def _write_ccr(self, value):
        self.ccr = value & 0xFFFF

    def tick(self, cycles):
        super().tick(cycles)
        if not self.ctl & ports.TIMER_ENABLE:
            return
        self.count += cycles
        while self.count >= self.ccr and self.ccr > 0:
            self.count -= self.ccr
            self.fire_count += 1
            if self.ctl & ports.TIMER_IRQ_ENABLE:
                self.raise_irq(ports.TIMER_VECTOR)

    def reset(self):
        self.ctl = 0
        self.count = 0
        self.ccr = 0xFFFF

    def _snapshot_extra(self):
        return {"ctl": self.ctl, "count": self.count, "ccr": self.ccr,
                "fire_count": self.fire_count}

    def _restore_extra(self, state):
        self.ctl = state["ctl"]
        self.count = state["count"]
        self.ccr = state["ccr"]
        self.fire_count = state["fire_count"]
