"""ADC with deterministic per-channel stimulus schedules.

Writing CTL with the start bit latches a sample of the selected channel
into DATA.  Conversion is modelled as instantaneous (the real ~µs
conversion time is negligible at the granularity Table IV measures; the
applications poll anyway, so control flow is identical).
"""

from typing import Callable, Dict, Optional

from repro.peripherals import ports
from repro.peripherals.base import Peripheral


class AdcSchedule:
    """Deterministic sample source: value = f(channel, sample_index).

    Schedules are indexed by the per-channel conversion count, not by
    time: the N-th sample of a channel has the same value no matter when
    the firmware asks for it.  This keeps the original and instrumented
    variants of an application observationally identical even though the
    instrumented one runs slower -- the property the Table IV
    equivalence tests rely on.
    """

    def __init__(self, channels: Optional[Dict[int, Callable[[int], int]]] = None):
        self.channels = channels or {}

    def sample(self, channel, index):
        fn = self.channels.get(channel)
        if fn is not None:
            return fn(index) & 0x3FF
        phase = (index * 16 + 37 * channel) % 1024
        return phase if phase < 512 else 1023 - phase

    @staticmethod
    def constant(value):
        return lambda index: value

    @staticmethod
    def steps(period, values):
        """Piecewise-constant: hold each value for *period* samples."""

        def fn(index):
            return values[(index // period) % len(values)]

        return fn

    @staticmethod
    def ramp(period, low=0, high=1023):
        span = max(1, high - low)

        def fn(index):
            return low + (index % period) * span // max(1, period - 1)

        return fn


class Adc(Peripheral):
    name = "adc"

    def __init__(self, schedule: Optional[AdcSchedule] = None):
        super().__init__()
        self.schedule = schedule or AdcSchedule()
        self.ctl = 0
        self.data = 0
        self.sample_count = 0
        self.channel_counts: Dict[int, int] = {}

    def _register(self, bus):
        bus.register_peripheral_word(ports.ADC_CTL, read=lambda: self.ctl, write=self._write_ctl)
        bus.register_peripheral_word(ports.ADC_DATA, read=lambda: self.data)

    def _write_ctl(self, value):
        self.ctl = value & 0xFFFF
        if value & ports.ADC_START:
            channel = value & ports.ADC_CHANNEL_MASK
            index = self.channel_counts.get(channel, 0)
            self.channel_counts[channel] = index + 1
            self.data = self.schedule.sample(channel, index)
            self.sample_count += 1

    def reset(self):
        self.ctl = 0
        self.data = 0

    def _snapshot_extra(self):
        # Channel keys become strings through JSON; restore converts back.
        return {
            "ctl": self.ctl,
            "data": self.data,
            "sample_count": self.sample_count,
            "channel_counts": {str(ch): n for ch, n in self.channel_counts.items()},
        }

    def _restore_extra(self, state):
        self.ctl = state["ctl"]
        self.data = state["data"]
        self.sample_count = state["sample_count"]
        self.channel_counts = {int(ch): n
                               for ch, n in state["channel_counts"].items()}
