"""Character LCD controller (HD44780 flavour).

Command and data writes are logged; each write makes the controller
busy for a fixed number of cycles, and well-behaved firmware polls the
STATUS busy flag before the next write -- that polling loop is a large
share of the LcdSensor application's run time, which is why its
instrumentation overhead is the lowest in Table IV.
"""

from repro.peripherals import ports
from repro.peripherals.base import Peripheral

BUSY_CYCLES_COMMAND = 120
BUSY_CYCLES_DATA = 40


class Lcd(Peripheral):
    name = "lcd"
    _log_attrs = ("command_log", "data_log")

    def __init__(self):
        super().__init__()
        self.busy_until = 0
        self.command_log = []
        self.data_log = []

    def _register(self, bus):
        bus.register_peripheral_word(ports.LCD_CMD, write=self._write_cmd)
        bus.register_peripheral_word(ports.LCD_DATA, write=self._write_data)
        bus.register_peripheral_word(ports.LCD_STATUS, read=self._read_status)

    def _write_cmd(self, value):
        self.command_log.append((self.now, value & 0xFF))
        self.emit("lcd.cmd", value & 0xFF)
        self.busy_until = self.now + BUSY_CYCLES_COMMAND

    def _write_data(self, value):
        self.data_log.append((self.now, value & 0xFF))
        self.emit("lcd.data", value & 0xFF)
        self.busy_until = self.now + BUSY_CYCLES_DATA

    def _read_status(self):
        return ports.LCD_BUSY if self.now < self.busy_until else 0

    def reset(self):
        self.busy_until = 0

    def _snapshot_extra(self):
        return {
            "busy_until": self.busy_until,
            "command_log": [list(pair) for pair in self.command_log],
            "data_log": [list(pair) for pair in self.data_log],
        }

    def _restore_extra(self, state):
        self.busy_until = state["busy_until"]
        self.command_log[:] = [tuple(pair) for pair in state["command_log"]]
        self.data_log[:] = [tuple(pair) for pair in state["data_log"]]

    @property
    def display_bytes(self):
        return bytes(byte for _, byte in self.data_log)
