"""Test-harness ports: completion signalling and the violation trigger.

DONE is the cooperative end-of-workload marker the applications write
when their scripted scenario completes; the device run loop stops there
and the cycle count becomes the Table IV "running time".

VIOLATION is the EILID reset trigger: the trusted ROM writes a reason
code here when a CFI check fails, and the hardware monitor converts the
write into a device reset.  Application code writing to it is itself a
violation (only secure-ROM code may touch it) -- enforced by the
monitor, not by this peripheral.
"""

from repro.peripherals import ports
from repro.peripherals.base import Peripheral


class HarnessPorts(Peripheral):
    name = "harness"
    _log_attrs = ("violation_writes",)

    def __init__(self):
        super().__init__()
        self.done = False
        self.done_value = None
        self.violation_writes = []

    def _register(self, bus):
        bus.register_peripheral_word(ports.DONE_PORT, write=self._write_done)
        bus.register_peripheral_word(ports.VIOLATION_PORT, write=self._write_violation)

    def _write_done(self, value):
        self.done = True
        self.done_value = value & 0xFFFF
        self.emit("harness.done", value)

    def _write_violation(self, value):
        self.violation_writes.append((self.now, value & 0xFFFF))
        self.emit("harness.violation", value)

    def snapshot_logs(self):
        state = super().snapshot_logs()
        state["done"] = (self.done, self.done_value)
        return state

    def rollback_logs(self, state):
        super().rollback_logs(state)
        self.done, self.done_value = state["done"]

    def reset(self):
        # done latches across reset so the harness can observe that the
        # workload finished before a late violation, if any.
        pass

    def _snapshot_extra(self):
        return {
            "done": self.done,
            "done_value": self.done_value,
            "violation_writes": [list(pair) for pair in self.violation_writes],
        }

    def _restore_extra(self, state):
        self.done = bool(state["done"])
        self.done_value = state["done_value"]
        self.violation_writes[:] = [tuple(pair)
                                    for pair in state["violation_writes"]]
