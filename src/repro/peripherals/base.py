"""Peripheral base class."""

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class IoEvent:
    """One externally observable output event."""

    cycle: int
    port: str
    value: int


class Peripheral:
    """Base: register handlers on the bus, advance with CPU cycles.

    ``self.now`` is the device cycle counter, updated by the device
    before peripheral handlers can run, so event timestamps and
    schedules are cycle-accurate.
    """

    name = "peripheral"

    def __init__(self):
        self.now = 0
        self.events: List[IoEvent] = []
        self._ic = None

    def attach(self, bus, interrupt_controller=None):
        self._ic = interrupt_controller
        self._register(bus)

    def _register(self, bus):
        raise NotImplementedError

    def tick(self, cycles):
        """Advance simulated time by *cycles* CPU cycles."""
        self.now += cycles

    def reset(self):
        """Device reset: clear transient state but keep the event log.

        Event logs survive reset on purpose: they are the experiment's
        observation channel, not device state.
        """

    # Additional list-valued log attributes (subclasses extend); all are
    # rolled back when a monitor violation voids the in-flight step.
    _log_attrs = ()

    def snapshot_logs(self):
        """Capture log positions before a CPU step (for violation rollback)."""
        state = {"events": len(self.events)}
        for attr in self._log_attrs:
            state[attr] = len(getattr(self, attr))
        return state

    def rollback_logs(self, state):
        """Drop log entries appended by a voided (violating) step."""
        del self.events[state["events"]:]
        for attr in self._log_attrs:
            del getattr(self, attr)[state[attr]:]

    # ---- full-state snapshot/restore (see repro.snapshot) ------------------
    #
    # Distinct from snapshot_logs/rollback_logs above: those mark log
    # *positions* for single-step violation rollback; these capture the
    # peripheral's complete mutable state as JSON types so a restored
    # device resumes mid-transaction (latched reads, pending ticks, the
    # DONE latch) without replaying or dropping events.  Construction-time
    # configuration -- stimulus schedules, callables -- is NOT state: the
    # restore target is built with the same configuration.

    def snapshot_state(self):
        state = {
            "now": self.now,
            "events": [[e.cycle, e.port, e.value] for e in self.events],
        }
        state.update(self._snapshot_extra())
        return state

    def restore_state(self, state):
        self.now = state["now"]
        self.events[:] = [IoEvent(cycle, port, value)
                          for cycle, port, value in state["events"]]
        self._restore_extra(state)

    def _snapshot_extra(self):
        """Subclass hook: additional mutable fields, JSON-safe."""
        return {}

    def _restore_extra(self, state):
        """Subclass hook: adopt the fields _snapshot_extra captured."""

    def emit(self, port, value):
        self.events.append(IoEvent(self.now, port, value & 0xFFFF))

    def raise_irq(self, vector):
        if self._ic is not None:
            self._ic.request(vector)

    # ---- trace helpers -----------------------------------------------------

    def event_values(self, port=None):
        return [e.value for e in self.events if port is None or e.port == port]
