"""Ultrasonic ranger front-end (HC-SR04 flavour).

Firmware writes TRIG; after a fixed transit delay the ECHO line goes
high for a width proportional to the scheduled target distance.  The
firmware measures the pulse width by polling ECHO and counting, exactly
like the Seeed UltrasonicRanger sketch the paper uses.
"""

from typing import Callable, Optional

from repro.peripherals import ports
from repro.peripherals.base import Peripheral

TRANSIT_DELAY_CYCLES = 220


class Ultrasonic(Peripheral):
    name = "ultrasonic"

    def __init__(self, distance_schedule: Optional[Callable[[int], int]] = None):
        """*distance_schedule* maps the trigger index (0, 1, 2, ...) to the
        echo width in cycles -- indexed by measurement, not by time, so
        original and instrumented firmware see identical distances."""
        super().__init__()
        self.distance_schedule = distance_schedule or (
            lambda index: 400 + (index % 5) * 120
        )
        self.echo_start = None
        self.echo_end = None
        self.trigger_count = 0

    def _register(self, bus):
        bus.register_peripheral_word(ports.ULTRA_TRIG, write=self._write_trig)
        bus.register_peripheral_word(ports.ULTRA_ECHO, read=self._read_echo)

    def _write_trig(self, value):
        if value & 1:
            width = max(1, self.distance_schedule(self.trigger_count))
            self.echo_start = self.now + TRANSIT_DELAY_CYCLES
            self.echo_end = self.echo_start + width
            self.trigger_count += 1
            self.emit("ultra.trig", self.trigger_count)

    def _read_echo(self):
        if self.echo_start is None:
            return 0
        return 1 if self.echo_start <= self.now < self.echo_end else 0

    def reset(self):
        self.echo_start = None
        self.echo_end = None

    def _snapshot_extra(self):
        return {"echo_start": self.echo_start, "echo_end": self.echo_end,
                "trigger_count": self.trigger_count}

    def _restore_extra(self, state):
        self.echo_start = state["echo_start"]
        self.echo_end = state["echo_end"]
        self.trigger_count = state["trigger_count"]
