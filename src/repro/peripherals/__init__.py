"""Memory-mapped peripherals of the simulated device.

Each peripheral owns a handful of 16-bit registers in the peripheral
region, reacts to CPU reads/writes through bus handlers, advances with
CPU cycles via :meth:`tick`, and logs externally-observable events
(GPIO levels, UART bytes, LCD writes) so tests can assert that an
instrumented application behaves identically to the original.

Register map (see :mod:`repro.peripherals.ports` for the constants):

======  ==================  =========================================
base    peripheral          registers
======  ==================  =========================================
0x0010  GPIO                OUT, IN, DIR
0x0020  Timer               CTL, COUNT, CCR        (IRQ vector 9)
0x0030  ADC                 CTL, DATA
0x0040  UART                TX, RX, STATUS         (IRQ vector 10)
0x0050  LCD                 CMD, DATA, STATUS
0x0060  Ultrasonic          TRIG, ECHO
0x0070  Harness             DONE, VIOLATION
======  ==================  =========================================
"""

from repro.peripherals.ports import (
    GPIO_OUT,
    GPIO_IN,
    GPIO_DIR,
    TIMER_CTL,
    TIMER_COUNT,
    TIMER_CCR,
    TIMER_VECTOR,
    ADC_CTL,
    ADC_DATA,
    UART_TX,
    UART_RX,
    UART_STATUS,
    UART_VECTOR,
    LCD_CMD,
    LCD_DATA,
    LCD_STATUS,
    ULTRA_TRIG,
    ULTRA_ECHO,
    DONE_PORT,
    VIOLATION_PORT,
)
from repro.peripherals.base import Peripheral
from repro.peripherals.gpio import Gpio
from repro.peripherals.timer import Timer
from repro.peripherals.adc import Adc, AdcSchedule
from repro.peripherals.uart import Uart
from repro.peripherals.lcd import Lcd
from repro.peripherals.ultrasonic import Ultrasonic
from repro.peripherals.harness import HarnessPorts

__all__ = [
    "Peripheral",
    "Gpio",
    "Timer",
    "Adc",
    "AdcSchedule",
    "Uart",
    "Lcd",
    "Ultrasonic",
    "HarnessPorts",
    "GPIO_OUT",
    "GPIO_IN",
    "GPIO_DIR",
    "TIMER_CTL",
    "TIMER_COUNT",
    "TIMER_CCR",
    "TIMER_VECTOR",
    "ADC_CTL",
    "ADC_DATA",
    "UART_TX",
    "UART_RX",
    "UART_STATUS",
    "UART_VECTOR",
    "LCD_CMD",
    "LCD_DATA",
    "LCD_STATUS",
    "ULTRA_TRIG",
    "ULTRA_ECHO",
    "DONE_PORT",
    "VIOLATION_PORT",
]
