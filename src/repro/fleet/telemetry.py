"""Fleet-level telemetry: fold per-device evidence into aggregates.

Devices report :class:`~repro.casu.monitor.Violation` reasons inside
their attestation reports; campaigns report per-device update
outcomes; the transport reports channel counters.  This module folds
all of it into counters and histograms, rendered through the same
:mod:`repro.eval.report` helpers the paper tables use, so ``fleet
status`` output sits next to Table IV output without a new renderer.
"""

import threading
from collections import Counter
from typing import Dict, Optional, Tuple

from repro.casu.update import UpdateStatus
from repro.eval.report import render_bars, render_table
from repro.obs.metrics import METRICS


def parse_violation_totals(items) -> Tuple[Dict[str, int], int]:
    """Decode 'reason=count' cumulative totals; count malformed entries.

    Returns ``(totals, malformed)``.  The entries are MAC'd, so a
    malformed one is defensive-only -- but silently dropping it would
    hide a device-side encoder bug, so callers surface the count.
    """
    totals: Dict[str, int] = {}
    malformed = 0
    for item in items:
        reason, _, count = item.partition("=")
        try:
            totals[reason] = int(count)
        except ValueError:
            malformed += 1
    return totals, malformed


class FleetTelemetry:
    """Thread-safe aggregation (campaign workers feed it in parallel).

    Besides its own counters, every fold mirrors into the process
    metrics registry (:data:`repro.obs.metrics.METRICS`) and -- when an
    event log is attached -- emits ``violation-delta`` events, so the
    one-shot aggregate, the metrics surface and the longitudinal DB
    never disagree about what was observed.
    """

    def __init__(self, events=None):
        self._lock = threading.Lock()
        self.events = events  # optional repro.obs.events.EventLog
        self.violations = Counter()  # ViolationReason.value -> count
        self.update_statuses = Counter()  # UpdateStatus.value / "unreachable"
        self.attest_outcomes = Counter()  # "ok" / "unreachable" / ...
        self.attempt_histogram = Counter()  # round-trip attempts -> count
        self.resets = 0
        self.attestations = 0
        # Entries in a report's violation_totals that failed to parse
        # as 'reason=count'.  The drop is defensive (the list is MAC'd)
        # but must stay observable -- see parse_violation_totals.
        self.malformed_totals = 0
        # Reports carry *cumulative* per-reason violation totals (the
        # reasons window itself is a bounded ring on the device); fold
        # only the delta we have not seen from that device yet.
        self._seen = {}  # device_id -> (per-reason totals dict, resets_seen)

    # ---- ingestion -------------------------------------------------------

    def seed_baseline(self, device_id: str, totals: Dict[str, int],
                      resets: int):
        """Re-sync one device's delta baseline from a durable record.

        A restored fleet's devices report the same cumulative totals
        they always did; without this, the first post-restart heartbeat
        would re-fold the device's entire violation history as if it
        just happened.  Never overwrites a baseline learned live.
        """
        with self._lock:
            if device_id not in self._seen:
                self._seen[device_id] = (dict(totals), resets)

    def record_attest(self, device_id: str, result):
        """Fold one AttestResult (protocol calls this per heartbeat)."""
        deltas: Dict[str, int] = {}
        reset_delta = 0
        with self._lock:
            self.attestations += 1
            self.attest_outcomes[result.detail or "ok"] += 1
            self.attempt_histogram[result.attempts] += 1
            if result.report is not None:
                report = result.report
                totals, malformed = parse_violation_totals(
                    report.violation_totals)
                self.malformed_totals += malformed
                seen_totals, seen_resets = self._seen.get(device_id, ({}, 0))
                for reason, count in totals.items():
                    delta = max(0, count - seen_totals.get(reason, 0))
                    if delta:
                        self.violations[reason] += delta
                        deltas[reason] = delta
                reset_delta = max(0, report.reset_count - seen_resets)
                self.resets += reset_delta
                self._seen[device_id] = (totals, report.reset_count)
                if malformed and METRICS.enabled:
                    METRICS.inc("fleet.malformed_totals", malformed)
        if METRICS.enabled:
            METRICS.inc("fleet.attestations")
            if not result.ok:
                METRICS.inc("fleet.attest_failures")
            if deltas:
                METRICS.inc("fleet.violations", sum(deltas.values()))
        if self.events is not None and (deltas or reset_delta):
            self.events.emit("violation-delta", device=device_id,
                             deltas=deltas, resets=reset_delta)

    def record_update(self, device_id: str, status: Optional[UpdateStatus],
                      attempts: int, detail: str = ""):
        """Fold one offer outcome.  *detail* labels the status-less
        failures: "unreachable", "bad-ack-mac" (forged ack MAC --
        counted separately so an active attacker on the link is never
        mistaken for packet loss) or "replay"."""
        with self._lock:
            label = status.value if status else (detail or "unreachable")
            self.update_statuses[label] += 1
            self.attempt_histogram[attempts] += 1
        if METRICS.enabled:
            METRICS.inc("fleet.updates")
            if status is not UpdateStatus.APPLIED:
                METRICS.inc("fleet.update_failures")

    # ---- aggregates ------------------------------------------------------

    def rejection_count(self) -> int:
        """Every non-applied outcome, including unreachable devices."""
        return sum(count for status, count in self.update_statuses.items()
                   if status != UpdateStatus.APPLIED.value)

    def device_rejection_count(self) -> int:
        """Rejections issued by the device's own ROM checks (MAC/version)."""
        by_value = {status.value: status for status in UpdateStatus}
        return sum(count for value, count in self.update_statuses.items()
                   if value in by_value and by_value[value].rejected)

    def as_dict(self) -> dict:
        return {
            "attestations": self.attestations,
            "attest_outcomes": dict(self.attest_outcomes),
            "update_statuses": dict(self.update_statuses),
            "violations": dict(self.violations),
            "resets": self.resets,
            "malformed_totals": self.malformed_totals,
            "attempts": dict(self.attempt_histogram),
        }

    # ---- rendering -------------------------------------------------------

    def render(self, registry=None) -> str:
        blocks = []
        if registry is not None:
            summary = registry.summary()
            rows = [(state, count) for state, count in
                    sorted(summary["states"].items())]
            blocks.append(render_table(
                ("state", "devices"), rows,
                title=f"fleet of {summary['devices']} devices"))
            versions = sorted(registry.version_histogram().items())
            if versions:
                blocks.append(render_bars(
                    [f"v{version}" for version, _ in versions],
                    [count for _, count in versions],
                    title="firmware versions"))
        if self.update_statuses:
            rows = sorted(self.update_statuses.items())
            blocks.append(render_table(("update status", "count"), rows,
                                       title="update outcomes"))
        if self.attest_outcomes:
            rows = sorted(self.attest_outcomes.items())
            blocks.append(render_table(("attest outcome", "count"), rows,
                                       title=f"attestations ({self.attestations})"))
        if self.violations:
            reasons = sorted(self.violations.items())
            blocks.append(render_bars(
                [reason for reason, _ in reasons],
                [count for _, count in reasons],
                title="monitor violations by reason"))
        if self.malformed_totals:
            blocks.append(f"{self.malformed_totals} malformed violation-total "
                          f"entr{'y' if self.malformed_totals == 1 else 'ies'} "
                          f"dropped (defensive parse)")
        if not blocks:
            return "no telemetry recorded"
        return "\n\n".join(blocks)
