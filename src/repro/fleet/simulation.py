"""N simulated EILID devices plus the verifier that manages them.

:class:`FleetSimulation` is the one-stop harness behind ``fleet``
CLI commands, the demo, the benchmarks and the tests: it builds the
device firmware ONCE (the whole fleet shares the immutable program
image, each device gets its own bus/CPU/monitor and its own derived
key), enrolls every device over the simulated transport, and exposes
attestation sweeps and staged rollout campaigns.

Adversarial knobs used by tests and the demo:

* ``tamper_fraction``  -- that share of devices receives a payload-
  flipped package (models a man-in-the-middle on their links); the
  device-side MAC check must reject every one.
* ``rollback_fraction`` -- that share receives a correctly signed but
  stale-version package (models a replay/downgrade attempt); the
  device-side monotonic version check must reject every one.
* ``corrupt_firmware`` -- backdoor-flips a word of one device's PMEM
  and lets it run into the fault (models physical tamper/bitrot); the
  next heartbeat shows the violation log and the hash mismatch
  quarantines the device.

Durability and sharding: pass ``store=`` (a path or a
:class:`~repro.fleet.store.RegistryStore`) and the registry loads the
previous run's records -- already-enrolled devices are *restored* (a
fresh replica is rebuilt from the shared FirmwareSpec, fast-forwarded
to the record's firmware version, applied payloads and logical clock)
instead of re-enrolled, so attest/rollout pick up exactly where the
killed process stopped.  ``rollout(..., resume=True)`` additionally
skips devices whose durable record already shows the target version.
With ``CampaignConfig.backend == "process"`` the campaign ships
record snapshots to worker processes; :func:`_run_shard` below is the
worker: it rebuilds its shard's devices from the same FirmwareSpec +
fleet seed and returns mutated record documents for the parent to
merge.
"""

from typing import Dict, List, Optional, Sequence

from repro.api.firmware import build_firmware
from repro.api.spec import FirmwareSpec
from repro.casu.update import UpdatePackage
from repro.device import Device, build_device
from repro.fleet.campaign import CampaignConfig, CampaignReport, RolloutCampaign
from repro.fleet.protocol import AttestResult, DeviceAgent, VerifierSession
from repro.fleet.registry import DeviceRecord, FleetError, FleetRegistry
from repro.fleet.store import (
    META_FIRMWARE,
    META_PACKAGES,
    open_store,
    record_from_dict,
)
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.transport import Transport
from repro.obs.events import MemoryEventLog, open_event_log
from repro.obs.metrics import METRICS

# A fleet node's firmware: report a reading, signal DONE, idle.
FLEET_APP = """
    .text
    .global main
main:
    mov #42, &0x0200
    mov #1, &0x0070
idle:
    jmp idle
"""

UPDATE_TARGET = 0xE800  # free PMEM past the tiny resident app


def fleet_firmware_spec() -> FirmwareSpec:
    """The default fleet node firmware as a declarative spec.

    Routing through :func:`repro.api.firmware.build_firmware` means the
    shared image is built once per process and the cache is shared with
    every other scenario that names the same firmware.
    """
    return FirmwareSpec(kind="asm", source=FLEET_APP, variant="original",
                        name="fleet-node", link_rom=True)


def default_payload(version: int, words=8) -> bytes:
    """A recognisable per-version payload (word-aligned)."""
    return b"".join(
        ((version * 0x0100 + index) & 0xFFFF).to_bytes(2, "little")
        for index in range(words)
    )


class FleetSimulation:
    """A registry, a transport, and one real Device per enrolled id."""

    def __init__(self, size=0, security="casu", platform="TI MSP430",
                 loss=0.0, reorder=0.0, seed=0, max_attempts=4,
                 verify_traces=False, firmware: Optional[FirmwareSpec] = None,
                 store=None, events=None, alerts=None):
        if size < 0:
            raise ValueError("fleet size must be >= 0")
        self.security = security
        self.platform = platform
        self.max_attempts = max_attempts
        self.loss = loss
        self.reorder = reorder
        self.seed = seed
        # The shared image every enrolled device boots: a declarative
        # FirmwareSpec resolved through the repro.api build path (cached
        # process-wide), defaulting to the resident FLEET_APP node.
        self.firmware = firmware or fleet_firmware_spec()
        # Trace attestation: when enabled, every attest() additionally
        # authenticates + replays the device's branch trace against the
        # CFI policy recovered from the shared firmware image.
        self.verify_traces = verify_traces
        self._policy = None
        # Device ids whose replica state diverged from an honest
        # rebuild (fault hooks, forged traces, corrupted firmware):
        # process-backend campaigns ship these replicas' full
        # snapshots so workers see the true state; everyone else
        # keeps the cheap record-only rebuild path.
        self._mutated: set = set()
        # Durable verifier state: a path picks a backend via
        # open_store; records found in it are restored, not re-enrolled.
        if isinstance(store, str):
            store = open_store(store)
        # The longitudinal event log: observability is on by default at
        # the fleet layer (an in-memory log costs one dict append per
        # operational fact); a path makes it durable alongside the
        # store, flushed at the same registry durability points.
        if isinstance(events, str):
            events = open_event_log(events)
        elif events is None:
            events = MemoryEventLog()
        self.events = events
        # Live alerting over the event stream: ``alerts=True`` attaches
        # the default rule panel, a dict (``FleetSpec.alerts`` shape)
        # tunes thresholds per rule.  Off (None/False) means the engine
        # never subscribes -- emissions pay only the bus's empty check.
        self.alerts = None
        if alerts:
            from repro.obs.alerts import AlertEngine, build_rules

            config = None if alerts is True else dict(alerts)
            self.alerts = AlertEngine(build_rules(config)).attach(events)
        self.registry = FleetRegistry(store=store, events=events)
        self.transport = Transport(loss=loss, reorder=reorder, seed=seed)
        self.telemetry = FleetTelemetry(events=events)
        self.devices: Dict[str, Device] = {}
        self.agents: Dict[str, DeviceAgent] = {}
        self._sessions: Dict[str, VerifierSession] = {}
        # The store's records pin golden hashes of ONE firmware image;
        # restoring them under a different spec would rebuild wrong
        # replicas and mass-quarantine healthy devices on the next
        # heartbeat.  Pin the spec in the meta document and refuse a
        # mismatch loudly (same no-silent-fallback rule as the API).
        pinned = self.registry.meta.get(META_FIRMWARE)
        if pinned is not None and pinned != self.firmware.to_dict():
            raise FleetError(
                f"store was built on firmware "
                f"{pinned.get('name')!r} ({pinned.get('kind')}/"
                f"{pinned.get('variant')}); refusing to restore it as "
                f"{self.firmware.name!r} -- pass the original spec")
        self.registry.meta[META_FIRMWARE] = self.firmware.to_dict()
        for record in self.registry:
            self._restore(record)
        if size:
            missing = size - len(self.registry)
            if missing > 0:
                self.enroll_many(missing)

    # ---- enrollment ------------------------------------------------------

    def enroll(self, device_id: str) -> AttestResult:
        """Provision one device and run the enrollment handshake."""
        record = self.registry.enroll(device_id, platform=self.platform,
                                      security=self.security)
        device = build_device(build_firmware(self.firmware).program,
                              security=self.security, update_key=record.key)
        link = self.transport.link(device_id)
        self.devices[device_id] = device
        self.agents[device_id] = DeviceAgent(device_id, device, link)
        result = self.session(device_id).enroll()
        self.registry.save(record)
        return result

    def enroll_many(self, count: int, prefix="dev") -> List[AttestResult]:
        start = len(self.registry)
        results = [self.enroll(f"{prefix}-{start + index:05d}")
                   for index in range(count)]
        self.registry.flush()
        return results

    def _restore(self, record: DeviceRecord):
        """Rebuild one device replica from a durable record.

        The simulated device is deterministic given the shared image
        and the record: rebuild it, replay the applied update payloads
        recorded in the store's meta document (so PMEM -- and thus the
        firmware hash -- matches what the device looked like when the
        previous process died), fast-forward the monotonic version
        counter, and advance the device's logical clock past
        ``last_seen`` (the real device kept running while the verifier
        was down; a replica that rebooted to cycle 0 would read as a
        stale-report replay).
        """
        device = build_device(build_firmware(self.firmware).program,
                              security=record.security,
                              update_key=record.key)
        device.update_engine.current_version = record.firmware_version
        # Replay exactly the versions this device applied, in order --
        # NOT every recorded version <= its counter: a device that
        # skipped v1 (enrolled late, resumed campaign) must not get
        # v1's bytes, or its hash diverges from the real device's.
        packages = self.registry.meta.get(META_PACKAGES, {})
        for version in record.applied_versions:
            applied = packages.get(str(version))
            if applied is not None:
                device.bus.load_bytes(int(applied["target"]),
                                      bytes.fromhex(applied["payload"]))
        if record.last_seen is not None:
            device.cycle = max(device.cycle, record.last_seen)
        link = self.transport.link(record.device_id)
        self.devices[record.device_id] = device
        self.agents[record.device_id] = DeviceAgent(record.device_id, device,
                                                    link)
        # Telemetry deltas must not re-count the device's pre-restart
        # history: its reports carry cumulative totals, so seed the
        # baseline from the durable record (the last accepted report's
        # totals) before the first post-restore heartbeat folds.
        self.telemetry.seed_baseline(record.device_id,
                                     record.violation_totals,
                                     record.reset_count)

    # ---- verifier plumbing -----------------------------------------------

    @property
    def policy(self):
        """The fleet firmware's recovered CFI policy (lazy, shared)."""
        if self._policy is None:
            from repro.cfg import policy_for_program

            program = build_firmware(self.firmware).program
            self._policy = policy_for_program(program, name=self.firmware.name)
        return self._policy

    def session(self, device_id: str) -> VerifierSession:
        session = self._sessions.get(device_id)
        if session is None:
            if device_id not in self.agents:
                raise FleetError(f"no simulated device for {device_id!r}")
            session = VerifierSession(
                self.registry.get(device_id), self.agents[device_id],
                self.transport.link(device_id), telemetry=self.telemetry,
                max_attempts=self.max_attempts,
                policy=self.policy if self.verify_traces else None,
                events=self.registry.events)
            self._sessions[device_id] = session
        return session

    # ---- fleet operations ------------------------------------------------

    def attest_all(self, device_ids: Optional[Sequence[str]] = None
                   ) -> Dict[str, AttestResult]:
        """One heartbeat sweep; results also land in the telemetry."""
        ids = device_ids if device_ids is not None else self.registry.ids()
        results = {}
        for device_id in ids:
            results[device_id] = self.session(device_id).attest()
            self.registry.save(self.registry.get(device_id))
        self.registry.flush()
        return results

    def run_all(self, max_cycles=2_000):
        """Let every device execute its resident app for a while."""
        for device in self.devices.values():
            device.run_steps(max_cycles, max_cycles=max_cycles,
                             stop_on_done=True)

    def package_factory(self, version: int, payload: Optional[bytes] = None,
                        tamper_ids: Sequence[str] = (),
                        rollback_ids: Sequence[str] = ()):
        """Per-device package maker with optional adversarial subsets."""
        payload = payload if payload is not None else default_payload(version)
        tampered = frozenset(tamper_ids)
        rolled_back = frozenset(rollback_ids)

        def make(record: DeviceRecord) -> UpdatePackage:
            if record.device_id in rolled_back:
                # Correctly signed, but a version the device already has:
                # the monotonic counter must reject it.
                return UpdatePackage.make(record.key, UPDATE_TARGET, payload,
                                          record.firmware_version)
            package = UpdatePackage.make(record.key, UPDATE_TARGET, payload,
                                         version)
            if record.device_id in tampered:
                return package.tampered()
            return package

        return make

    def adversarial_ids(self, fraction: float, phase=0.5) -> List[str]:
        """An evenly spread *fraction* of the fleet (deterministic).

        Even spreading keeps every wave's bad-device share equal to the
        global fraction, so threshold semantics are exact in tests.
        """
        ids = self.registry.manageable_ids()  # the ids campaigns offer to
        count = round(len(ids) * fraction)
        if count <= 0:
            return []
        stride = len(ids) / count
        return [ids[min(len(ids) - 1, int((index + phase) * stride))]
                for index in range(count)]

    def rollout(self, version: int, payload: Optional[bytes] = None,
                config: Optional[CampaignConfig] = None,
                tamper_fraction=0.0, rollback_fraction=0.0,
                resume: bool = False,
                device_ids: Optional[Sequence[str]] = None,
                stop=None) -> CampaignReport:
        """Run one staged campaign across the manageable fleet.

        *resume* skips devices whose (durable) record already shows
        *version* -- the continuation path after a killed campaign.
        With ``config.backend == "process"`` the waves execute on a
        process pool (see :func:`_run_shard`).  *device_ids* targets a
        subset instead of every manageable device.  *stop* is a
        cooperative stop signal (``threading.Event``-like) the campaign
        checks at wave boundaries -- the serve daemon's graceful
        shutdown path; a stopped campaign resumes with ``resume=True``.
        """
        config = config or CampaignConfig()
        payload = payload if payload is not None else default_payload(version)
        tamper_ids = self.adversarial_ids(tamper_fraction, phase=0.25)
        rollback_ids = [device_id
                        for device_id in self.adversarial_ids(
                            rollback_fraction, phase=0.75)
                        if device_id not in set(tamper_ids)]
        # Record the campaign's clean package in the fleet meta before
        # any offer goes out: a restarted process replays it onto
        # restored replicas so their PMEM (and hash) match the devices
        # that really applied it.  The version -> payload binding is
        # immutable -- re-offering a version number with different
        # bytes would corrupt the replay data for devices that already
        # applied the original (and real updaters bind version to
        # image immutably anyway).
        packages = self.registry.meta.setdefault(META_PACKAGES, {})
        package_doc = {"target": UPDATE_TARGET, "payload": payload.hex()}
        existing = packages.get(str(version))
        if existing is not None and existing != package_doc:
            raise FleetError(
                f"version {version} was already rolled out with a "
                f"different payload; resume with the original payload")
        packages[str(version)] = package_doc
        self.registry.flush()
        shard_task = None
        if config.backend == "process":
            shard_task = (_run_shard, {
                "firmware": self.firmware.to_dict(),
                "security": self.security,
                "loss": self.loss,
                "reorder": self.reorder,
                "seed": self.seed,
                "max_attempts": self.max_attempts,
                "version": version,
                "target": UPDATE_TARGET,
                "payload": payload.hex(),
                "tamper_ids": sorted(tamper_ids),
                "rollback_ids": sorted(rollback_ids),
                # Workers mirror the parent's metrics switch: a fleet
                # run with METRICS disabled must not pay for worker-
                # side span recording either.
                "metrics": METRICS.enabled,
            })
        campaign = RolloutCampaign(
            self.registry,
            session_factory=self.session,
            package_factory=self.package_factory(
                version, payload, tamper_ids, rollback_ids),
            target_version=version,
            config=config,
            telemetry=self.telemetry,
            shard_task=shard_task,
            # Ship mutated replicas' full snapshots with their
            # records: workers restore the actual device state --
            # firmware corruption, forged trace rings and all --
            # instead of rebuilding an honest device (which quietly
            # *undid* fault hooks on the process backend).  Honest
            # replicas keep the cheap record-only rebuild;
            # ``ship_device_state`` forces all (True) or none (False).
            snapshot_factory=(
                (lambda device_id: self._replica_snapshot(
                    device_id, force=config.ship_device_state is True))
                if (config.backend == "process"
                    and config.ship_device_state is not False) else None),
            # Per wave, not post-run: verify_after_wave must attest
            # the synced replicas, and a halt must leave the applied
            # waves' replicas consistent.
            post_wave_merge=(
                (lambda: self._sync_replicas(version, payload))
                if config.backend == "process" else None),
            stop=stop,
        )
        return campaign.run(device_ids=device_ids, resume=resume)

    def _replica_snapshot(self, device_id: str,
                          force: bool = False) -> Optional[dict]:
        """The live replica's snapshot wire dict, or None for the
        honest record-only rebuild.

        A snapshot ships when the replica is known-mutated (see
        :meth:`mark_mutated`) or *force* is set; unknown replicas
        (a record without a live device) always fall back."""
        device = self.devices.get(device_id)
        if device is None:
            return None
        if not force and device_id not in self._mutated:
            return None
        return device.snapshot().to_dict()

    def _sync_replicas(self, version: int, payload: bytes):
        """Fast-forward parent replicas after a process-backend wave.

        The authoritative apply (MAC check, monotonic version, ROM
        copy on the simulated CPU) ran on the worker's rebuilt device;
        mirror its effect onto the parent's replica -- version counter
        plus the payload bytes in PMEM -- so later attests and
        campaigns in this process see the updated image.
        """
        for record in self.registry:
            device = self.devices.get(record.device_id)
            if device is None:
                continue
            if (record.firmware_version == version
                    and device.update_engine.current_version < version):
                device.update_engine.current_version = version
                device.bus.load_bytes(UPDATE_TARGET, payload)

    # ---- fault injection -------------------------------------------------

    def mark_mutated(self, device_id: str):
        """Flag a replica whose state campaigns must ship verbatim.

        The built-in fault hooks below call this themselves; external
        code that mutates a device directly (fault campaigns, tests)
        calls it so process-backend workers restore the true state
        instead of rebuilding an honest device from the record."""
        self._mutated.add(device_id)

    def forge_trace(self, device_id: str, src=0xE000, dst=0xE000, kind="jump"):
        """Fabricate a trace edge on one device without digest folding.

        Models a compromised device OS (or in-path attacker) inventing
        control-flow evidence.  The edge window no longer folds to the
        MAC'd digest, so the next trace-verifying attest quarantines
        the device with ``trace-forged``.
        """
        self.devices[device_id].trace.inject_edge(src, dst, kind)
        self.mark_mutated(device_id)

    def corrupt_firmware(self, device_id: str, max_cycles=2_000):
        """Flip the first word of the resident app and run into the fault."""
        device = self.devices[device_id]
        main = device.symbol("main")
        device.bus.load_bytes(main, b"\x00\x00")  # illegal opcode
        self.mark_mutated(device_id)
        device.hard_reset()
        device.run(max_cycles=max_cycles, stop_on_done=False)

    # ---- reporting -------------------------------------------------------

    def status(self) -> str:
        return self.telemetry.render(self.registry)


# ---- process-backend shard worker ------------------------------------------


def _run_shard(context: dict, record_docs: List[dict]) -> dict:
    """Run one batch of update conversations in a worker process.

    The campaign pickles this function plus a static *context* (fleet
    shape + campaign package) and per-batch ``record_to_dict``
    snapshots.  The worker rebuilds each device from the shared
    FirmwareSpec (``build_firmware`` is lru-cached, so the image builds
    once per worker process), fast-forwards its monotonic version
    counter from the record, recreates its deterministic link from the
    fleet seed + device id, and drives the full authenticated offer
    conversation -- ROM copy on the simulated CPU included.

    The return document has two halves: ``outcomes`` carries the
    mutated freshness fields for the parent's registry merge, and
    ``metrics`` carries this batch's worker-side
    ``MetricsRegistry.snapshot()`` -- interpreter counters, per-offer
    spans under a ``campaign.shard`` root -- which the parent folds in
    re-rooted under the wave's span.  The worker registry resets at
    batch start so reused pool processes report per-batch deltas, not
    lifetime totals.
    """
    spec = FirmwareSpec.from_dict(context["firmware"])
    program = build_firmware(spec).program
    transport = Transport(loss=context["loss"], reorder=context["reorder"],
                          seed=context["seed"])
    payload = bytes.fromhex(context["payload"])
    target = context["target"]
    version = context["version"]
    tampered = frozenset(context["tamper_ids"])
    rolled_back = frozenset(context["rollback_ids"])
    METRICS.enable(context.get("metrics", True))
    METRICS.reset()
    outcomes = []
    with METRICS.span("campaign.shard"):
        for doc in record_docs:
            record = record_from_dict(doc)
            device = build_device(program, security=context["security"],
                                  update_key=record.key)
            snapshot_doc = doc.get("device")
            if snapshot_doc is not None:
                # The parent shipped the replica's full state: restore
                # it verbatim (adversarial mutations included).
                device.restore(snapshot_doc)
            else:
                # Legacy/headless path: honest rebuild from the record.
                device.update_engine.current_version = record.firmware_version
            link = transport.link(record.device_id)
            agent = DeviceAgent(record.device_id, device, link)
            session = VerifierSession(record, agent, link,
                                      max_attempts=context["max_attempts"])
            if record.device_id in rolled_back:
                package = UpdatePackage.make(record.key, target, payload,
                                             record.firmware_version)
            else:
                package = UpdatePackage.make(record.key, target, payload,
                                             version)
                if record.device_id in tampered:
                    package = package.tampered()
            # Same span name as the thread backend's offers, so the
            # merged histogram totals are backend-independent.
            with METRICS.span("campaign.offer"):
                offer = session.offer_update(package)
            outcomes.append({
                "device_id": record.device_id,
                "status": offer.status.value if offer.status else None,
                "detail": offer.detail,
                "attempts": offer.attempts,
                "current_version": record.firmware_version,
                "nonce_high_water": record.nonce_high_water,
                "applied_versions": list(record.applied_versions),
                "state": record.state.value,
            })
    return {"outcomes": outcomes, "metrics": METRICS.snapshot()}
