"""N simulated EILID devices plus the verifier that manages them.

:class:`FleetSimulation` is the one-stop harness behind ``fleet``
CLI commands, the demo, the benchmarks and the tests: it builds the
device firmware ONCE (the whole fleet shares the immutable program
image, each device gets its own bus/CPU/monitor and its own derived
key), enrolls every device over the simulated transport, and exposes
attestation sweeps and staged rollout campaigns.

Adversarial knobs used by tests and the demo:

* ``tamper_fraction``  -- that share of devices receives a payload-
  flipped package (models a man-in-the-middle on their links); the
  device-side MAC check must reject every one.
* ``rollback_fraction`` -- that share receives a correctly signed but
  stale-version package (models a replay/downgrade attempt); the
  device-side monotonic version check must reject every one.
* ``corrupt_firmware`` -- backdoor-flips a word of one device's PMEM
  and lets it run into the fault (models physical tamper/bitrot); the
  next heartbeat shows the violation log and the hash mismatch
  quarantines the device.
"""

from typing import Dict, List, Optional, Sequence

from repro.api.firmware import build_firmware
from repro.api.spec import FirmwareSpec
from repro.casu.update import UpdateKey, UpdatePackage
from repro.device import Device, build_device
from repro.fleet.campaign import CampaignConfig, CampaignReport, RolloutCampaign
from repro.fleet.protocol import AttestResult, DeviceAgent, VerifierSession
from repro.fleet.registry import DeviceRecord, FleetError, FleetRegistry
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.transport import Transport

# A fleet node's firmware: report a reading, signal DONE, idle.
FLEET_APP = """
    .text
    .global main
main:
    mov #42, &0x0200
    mov #1, &0x0070
idle:
    jmp idle
"""

UPDATE_TARGET = 0xE800  # free PMEM past the tiny resident app


def fleet_firmware_spec() -> FirmwareSpec:
    """The default fleet node firmware as a declarative spec.

    Routing through :func:`repro.api.firmware.build_firmware` means the
    shared image is built once per process and the cache is shared with
    every other scenario that names the same firmware.
    """
    return FirmwareSpec(kind="asm", source=FLEET_APP, variant="original",
                        name="fleet-node", link_rom=True)


def default_payload(version: int, words=8) -> bytes:
    """A recognisable per-version payload (word-aligned)."""
    return b"".join(
        ((version * 0x0100 + index) & 0xFFFF).to_bytes(2, "little")
        for index in range(words)
    )


class FleetSimulation:
    """A registry, a transport, and one real Device per enrolled id."""

    def __init__(self, size=0, security="casu", platform="TI MSP430",
                 loss=0.0, reorder=0.0, seed=0, max_attempts=4,
                 verify_traces=False, firmware: Optional[FirmwareSpec] = None):
        if size < 0:
            raise ValueError("fleet size must be >= 0")
        self.security = security
        self.platform = platform
        self.max_attempts = max_attempts
        # The shared image every enrolled device boots: a declarative
        # FirmwareSpec resolved through the repro.api build path (cached
        # process-wide), defaulting to the resident FLEET_APP node.
        self.firmware = firmware or fleet_firmware_spec()
        # Trace attestation: when enabled, every attest() additionally
        # authenticates + replays the device's branch trace against the
        # CFI policy recovered from the shared firmware image.
        self.verify_traces = verify_traces
        self._policy = None
        self.registry = FleetRegistry()
        self.transport = Transport(loss=loss, reorder=reorder, seed=seed)
        self.telemetry = FleetTelemetry()
        self.devices: Dict[str, Device] = {}
        self.agents: Dict[str, DeviceAgent] = {}
        self._sessions: Dict[str, VerifierSession] = {}
        if size:
            self.enroll_many(size)

    # ---- enrollment ------------------------------------------------------

    def enroll(self, device_id: str) -> AttestResult:
        """Provision one device and run the enrollment handshake."""
        record = self.registry.enroll(device_id, platform=self.platform,
                                      security=self.security)
        device = build_device(build_firmware(self.firmware).program,
                              security=self.security, update_key=record.key)
        link = self.transport.link(device_id)
        self.devices[device_id] = device
        self.agents[device_id] = DeviceAgent(device_id, device, link)
        return self.session(device_id).enroll()

    def enroll_many(self, count: int, prefix="dev") -> List[AttestResult]:
        start = len(self.registry)
        return [self.enroll(f"{prefix}-{start + index:05d}")
                for index in range(count)]

    # ---- verifier plumbing -----------------------------------------------

    @property
    def policy(self):
        """The fleet firmware's recovered CFI policy (lazy, shared)."""
        if self._policy is None:
            from repro.cfg import policy_for_program

            program = build_firmware(self.firmware).program
            self._policy = policy_for_program(program, name=self.firmware.name)
        return self._policy

    def session(self, device_id: str) -> VerifierSession:
        session = self._sessions.get(device_id)
        if session is None:
            if device_id not in self.agents:
                raise FleetError(f"no simulated device for {device_id!r}")
            session = VerifierSession(
                self.registry.get(device_id), self.agents[device_id],
                self.transport.link(device_id), telemetry=self.telemetry,
                max_attempts=self.max_attempts,
                policy=self.policy if self.verify_traces else None)
            self._sessions[device_id] = session
        return session

    # ---- fleet operations ------------------------------------------------

    def attest_all(self, device_ids: Optional[Sequence[str]] = None
                   ) -> Dict[str, AttestResult]:
        """One heartbeat sweep; results also land in the telemetry."""
        ids = device_ids if device_ids is not None else self.registry.ids()
        return {device_id: self.session(device_id).attest()
                for device_id in ids}

    def run_all(self, max_cycles=2_000):
        """Let every device execute its resident app for a while."""
        for device in self.devices.values():
            device.run_steps(max_cycles, max_cycles=max_cycles,
                             stop_on_done=True)

    def package_factory(self, version: int, payload: Optional[bytes] = None,
                        tamper_ids: Sequence[str] = (),
                        rollback_ids: Sequence[str] = ()):
        """Per-device package maker with optional adversarial subsets."""
        payload = payload if payload is not None else default_payload(version)
        tampered = frozenset(tamper_ids)
        rolled_back = frozenset(rollback_ids)

        def make(record: DeviceRecord) -> UpdatePackage:
            if record.device_id in rolled_back:
                # Correctly signed, but a version the device already has:
                # the monotonic counter must reject it.
                return UpdatePackage.make(record.key, UPDATE_TARGET, payload,
                                          record.firmware_version)
            package = UpdatePackage.make(record.key, UPDATE_TARGET, payload,
                                         version)
            if record.device_id in tampered:
                return package.tampered()
            return package

        return make

    def adversarial_ids(self, fraction: float, phase=0.5) -> List[str]:
        """An evenly spread *fraction* of the fleet (deterministic).

        Even spreading keeps every wave's bad-device share equal to the
        global fraction, so threshold semantics are exact in tests.
        """
        ids = self.registry.manageable_ids()  # the ids campaigns offer to
        count = round(len(ids) * fraction)
        if count <= 0:
            return []
        stride = len(ids) / count
        return [ids[min(len(ids) - 1, int((index + phase) * stride))]
                for index in range(count)]

    def rollout(self, version: int, payload: Optional[bytes] = None,
                config: Optional[CampaignConfig] = None,
                tamper_fraction=0.0, rollback_fraction=0.0) -> CampaignReport:
        """Run one staged campaign across the manageable fleet."""
        tamper_ids = self.adversarial_ids(tamper_fraction, phase=0.25)
        rollback_ids = [device_id
                        for device_id in self.adversarial_ids(
                            rollback_fraction, phase=0.75)
                        if device_id not in set(tamper_ids)]
        campaign = RolloutCampaign(
            self.registry,
            session_factory=self.session,
            package_factory=self.package_factory(
                version, payload, tamper_ids, rollback_ids),
            target_version=version,
            config=config,
            telemetry=self.telemetry,
        )
        return campaign.run()

    # ---- fault injection -------------------------------------------------

    def forge_trace(self, device_id: str, src=0xE000, dst=0xE000, kind="jump"):
        """Fabricate a trace edge on one device without digest folding.

        Models a compromised device OS (or in-path attacker) inventing
        control-flow evidence.  The edge window no longer folds to the
        MAC'd digest, so the next trace-verifying attest quarantines
        the device with ``trace-forged``.
        """
        self.devices[device_id].trace.inject_edge(src, dst, kind)

    def corrupt_firmware(self, device_id: str, max_cycles=2_000):
        """Flip the first word of the resident app and run into the fault."""
        device = self.devices[device_id]
        main = device.symbol("main")
        device.bus.load_bytes(main, b"\x00\x00")  # illegal opcode
        device.hard_reset()
        device.run(max_cycles=max_cycles, stop_on_done=False)

    # ---- reporting -------------------------------------------------------

    def status(self) -> str:
        return self.telemetry.render(self.registry)
