"""Authenticated verifier<->device protocol.

Three exchanges, all request/response over an untrusted
:class:`~repro.fleet.transport.Link`:

* **enroll**  -- the verifier challenges a freshly provisioned device;
  the reply carries the device's first attestation report, MAC'd under
  the shared per-device key, and its hash becomes the golden reference.
* **attest**  -- the heartbeat: firmware hash + monotonic version +
  the monitor's violation log, MAC'd with a verifier nonce for
  freshness.
* **update**  -- an :class:`~repro.casu.update.UpdatePackage` offer;
  the *device* decides (its ROM-modelled MAC/version check in
  ``UpdateEngine.verify``), and the ack reports the resulting status
  and current version, again MAC'd.

The channel may drop or reorder anything, so every verifier request
retries up to ``max_attempts`` and matches replies by nonce.  A lost
ack after a successful apply surfaces as a STALE_VERSION retry whose
reported version already equals the target -- the session folds that
back into "applied", the classic idempotent-update dance.

Freshness is verifier-side state, SIMPLE/RATA-style: challenge nonces
are drawn from the record's persistent ``nonce_high_water`` (strictly
increasing across sessions and process restarts -- a session owns no
nonce counter of its own), so a captured reply from an earlier run can
never match a later challenge.  A stale-nonce reply that still
authenticates under the device key is exactly such a capture being
replayed and quarantines the device, as does a verified report whose
device-local ``cycle`` runs backwards (``stale-report``) and an update
ack whose MAC fails (``bad-ack-mac`` -- distinct from the device simply
being unreachable).
"""

import enum
import hashlib
import hmac
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.casu.update import UpdateKey, UpdatePackage, UpdateStatus
from repro.eilid.trusted_sw import AttestationReport
from repro.fleet.registry import DeviceRecord, Lifecycle
from repro.fleet.telemetry import parse_violation_totals
from repro.fleet.transport import Link

VERIFIER_ID = "verifier"


class MsgKind(enum.Enum):
    ENROLL_REQ = "enroll-req"
    ENROLL_ACK = "enroll-ack"
    ATTEST_REQ = "attest-req"
    ATTEST_REPORT = "attest-report"
    UPDATE_OFFER = "update-offer"
    UPDATE_ACK = "update-ack"


def _mac(key: UpdateKey, tag: bytes, *parts: bytes) -> bytes:
    digest = hmac.new(key.secret, tag, hashlib.sha256)
    for part in parts:
        digest.update(len(part).to_bytes(4, "little"))
        digest.update(part)
    return digest.digest()


# ---- wire bodies -----------------------------------------------------------


@dataclass(frozen=True)
class Challenge:
    nonce: int


@dataclass(frozen=True)
class SignedReport:
    device_id: str
    nonce: int
    report: AttestationReport
    mac: bytes
    # Branch-trace evidence (repro.cfg.trace.TraceSnapshot).  NOT part
    # of the MAC: the report's trace_digest field -- which IS MAC'd --
    # binds it, so the verifier re-folds the window and compares.
    trace: Optional[object] = None

    @staticmethod
    def make(key, tag, device_id, nonce, report, trace=None):
        mac = _mac(key, tag, device_id.encode(),
                   nonce.to_bytes(8, "little"), report.message())
        return SignedReport(device_id, nonce, report, mac, trace)

    def verify(self, key, tag) -> bool:
        expected = _mac(key, tag, self.device_id.encode(),
                        self.nonce.to_bytes(8, "little"), self.report.message())
        return hmac.compare_digest(expected, self.mac)


@dataclass(frozen=True)
class UpdateOffer:
    nonce: int
    package: UpdatePackage


@dataclass(frozen=True)
class UpdateAck:
    device_id: str
    nonce: int
    status: UpdateStatus
    current_version: int
    mac: bytes

    @staticmethod
    def make(key, device_id, nonce, status, current_version):
        mac = _mac(key, b"update-ack", device_id.encode(),
                   nonce.to_bytes(8, "little"), status.value.encode(),
                   current_version.to_bytes(8, "little"))
        return UpdateAck(device_id, nonce, status, current_version, mac)

    def verify(self, key) -> bool:
        expected = _mac(key, b"update-ack", self.device_id.encode(),
                        self.nonce.to_bytes(8, "little"), self.status.value.encode(),
                        self.current_version.to_bytes(8, "little"))
        return hmac.compare_digest(expected, self.mac)


# ---- device side -----------------------------------------------------------


class DeviceAgent:
    """Device-side endpoint: owns one Device, answers its link's downlink.

    The agent is the untrusted-software shim around the device: the
    actual accept/reject decisions happen inside ``apply_update`` on
    the modelled ROM path, and the MACs use the key baked into the
    device at provisioning.
    """

    def __init__(self, device_id: str, device, link: Link):
        self.device_id = device_id
        self.device = device
        self.link = link

    @property
    def key(self) -> UpdateKey:
        return self.device.update_engine.key

    def pump(self):
        """Handle every message currently deliverable on the downlink."""
        for envelope in self.link.down.drain():
            self._handle(envelope)

    def _handle(self, envelope):
        kind = MsgKind(envelope.kind)
        body = envelope.body
        if kind is MsgKind.ENROLL_REQ:
            reply = SignedReport.make(self.key, b"enroll", self.device_id,
                                      body.nonce, self.device.attestation_report(),
                                      trace=self.device.trace_snapshot())
            self._send(MsgKind.ENROLL_ACK, reply)
        elif kind is MsgKind.ATTEST_REQ:
            reply = SignedReport.make(self.key, b"attest", self.device_id,
                                      body.nonce, self.device.attestation_report(),
                                      trace=self.device.trace_snapshot())
            self._send(MsgKind.ATTEST_REPORT, reply)
        elif kind is MsgKind.UPDATE_OFFER:
            result = self.device.apply_update(body.package)
            ack = UpdateAck.make(self.key, self.device_id, body.nonce,
                                 result.status,
                                 self.device.update_engine.current_version)
            self._send(MsgKind.UPDATE_ACK, ack)

    def _send(self, kind: MsgKind, body):
        self.link.up.send(self.device_id, VERIFIER_ID, kind.value, body)


# ---- verifier side ---------------------------------------------------------


@dataclass
class AttestResult:
    ok: bool
    detail: str = ""
    report: Optional[AttestationReport] = None
    attempts: int = 0


@dataclass
class OfferResult:
    """One update offer's outcome, as the verifier saw it.

    *status* is the device-reported :class:`UpdateStatus`, or None when
    no authentic ack arrived -- *detail* then says why: the device was
    ``unreachable``, the ack carried a forged MAC (``bad-ack-mac``), or
    a captured ack from an earlier exchange was replayed (``replay``).
    The latter two quarantine the device.
    """

    status: Optional[UpdateStatus]
    attempts: int
    detail: str = ""

    @property
    def applied(self) -> bool:
        return self.status is UpdateStatus.APPLIED


class VerifierSession:
    """One verifier<->device conversation: enroll, attest, update.

    Stateless in itself: freshness lives on the DeviceRecord (the
    persistent nonce high-water mark), so a session can be created and
    thrown away per exchange -- or per campaign worker, because each
    session owns its device's link.
    """

    def __init__(self, record: DeviceRecord, agent: DeviceAgent, link: Link,
                 telemetry=None, max_attempts=4, policy=None, events=None):
        self.record = record
        self.agent = agent
        self.link = link
        self.telemetry = telemetry
        self.max_attempts = max_attempts
        # Optional repro.cfg.CfiPolicy: when set, attest() additionally
        # authenticates and replays the device's branch trace.
        self.policy = policy
        # Optional repro.obs.events.EventLog: attest outcomes and
        # session-detected quarantines land in the fleet's longitudinal
        # record.  `campaign` tags them when a campaign drives this
        # session (the engine stamps it per batch).
        self.events = events
        self.campaign: Optional[str] = None
        # Replies from _exchange whose nonce predates the current
        # challenge; one that authenticates is a replayed capture.
        self._stale_replies: List[object] = []

    # ---- plumbing --------------------------------------------------------

    def _next_nonce(self) -> int:
        """Draw the next challenge nonce from the persistent record.

        The high-water mark advances before use and is never reissued,
        across sessions or process restarts, which is the whole replay
        defence: a captured reply's nonce is below every future
        challenge.
        """
        self.record.nonce_high_water += 1
        return self.record.nonce_high_water

    def _exchange(self, kind: MsgKind, body, reply_kind: MsgKind,
                  nonce: int) -> Tuple[Optional[object], int]:
        """Send, pump the device, collect the nonce-matching reply.

        Retries over the lossy link; returns (reply_body, attempts) or
        (None, attempts) when the device stayed unreachable.  Replies
        with an older nonce are rejected (non-increasing == stale) but
        kept aside for the caller's replay check.
        """
        self._stale_replies = []
        for attempt in range(1, self.max_attempts + 1):
            self.link.down.send(VERIFIER_ID, self.record.device_id,
                                kind.value, body)
            self.agent.pump()
            for envelope in self.link.up.drain():
                if envelope.kind != reply_kind.value:
                    continue
                got = getattr(envelope.body, "nonce", None)
                if got != nonce:
                    if isinstance(got, int) and got < nonce:
                        self._stale_replies.append(envelope.body)
                    continue
                return envelope.body, attempt
        return None, self.max_attempts

    def _replay_detected(self, verify) -> bool:
        """Did a stale-nonce reply authenticate under the device key?

        An honest retransmission always carries the *current* nonce (a
        retried request repeats it), so a well-MAC'd reply bearing an
        already-consumed nonce can only be a captured message injected
        back into the channel.
        """
        for body in self._stale_replies:
            try:
                if verify(body):
                    return True
            except (AttributeError, TypeError, ValueError):
                continue  # malformed injection; not even a valid capture
        return False

    def _quarantine(self, reason: str):
        """Flip the record to QUARANTINED and log the verdict."""
        self.record.state = Lifecycle.QUARANTINED
        if self.events is not None:
            self.events.emit("quarantine", device=self.record.device_id,
                             campaign=self.campaign, reason=reason)

    # ---- exchanges -------------------------------------------------------

    def enroll(self) -> AttestResult:
        """Challenge the device; on success its hash becomes golden."""
        nonce = self._next_nonce()
        reply, attempts = self._exchange(
            MsgKind.ENROLL_REQ, Challenge(nonce), MsgKind.ENROLL_ACK, nonce)
        if reply is None:
            if self._replay_detected(
                    lambda body: body.verify(self.record.key, b"enroll")):
                self._quarantine("replay")
                return AttestResult(False, "replay", attempts=attempts)
            return AttestResult(False, "unreachable", attempts=attempts)
        if not reply.verify(self.record.key, b"enroll"):
            self._quarantine("bad-mac")
            return AttestResult(False, "bad-mac", attempts=attempts)
        self.record.firmware_hash = reply.report.firmware_hash
        self.record.firmware_version = reply.report.firmware_version
        self.record.observe_cycle(reply.report.cycle)
        return AttestResult(True, report=reply.report, attempts=attempts)

    def attest(self) -> AttestResult:
        """One heartbeat: verify the report, fold it into the record."""
        nonce = self._next_nonce()
        reply, attempts = self._exchange(
            MsgKind.ATTEST_REQ, Challenge(nonce), MsgKind.ATTEST_REPORT, nonce)
        if reply is None:
            if self._replay_detected(
                    lambda body: body.verify(self.record.key, b"attest")):
                self._quarantine("replay")
                result = AttestResult(False, "replay", attempts=attempts)
            else:
                result = AttestResult(False, "unreachable", attempts=attempts)
            self._note_attest(result)
            return result
        if not reply.verify(self.record.key, b"attest"):
            self._quarantine("bad-mac")
            result = AttestResult(False, "bad-mac", attempts=attempts)
            self._note_attest(result)
            return result
        report = reply.report
        record = self.record
        # Every MAC-verified report refreshes the persisted telemetry
        # baselines (cumulative violation totals, reset counter): the
        # fold in _note_attest consumes the same report even when a
        # later check quarantines, and a restarted verifier must seed
        # exactly the baseline the fold advanced to (see
        # FleetTelemetry.seed_baseline).
        record.violation_totals, _ = parse_violation_totals(
            report.violation_totals)
        record.reset_count = report.reset_count
        trace_problem = self._check_trace(reply)
        if trace_problem is not None:
            self._quarantine(trace_problem)
            result = AttestResult(False, trace_problem, reply.report, attempts)
            self._note_attest(result)
            return result
        if record.last_seen is not None and report.cycle < record.last_seen:
            # The device's logical clock only ever advances (resets
            # included), so a verified report from its past is captured
            # evidence being served back -- quarantine, never roll
            # last_seen backwards.
            self._quarantine("stale-report")
            result = AttestResult(False, "stale-report", report, attempts)
            self._note_attest(result)
            return result
        if (record.firmware_hash is not None
                and report.firmware_version == record.firmware_version
                and report.firmware_hash != record.firmware_hash):
            self._quarantine("hash-mismatch")
            result = AttestResult(False, "hash-mismatch", report, attempts)
            self._note_attest(result)
            return result
        record.firmware_hash = report.firmware_hash
        record.firmware_version = report.firmware_version
        record.observe_cycle(report.cycle)
        record.attest_count += 1
        record.violation_count = report.violation_count
        if record.state in (Lifecycle.ENROLLED, Lifecycle.UPDATING):
            record.state = Lifecycle.ACTIVE
        result = AttestResult(True, report=report, attempts=attempts)
        self._note_attest(result)
        return result

    def _check_trace(self, reply: SignedReport) -> Optional[str]:
        """Trace attestation: authenticate the window, then replay it.

        Returns a quarantine reason or None.  The digest in the MAC'd
        report binds the unauthenticated edge window; a window that
        does not fold to it is forged.  An authentic window that does
        not replay over the firmware's recovered CFG is evidence of a
        control-flow hijack the device-side monitor missed.
        """
        if self.policy is None:
            return None
        snapshot = reply.trace
        if snapshot is None:
            return "trace-missing"
        report = reply.report
        # Every snapshot counter must match its MAC'd counterpart: a
        # stripped window (total/dropped zeroed to make an empty trace
        # fold cleanly) or an inflated `dropped` (downgrading replay to
        # lenient windowed mode) is as forged as a tampered edge.
        if (snapshot.total != report.trace_edges
                or snapshot.dropped != report.trace_dropped
                or snapshot.digest_hex != report.trace_digest
                or not snapshot.consistent()):
            return "trace-forged"
        from repro.cfg.replay import TraceReplayer

        verdict = TraceReplayer(self.policy).replay(snapshot, check_digest=False)
        if not verdict.ok:
            return f"trace-replay: {verdict.reason}"
        return None

    def offer_update(self, package: UpdatePackage) -> OfferResult:
        """Offer one signed package; returns an :class:`OfferResult`.

        ``status`` is None when no authentic ack arrived -- ``detail``
        distinguishes an unreachable device from an ack with a forged
        MAC (``bad-ack-mac``, quarantined: something on that link is
        fabricating protocol messages) and a replayed capture
        (``replay``, also quarantined).  Otherwise the device-reported
        UpdateStatus, with the lost-ack retry case normalised back to
        APPLIED.
        """
        version_before = self.record.firmware_version
        nonce = self._next_nonce()
        reply, attempts = self._exchange(
            MsgKind.UPDATE_OFFER, UpdateOffer(nonce, package),
            MsgKind.UPDATE_ACK, nonce)
        if reply is None:
            if self._replay_detected(
                    lambda body: body.verify(self.record.key)):
                self._quarantine("replay")
                return OfferResult(None, attempts, "replay")
            return OfferResult(None, attempts, "unreachable")
        if not reply.verify(self.record.key):
            # The ack exists but its MAC is wrong: a forged ack is
            # evidence of an attacker on the link, not of a device
            # that never answered -- quarantine instead of retrying
            # into the attacker's hands.
            self._quarantine("bad-ack-mac")
            return OfferResult(None, attempts, "bad-ack-mac")
        status = reply.status
        if (status is UpdateStatus.STALE_VERSION
                and package.version > version_before
                and reply.current_version >= package.version):
            # This offer genuinely advanced the device; the apply landed
            # on an earlier attempt whose ack the channel ate.  A true
            # rollback offer (package.version <= our last-known version)
            # never takes this branch and stays rejected.
            status = UpdateStatus.APPLIED
        if status is UpdateStatus.APPLIED:
            self.record.firmware_version = reply.current_version
            self.record.applied_versions.append(package.version)
            # The image changed, so the pinned hash is stale; drop it
            # and let the next attest re-baseline.  (Without this every
            # healthy device would "hash-mismatch" on its first
            # post-update heartbeat and quarantine the whole fleet.)
            self.record.firmware_hash = None
        return OfferResult(status, attempts)

    def _note_attest(self, result: AttestResult):
        if self.telemetry is not None:
            self.telemetry.record_attest(self.record.device_id, result)
        if self.events is not None:
            report = result.report
            self.events.emit(
                "attest", device=self.record.device_id,
                campaign=self.campaign, ok=result.ok,
                detail=result.detail, attempts=result.attempts,
                firmware_version=None if report is None
                else report.firmware_version)
