"""Staged-rollout engine: waves, failure thresholds, automatic halt.

A campaign pushes one target firmware version across the manageable
part of the fleet in expanding waves (canary -> broader -> everyone).
Within a wave, devices are partitioned into batches and the batches
are executed on a worker pool; each worker drives its devices' update
conversations (offer -> device-side MAC/version check -> ack) end to
end, including the simulated ROM copy on the device CPU, so "devices
per second" here is the real cost of the whole authenticated path.

After every wave the engine compares the wave's failure fraction
(MAC rejections, version rollbacks, unreachable devices) against the
configured threshold.  Exceeding it HALTS the campaign: no further
wave is offered, the wave's failed devices have their UPDATING mark
rolled back (MAC failures are quarantined instead), and the report
says why.  Firmware itself never rolls back -- the device's monotonic
version check forbids it by design; rollback here is a registry-state
operation, which is all a verifier can honestly do.
"""

import enum
import os
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.casu.update import UpdatePackage, UpdateStatus
from repro.eval.report import render_table
from repro.fleet.registry import DeviceRecord, FleetRegistry, Lifecycle


@dataclass
class CampaignConfig:
    """Knobs for one rollout."""

    # Cumulative fleet coverage after each wave: 5% canary, then 25%,
    # then everyone.  Must be increasing and end at 1.0.
    wave_fractions: Tuple[float, ...] = (0.05, 0.25, 1.0)
    # Halt when a wave's failed fraction exceeds this.
    failure_threshold: float = 0.10
    max_attempts: int = 4  # per-message transport retries
    workers: int = 0  # 0 -> min(8, cpu count)
    batch_size: int = 32  # devices per worker task
    # Post-wave verification: attest every device the wave updated
    # before moving on.  With a trace-verifying session this is where
    # forged or non-replaying branch traces quarantine a device; the
    # failures count toward the wave's halt threshold.
    verify_after_wave: bool = False

    def __post_init__(self):
        fractions = tuple(self.wave_fractions)
        if not fractions or sorted(fractions) != list(fractions):
            raise ValueError("wave_fractions must be increasing")
        if fractions[-1] != 1.0:
            raise ValueError("the final wave must cover the whole fleet (1.0)")
        self.wave_fractions = fractions
        if not 0.0 <= self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in [0, 1]")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    @property
    def effective_workers(self) -> int:
        return self.workers or min(8, os.cpu_count() or 1)


class CampaignStatus(enum.Enum):
    COMPLETE = "complete"
    HALTED = "halted"
    EMPTY = "empty"


@dataclass
class DeviceOutcome:
    device_id: str
    status: Optional[UpdateStatus]  # None -> unreachable / forged ack
    attempts: int

    @property
    def applied(self):
        return self.status is UpdateStatus.APPLIED

    @property
    def status_label(self):
        return self.status.value if self.status else "unreachable"


@dataclass
class WaveResult:
    index: int
    size: int
    applied: int
    failed: int
    statuses: Counter = field(default_factory=Counter)

    @property
    def failure_fraction(self):
        return self.failed / self.size if self.size else 0.0


@dataclass
class CampaignReport:
    status: CampaignStatus
    target_version: int
    waves: List[WaveResult]
    applied: int
    failed: int
    skipped: int  # devices never offered (halt before their wave)
    elapsed_s: float
    halt_reason: str = ""

    @property
    def halted(self):
        return self.status is CampaignStatus.HALTED

    @property
    def offered(self):
        return self.applied + self.failed

    @property
    def devices_per_sec(self):
        return self.offered / self.elapsed_s if self.elapsed_s else 0.0

    def render(self) -> str:
        rows = [
            (w.index, w.size, w.applied, w.failed,
             f"{100 * w.failure_fraction:.1f}%")
            for w in self.waves
        ]
        table = render_table(
            ("wave", "devices", "applied", "failed", "fail%"), rows,
            title=f"rollout to v{self.target_version}: {self.status.value}"
            + (f" ({self.halt_reason})" if self.halt_reason else ""))
        tail = (f"{self.applied} applied, {self.failed} failed, "
                f"{self.skipped} skipped; "
                f"{self.devices_per_sec:.0f} devices/sec")
        return table + "\n" + tail


class RolloutCampaign:
    """Drive one staged rollout over a registry's manageable devices.

    Decoupled from the simulation: all it needs is the registry, a
    ``session_factory(device_id) -> VerifierSession`` and a
    ``package_factory(record) -> UpdatePackage`` (per-device, because
    packages are MAC'd under per-device keys -- and because tests and
    demos model a man-in-the-middle by tampering some devices' copies).
    """

    def __init__(self, registry: FleetRegistry,
                 session_factory: Callable[[str], "VerifierSession"],
                 package_factory: Callable[[DeviceRecord], UpdatePackage],
                 target_version: int,
                 config: Optional[CampaignConfig] = None,
                 telemetry=None):
        self.registry = registry
        self.session_factory = session_factory
        self.package_factory = package_factory
        self.target_version = target_version
        self.config = config or CampaignConfig()
        self.telemetry = telemetry

    # ---- wave planning ---------------------------------------------------

    def plan_waves(self, device_ids: Sequence[str]) -> List[List[str]]:
        """Split ids into waves from the cumulative coverage fractions."""
        total = len(device_ids)
        waves, start = [], 0
        for fraction in self.config.wave_fractions:
            end = max(start + 1, round(total * fraction))
            end = min(end, total)
            if end > start:
                waves.append(list(device_ids[start:end]))
            start = end
        return waves

    # ---- execution -------------------------------------------------------

    def run(self, device_ids: Optional[Sequence[str]] = None) -> CampaignReport:
        ids = list(device_ids) if device_ids is not None \
            else self.registry.manageable_ids()
        started = time.perf_counter()
        if not ids:
            return CampaignReport(CampaignStatus.EMPTY, self.target_version,
                                  [], 0, 0, 0, 0.0)
        waves = self.plan_waves(ids)
        results: List[WaveResult] = []
        applied = failed = offered = 0
        status, halt_reason = CampaignStatus.COMPLETE, ""
        with ThreadPoolExecutor(max_workers=self.config.effective_workers) as pool:
            for index, wave in enumerate(waves, start=1):
                wave_result = self._run_wave(index, wave, pool)
                results.append(wave_result)
                applied += wave_result.applied
                failed += wave_result.failed
                offered += wave_result.size
                if wave_result.failure_fraction > self.config.failure_threshold:
                    status = CampaignStatus.HALTED
                    halt_reason = (
                        f"wave {index} failure {100 * wave_result.failure_fraction:.1f}% "
                        f"> threshold {100 * self.config.failure_threshold:.1f}%")
                    break
        return CampaignReport(
            status=status,
            target_version=self.target_version,
            waves=results,
            applied=applied,
            failed=failed,
            skipped=len(ids) - offered,
            elapsed_s=time.perf_counter() - started,
            halt_reason=halt_reason,
        )

    def _run_wave(self, index: int, wave: List[str],
                  pool: ThreadPoolExecutor) -> WaveResult:
        for device_id in wave:
            self.registry.get(device_id).state = Lifecycle.UPDATING
        batch_size = self.config.batch_size
        batches = [wave[i:i + batch_size] for i in range(0, len(wave), batch_size)]
        outcomes: List[DeviceOutcome] = []
        for batch_outcomes in pool.map(self._run_batch, batches):
            outcomes.extend(batch_outcomes)
        result = WaveResult(index=index, size=len(wave), applied=0, failed=0)
        for outcome in outcomes:
            self._apply_outcome(outcome)
            result.statuses[outcome.status_label] += 1
            if outcome.applied:
                result.applied += 1
            else:
                result.failed += 1
        if self.config.verify_after_wave:
            self._verify_wave(result, outcomes)
        return result

    def _verify_wave(self, result: WaveResult, outcomes: List[DeviceOutcome]):
        """Attest each applied device; demote verification failures.

        The attest runs on the main thread over the already-created
        sessions; a failed verification (bad MAC, hash mismatch,
        forged or non-replaying branch trace) flips the device from
        the wave's applied column into its failed column -- counted
        against the halt threshold like any other wave failure.
        """
        for outcome in outcomes:
            if not outcome.applied:
                continue
            attest = self.session_factory(outcome.device_id).attest()
            if attest.ok:
                continue
            result.applied -= 1
            result.failed += 1
            result.statuses[f"verify:{attest.detail}"] += 1

    def _run_batch(self, batch: List[str]) -> List[DeviceOutcome]:
        """Worker task: one batch of devices, conversations end to end."""
        outcomes = []
        for device_id in batch:
            record = self.registry.get(device_id)
            session = self.session_factory(device_id)
            package = self.package_factory(record)
            status, attempts = session.offer_update(package)
            outcomes.append(DeviceOutcome(device_id, status, attempts))
        return outcomes

    def _apply_outcome(self, outcome: DeviceOutcome):
        """Fold one device's result back into the registry (main thread)."""
        record = self.registry.get(outcome.device_id)
        if outcome.applied:
            record.state = Lifecycle.ACTIVE
        else:
            record.update_failures += 1
            if outcome.status is UpdateStatus.BAD_MAC:
                # The device rejected evidence signed with its own key:
                # either the package or the link is compromised.
                record.state = Lifecycle.QUARANTINED
            else:
                # Roll the UPDATING mark back; the device keeps running
                # its current (older but authentic) firmware.
                record.state = Lifecycle.ACTIVE
        if self.telemetry is not None:
            self.telemetry.record_update(outcome.device_id, outcome.status,
                                         outcome.attempts)
