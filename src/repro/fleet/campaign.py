"""Staged-rollout engine: waves, failure thresholds, automatic halt.

A campaign pushes one target firmware version across the manageable
part of the fleet in expanding waves (canary -> broader -> everyone).
Within a wave, devices are partitioned into batches and the batches
are executed on a worker pool; each worker drives its devices' update
conversations (offer -> device-side MAC/version check -> ack) end to
end, including the simulated ROM copy on the device CPU, so "devices
per second" here is the real cost of the whole authenticated path.

Two execution backends (``CampaignConfig.backend``):

* ``"thread"``  -- the original in-process pool; workers share the
  live Device objects.  GIL-bound: the simulated CPU work serialises.
* ``"process"`` -- batches ship to a ``ProcessPoolExecutor``.  Each
  worker process rebuilds its shard's devices from the fleet's
  ``FirmwareSpec`` + seed and the registry-record snapshots it is
  handed (the store codec doubles as the wire format), runs the full
  authenticated conversation locally, and returns mutated record
  documents; the parent merges them back into the registry/store.
  This sidesteps the GIL and is the scale path for multi-10k fleets.

Campaigns are resumable: every wave's outcomes are persisted through
the registry's store (when one is attached) and flushed as a
durability point; ``run(resume=True)`` skips devices whose records
already show the target version, so a killed campaign picks up where
the last flushed wave ended without re-offering applied devices.

After every wave the engine compares the wave's failure fraction
(MAC rejections, version rollbacks, unreachable devices) against the
configured threshold.  Exceeding it HALTS the campaign: no further
wave is offered, the wave's failed devices have their UPDATING mark
rolled back (MAC failures are quarantined instead), and the report
says why.  Firmware itself never rolls back -- the device's monotonic
version check forbids it by design; rollback here is a registry-state
operation, which is all a verifier can honestly do.
"""

import enum
import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.casu.update import UpdatePackage, UpdateStatus
from repro.eval.report import render_table
from repro.fleet.registry import DeviceRecord, FleetRegistry, Lifecycle
from repro.obs.metrics import METRICS

CAMPAIGN_BACKENDS = ("thread", "process")


@dataclass
class CampaignConfig:
    """Knobs for one rollout."""

    # Cumulative fleet coverage after each wave: 5% canary, then 25%,
    # then everyone.  Must be increasing and end at 1.0.
    wave_fractions: Tuple[float, ...] = (0.05, 0.25, 1.0)
    # Halt when a wave's failed fraction exceeds this.
    failure_threshold: float = 0.10
    max_attempts: int = 4  # per-message transport retries
    workers: int = 0  # 0 -> min(8, cpu count)
    batch_size: int = 32  # devices per worker task
    # Post-wave verification: attest every device the wave updated
    # before moving on.  With a trace-verifying session this is where
    # forged or non-replaying branch traces quarantine a device; the
    # failures count toward the wave's halt threshold.
    verify_after_wave: bool = False
    # Execution backend: "thread" shares the live devices under the
    # GIL, "process" shards the wave across worker processes that
    # rebuild their devices from record snapshots (see module doc).
    backend: str = "thread"
    # Process-backend state shipping: None (auto) ships full device
    # snapshots only for replicas the simulation knows are mutated
    # (fault hooks), True for every device (state-faithful but pays
    # snapshot+restore per device per wave), False never (pure
    # record rebuild, pre-snapshot behaviour).
    ship_device_state: Optional[bool] = None
    # Periodic observability dump: after every wave's durability
    # flush, write the process metrics snapshot to this path (atomic
    # replace; a ``.prom`` suffix picks the Prometheus text format,
    # anything else the JSON envelope).  A scraper pointed here sees
    # a long campaign progress wave by wave.
    metrics_dump: Optional[str] = None

    def __post_init__(self):
        fractions = tuple(self.wave_fractions)
        if not fractions or sorted(fractions) != list(fractions):
            raise ValueError("wave_fractions must be increasing")
        if fractions[-1] != 1.0:
            raise ValueError("the final wave must cover the whole fleet (1.0)")
        self.wave_fractions = fractions
        if not 0.0 <= self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in [0, 1]")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.backend not in CAMPAIGN_BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(CAMPAIGN_BACKENDS)}")

    @property
    def effective_workers(self) -> int:
        return self.workers or min(8, os.cpu_count() or 1)


class CampaignStatus(enum.Enum):
    COMPLETE = "complete"
    HALTED = "halted"
    EMPTY = "empty"
    # A cooperative stop (daemon shutdown) observed at a wave boundary:
    # unlike HALTED nothing went wrong -- the flushed waves are durable
    # and ``run(resume=True)`` finishes the remainder.
    STOPPED = "stopped"


@dataclass
class DeviceOutcome:
    device_id: str
    status: Optional[UpdateStatus]  # None -> no authentic ack
    attempts: int
    # Why status is None: "unreachable", "bad-ack-mac" (forged ack,
    # quarantines) or "replay" (captured ack injected, quarantines).
    detail: str = ""

    @property
    def applied(self):
        return self.status is UpdateStatus.APPLIED

    @property
    def status_label(self):
        if self.status is not None:
            return self.status.value
        return self.detail or "unreachable"


@dataclass
class WaveResult:
    index: int
    size: int
    applied: int
    failed: int
    statuses: Counter = field(default_factory=Counter)

    @property
    def failure_fraction(self):
        return self.failed / self.size if self.size else 0.0


@dataclass
class CampaignReport:
    status: CampaignStatus
    target_version: int
    waves: List[WaveResult]
    applied: int
    failed: int
    skipped: int  # devices never offered (halt before their wave)
    elapsed_s: float
    halt_reason: str = ""
    # Devices already at the target version when run(resume=True)
    # started; they are never re-offered.
    resumed: int = 0
    backend: str = "thread"

    @property
    def halted(self):
        return self.status is CampaignStatus.HALTED

    @property
    def stopped(self):
        return self.status is CampaignStatus.STOPPED

    @property
    def offered(self):
        return self.applied + self.failed

    @property
    def devices_per_sec(self):
        return self.offered / self.elapsed_s if self.elapsed_s else 0.0

    def render(self) -> str:
        rows = [
            (w.index, w.size, w.applied, w.failed,
             f"{100 * w.failure_fraction:.1f}%")
            for w in self.waves
        ]
        table = render_table(
            ("wave", "devices", "applied", "failed", "fail%"), rows,
            title=f"rollout to v{self.target_version}: {self.status.value}"
            + (f" ({self.halt_reason})" if self.halt_reason else ""))
        tail = (f"{self.applied} applied, {self.failed} failed, "
                f"{self.skipped} skipped"
                + (f", {self.resumed} resumed" if self.resumed else "")
                + f"; {self.devices_per_sec:.0f} devices/sec"
                + f" [{self.backend}]")
        return table + "\n" + tail


class RolloutCampaign:
    """Drive one staged rollout over a registry's manageable devices.

    Decoupled from the simulation: all it needs is the registry, a
    ``session_factory(device_id) -> VerifierSession`` and a
    ``package_factory(record) -> UpdatePackage`` (per-device, because
    packages are MAC'd under per-device keys -- and because tests and
    demos model a man-in-the-middle by tampering some devices' copies).

    The process backend additionally needs *shard_task*: a picklable
    ``(function, context)`` pair.  The campaign calls
    ``function(context, record_docs)`` in a worker process for each
    batch, where *record_docs* are ``store.record_to_dict`` snapshots
    taken just before submission; the function returns a shard
    document ``{"outcomes": [...], "metrics": snapshot}`` -- mutated
    record/outcome documents the campaign merges back into the live
    registry (and its store) on the main thread, plus the worker's
    per-batch ``MetricsRegistry.snapshot()``, folded into the parent
    registry with its spans re-rooted under the wave's span (a bare
    outcome list is accepted from older shard tasks).
    """

    def __init__(self, registry: FleetRegistry,
                 session_factory: Callable[[str], "VerifierSession"],
                 package_factory: Callable[[DeviceRecord], UpdatePackage],
                 target_version: int,
                 config: Optional[CampaignConfig] = None,
                 telemetry=None,
                 shard_task: Optional[Tuple[Callable, dict]] = None,
                 snapshot_factory: Optional[Callable[[str], Optional[dict]]] = None,
                 post_wave_merge: Optional[Callable[[], None]] = None,
                 stop=None):
        self.registry = registry
        self.session_factory = session_factory
        self.package_factory = package_factory
        self.target_version = target_version
        self.config = config or CampaignConfig()
        self.telemetry = telemetry
        self.shard_task = shard_task
        # Process backend: ``snapshot_factory(device_id)`` returns the
        # wire dict of a full device snapshot (repro.snapshot) or None.
        # When present it rides the record doc as ``doc["device"]`` so
        # workers restore the *live* device state -- including any
        # adversarial mutation -- instead of rebuilding an honest
        # device from the record alone.
        self.snapshot_factory = snapshot_factory
        # Runs after a wave's outcomes merge, before post-wave
        # verification and the durability flush.  The simulation hooks
        # its replica sync here so verify_after_wave on the process
        # backend attests the *updated* device image, not a stale
        # parent replica (which would roll merged records back).
        self.post_wave_merge = post_wave_merge
        # Cooperative stop signal (anything with ``is_set()``, usually
        # a ``threading.Event``): checked only at wave boundaries, so a
        # stop never tears a wave -- every offered wave still reaches
        # its wave-commit event and durability flush, which is exactly
        # the state ``run(resume=True)`` continues from.
        self.stop = stop
        # Event-log campaign tag: minted from the registry's event log
        # at run() start; every offer/wave/quarantine event this
        # campaign produces carries it, which is what makes the
        # per-campaign rollups in `fleet history` possible.
        self._campaign_id: Optional[str] = None
        if self.config.backend == "process" and shard_task is None:
            raise ValueError(
                "backend='process' needs a shard_task; drive the campaign "
                "through FleetSimulation.rollout() or pass one explicitly")

    # ---- wave planning ---------------------------------------------------

    def plan_waves(self, device_ids: Sequence[str]) -> List[List[str]]:
        """Split ids into waves from the cumulative coverage fractions."""
        total = len(device_ids)
        waves, start = [], 0
        for fraction in self.config.wave_fractions:
            end = max(start + 1, round(total * fraction))
            end = min(end, total)
            if end > start:
                waves.append(list(device_ids[start:end]))
            start = end
        return waves

    # ---- execution -------------------------------------------------------

    def run(self, device_ids: Optional[Sequence[str]] = None,
            resume: bool = False) -> CampaignReport:
        ids = list(device_ids) if device_ids is not None \
            else self.registry.manageable_ids()
        resumed = 0
        if resume:
            # Devices whose durable record already shows the target
            # version were applied by an earlier (possibly killed) run
            # of this campaign; never offer them again.
            fresh = [device_id for device_id in ids
                     if self.registry.get(device_id).firmware_version
                     < self.target_version]
            resumed = len(ids) - len(fresh)
            ids = fresh
        backend = self.config.backend
        events = self.registry.events
        started = time.perf_counter()
        if not ids:
            return CampaignReport(CampaignStatus.EMPTY, self.target_version,
                                  [], 0, 0, 0, 0.0, resumed=resumed,
                                  backend=backend)
        if events is not None:
            self._campaign_id = events.start_campaign(
                target_version=self.target_version, backend=backend,
                planned=len(ids), resumed=resumed)
        waves = self.plan_waves(ids)
        results: List[WaveResult] = []
        applied = failed = offered = 0
        status, halt_reason = CampaignStatus.COMPLETE, ""
        pool_cls = (ProcessPoolExecutor if backend == "process"
                    else ThreadPoolExecutor)
        with METRICS.span("campaign.run"), \
                pool_cls(max_workers=self.config.effective_workers) as pool:
            for index, wave in enumerate(waves, start=1):
                if self.stop is not None and self.stop.is_set():
                    status = CampaignStatus.STOPPED
                    halt_reason = (f"stop requested before wave {index} "
                                   f"(resume to finish)")
                    break
                wave_result = self._run_wave(index, wave, pool)
                results.append(wave_result)
                applied += wave_result.applied
                failed += wave_result.failed
                offered += wave_result.size
                if wave_result.failure_fraction > self.config.failure_threshold:
                    status = CampaignStatus.HALTED
                    halt_reason = (
                        f"wave {index} failure {100 * wave_result.failure_fraction:.1f}% "
                        f"> threshold {100 * self.config.failure_threshold:.1f}%")
                    break
        report = CampaignReport(
            status=status,
            target_version=self.target_version,
            waves=results,
            applied=applied,
            failed=failed,
            skipped=len(ids) - offered,
            elapsed_s=time.perf_counter() - started,
            halt_reason=halt_reason,
            resumed=resumed,
            backend=backend,
        )
        if events is not None:
            events.emit(
                "campaign-end", campaign=self._campaign_id,
                status=report.status.value, applied=report.applied,
                failed=report.failed, skipped=report.skipped,
                resumed=report.resumed, halt_reason=report.halt_reason,
                elapsed_s=round(report.elapsed_s, 6),
                devices_per_sec=round(report.devices_per_sec, 1))
            events.flush()
        return report

    def _run_wave(self, index: int, wave: List[str], pool) -> WaveResult:
        # The wave span parents every offer/attest span below it --
        # including spans recorded inside worker processes, which merge
        # back re-rooted onto this id (see METRICS.merge in the process
        # branch).  Pool threads do not inherit the main thread's span
        # stack, so the id travels explicitly.
        with METRICS.span("campaign.wave") as wave_span:
            return self._run_wave_inner(index, wave, pool, wave_span.id)

    def _run_wave_inner(self, index: int, wave: List[str], pool,
                        wave_span: Optional[str] = None) -> WaveResult:
        # Mark the wave in flight, remembering each device's prior
        # state so a failed offer rolls back to what the device
        # actually was (ENROLLED devices must not surface as ACTIVE
        # just because the channel ate their offer).
        prior = {}
        for device_id in wave:
            record = self.registry.get(device_id)
            prior[device_id] = record.state
            record.state = Lifecycle.UPDATING
        batch_size = self.config.batch_size
        if self.config.backend == "process":
            # Shard-task submission costs real serialisation; keep the
            # batches big enough that each worker sees ~2 per wave
            # (enough for load balance, few enough to amortise).
            per_worker = -(-len(wave) // (2 * self.config.effective_workers))
            batch_size = max(batch_size, per_worker)
        batches = [wave[i:i + batch_size] for i in range(0, len(wave), batch_size)]
        outcomes: List[DeviceOutcome] = []
        if self.config.backend == "process":
            from itertools import repeat

            from repro.fleet.store import record_to_dict

            func, context = self.shard_task
            payloads = [[self._shard_doc(record_to_dict, device_id)
                         for device_id in batch] for batch in batches]
            for shard_doc in pool.map(func, repeat(context), payloads):
                if isinstance(shard_doc, list):
                    # Pre-metrics shard tasks return a bare outcome
                    # list; accept it (no worker metrics to merge).
                    shard_outcomes = shard_doc
                else:
                    # The wire format's other half: the worker's
                    # per-batch MetricsRegistry snapshot folds into
                    # the parent registry, its spans re-rooted under
                    # this wave so thread and process backends report
                    # identical totals and one causal tree.
                    METRICS.merge(shard_doc.get("metrics"),
                                  reroot_to=wave_span)
                    shard_outcomes = shard_doc["outcomes"]
                outcomes.extend(self._merge_shard_outcome(doc)
                                for doc in shard_outcomes)
        else:
            for batch_outcomes in pool.map(
                    lambda batch: self._run_batch(batch, wave_span), batches):
                outcomes.extend(batch_outcomes)
        result = WaveResult(index=index, size=len(wave), applied=0, failed=0)
        for outcome in outcomes:
            self._apply_outcome(outcome, prior.get(outcome.device_id))
            result.statuses[outcome.status_label] += 1
            if outcome.applied:
                result.applied += 1
            else:
                result.failed += 1
        if self.post_wave_merge is not None:
            self.post_wave_merge()
        if self.config.verify_after_wave:
            self._verify_wave(result, outcomes)
        # The wave-commit event rides the same durability point as the
        # records it describes: emitted before the flush, so either
        # both survive a kill or neither does.
        if self.registry.events is not None:
            self.registry.events.emit(
                "wave-commit", campaign=self._campaign_id, index=index,
                size=result.size, applied=result.applied,
                failed=result.failed, statuses=dict(result.statuses))
        # Durability point: a kill after this flush resumes from here.
        self.registry.flush()
        if self.config.metrics_dump:
            from repro.obs.export import write_snapshot

            fmt = ("prom" if self.config.metrics_dump.endswith(".prom")
                   else "json")
            write_snapshot(self.config.metrics_dump, METRICS.snapshot(),
                           fmt=fmt,
                           source=f"{self._campaign_id or 'campaign'}"
                                  f"/wave{index}")
        return result

    def _shard_doc(self, record_to_dict, device_id: str) -> dict:
        """One record's shard wire document, plus its device snapshot.

        The record codec carries the verifier-side state; the optional
        ``device`` field carries the full device-side state so the
        worker resurrects the exact (possibly compromised) device
        rather than an honest rebuild.
        """
        doc = record_to_dict(self.registry.get(device_id))
        if self.snapshot_factory is not None:
            snapshot = self.snapshot_factory(device_id)
            if snapshot is not None:
                doc["device"] = snapshot
        return doc

    def _merge_shard_outcome(self, doc: dict) -> DeviceOutcome:
        """Fold one worker-process outcome document into the registry.

        The worker mutated its own copy of the record (version bump,
        nonce high-water advance, quarantine on forged evidence); the
        parent replays those deltas onto the live record here, on the
        main thread, before the usual outcome accounting runs.
        """
        record = self.registry.get(doc["device_id"])
        record.nonce_high_water = max(record.nonce_high_water,
                                      doc["nonce_high_water"])
        # The worker's session is the integrity authority: a verdict
        # it reached (forged ack, replay) travels as record state and
        # survives the merge exactly like a thread-backend session
        # writing the shared record directly.
        if doc["state"] == Lifecycle.QUARANTINED.value:
            # Worker sessions have no event log; the parent logs the
            # verdict on merge (only the transition, once).
            if (record.state is not Lifecycle.QUARANTINED
                    and self.registry.events is not None):
                self.registry.events.emit(
                    "quarantine", device=record.device_id,
                    campaign=self._campaign_id,
                    reason=doc.get("detail") or "worker-verdict")
            record.state = Lifecycle.QUARANTINED
        status = UpdateStatus(doc["status"]) if doc["status"] else None
        if status is UpdateStatus.APPLIED:
            record.firmware_version = doc["current_version"]
            record.applied_versions = list(doc["applied_versions"])
            # Same re-baseline rule as the thread path: the image
            # changed, the pinned hash is stale.
            record.firmware_hash = None
        return DeviceOutcome(doc["device_id"], status, doc["attempts"],
                             detail=doc.get("detail", ""))

    def _verify_wave(self, result: WaveResult, outcomes: List[DeviceOutcome]):
        """Attest each applied device; demote verification failures.

        The attest runs on the main thread over the already-created
        sessions; a failed verification (bad MAC, hash mismatch,
        forged or non-replaying branch trace) flips the device from
        the wave's applied column into its failed column -- counted
        against the halt threshold like any other wave failure.
        """
        for outcome in outcomes:
            if not outcome.applied:
                continue
            session = self.session_factory(outcome.device_id)
            session.campaign = self._campaign_id
            with METRICS.span("campaign.attest"):
                attest = session.attest()
            # The attest consumed a nonce (and may have quarantined);
            # persist before the wave's durability flush.
            self.registry.save(self.registry.get(outcome.device_id))
            if attest.ok:
                continue
            result.applied -= 1
            result.failed += 1
            result.statuses[f"verify:{attest.detail}"] += 1

    def _run_batch(self, batch: List[str],
                   wave_span: Optional[str] = None) -> List[DeviceOutcome]:
        """Worker task: one batch of devices, conversations end to end."""
        outcomes = []
        for device_id in batch:
            record = self.registry.get(device_id)
            session = self.session_factory(device_id)
            session.campaign = self._campaign_id
            package = self.package_factory(record)
            # Explicit parent: this runs on a pool thread whose span
            # stack is empty; the wave id restores the causal link.
            with METRICS.span("campaign.offer", parent=wave_span):
                offer = session.offer_update(package)
            outcomes.append(DeviceOutcome(device_id, offer.status,
                                          offer.attempts, detail=offer.detail))
        return outcomes

    def _apply_outcome(self, outcome: DeviceOutcome,
                       prior: Optional[Lifecycle] = None):
        """Fold one device's result back into the registry (main thread)."""
        record = self.registry.get(outcome.device_id)
        events = self.registry.events
        if events is not None:
            events.emit("offer", device=outcome.device_id,
                        campaign=self._campaign_id,
                        status=outcome.status_label,
                        attempts=outcome.attempts,
                        version=self.target_version)
        if outcome.applied:
            record.state = Lifecycle.ACTIVE
        else:
            record.update_failures += 1
            if (outcome.status is UpdateStatus.BAD_MAC
                    or record.state is Lifecycle.QUARANTINED):
                # The device rejected evidence signed with its own key
                # (BAD_MAC), or the session itself already quarantined
                # (forged ack MAC, replayed capture -- its verdict is
                # on the record in both backends): the package or the
                # link is compromised, hands off.
                if (record.state is not Lifecycle.QUARANTINED
                        and events is not None):
                    # Session- and merge-detected verdicts were already
                    # logged at detection; this covers the device-side
                    # BAD_MAC rejection, which only the engine sees.
                    events.emit("quarantine", device=outcome.device_id,
                                campaign=self._campaign_id,
                                reason=outcome.status_label)
                record.state = Lifecycle.QUARANTINED
            else:
                # Roll the UPDATING mark back to the pre-wave state;
                # the device keeps running its current (older but
                # authentic) firmware.
                record.state = prior or Lifecycle.ACTIVE
        self.registry.save(record)
        if self.telemetry is not None:
            self.telemetry.record_update(outcome.device_id, outcome.status,
                                         outcome.attempts,
                                         detail=outcome.detail)
