"""Simulated verifier<->device network.

A :class:`SimChannel` is one direction of a device's link: a FIFO that
can drop and reorder messages under a deterministic per-channel RNG, so
every fleet run is reproducible from its seed.  A :class:`Link` pairs a
downlink (verifier -> device) with an uplink (device -> verifier), and
:class:`Transport` hands out one link per device id, each seeded from
the fleet seed + the id -- independent links can then be driven from
independent campaign workers without sharing any mutable state.

Nothing here authenticates anything: integrity lives one layer up in
:mod:`repro.fleet.protocol` (and ultimately in the device's own
MAC/version check), exactly because the channel is untrusted.
"""

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Envelope:
    """One message in flight.  *body* is an opaque payload object."""

    seq: int
    src: str
    dst: str
    kind: str
    body: object

    def __str__(self):
        return f"#{self.seq} {self.src}->{self.dst} {self.kind}"


@dataclass
class ChannelStats:
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    reordered: int = 0

    def merge(self, other: "ChannelStats"):
        self.sent += other.sent
        self.delivered += other.delivered
        self.dropped += other.dropped
        self.reordered += other.reordered


def _check_probability(name, value):
    # The closed interval: loss=1.0 models a fully partitioned channel
    # (every message dropped), which fleet tests use to assert that an
    # unreachable population degrades cleanly instead of corrupting
    # verifier state.
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1]")


class SimChannel:
    """One direction of a link: lossy, reordering, deterministic."""

    def __init__(self, loss=0.0, reorder=0.0, seed=0):
        _check_probability("loss", loss)
        _check_probability("reorder", reorder)
        self.loss = loss
        self.reorder = reorder
        self._rng = random.Random(seed)
        self._queue: List[Envelope] = []
        self._seq = 0
        self.stats = ChannelStats()

    def send(self, src, dst, kind, body) -> Optional[Envelope]:
        """Queue a message; returns the envelope, or None if dropped."""
        self._seq += 1
        envelope = Envelope(self._seq, src, dst, kind, body)
        self.stats.sent += 1
        if self.loss and self._rng.random() < self.loss:
            self.stats.dropped += 1
            return None
        if self._queue and self.reorder and self._rng.random() < self.reorder:
            slot = self._rng.randrange(len(self._queue))
            self._queue.insert(slot, envelope)
            self.stats.reordered += 1
        else:
            self._queue.append(envelope)
        return envelope

    def drain(self) -> List[Envelope]:
        """Deliver everything currently in flight."""
        out, self._queue = self._queue, []
        self.stats.delivered += len(out)
        return out

    def __len__(self):
        return len(self._queue)


@dataclass
class Link:
    """Both directions of one device's connection to the verifier."""

    device_id: str
    down: SimChannel  # verifier -> device
    up: SimChannel  # device -> verifier

    def stats(self) -> ChannelStats:
        merged = ChannelStats()
        merged.merge(self.down.stats)
        merged.merge(self.up.stats)
        return merged


class Transport:
    """Per-device links, lazily created, independently seeded.

    Each link's RNG seed mixes the fleet seed with the device id, so a
    single device's delivery schedule is stable regardless of how many
    other devices exist or in what order they communicate -- the
    property that lets campaign workers run links in parallel.
    """

    def __init__(self, loss=0.0, reorder=0.0, seed=0):
        _check_probability("loss", loss)
        _check_probability("reorder", reorder)
        self.loss = loss
        self.reorder = reorder
        self.seed = seed
        self._links: Dict[str, Link] = {}

    def link(self, device_id: str) -> Link:
        link = self._links.get(device_id)
        if link is None:
            salt = zlib.crc32(device_id.encode())
            link = Link(
                device_id,
                down=SimChannel(self.loss, self.reorder, seed=self.seed ^ salt),
                up=SimChannel(self.loss, self.reorder, seed=(self.seed ^ salt) + 1),
            )
            self._links[device_id] = link
        return link

    def stats(self) -> ChannelStats:
        """Aggregate channel counters across every link."""
        merged = ChannelStats()
        for link in self._links.values():
            merged.merge(link.stats())
        return merged
