"""Device registry: the verifier's durable view of the fleet.

One :class:`DeviceRecord` per enrolled device: the provisioned
per-device update key (``UpdateKey.derive``), the platform it claims,
its security level, the firmware version/hash last attested, the
freshness counters the replay defences depend on (``nonce_high_water``
-- the highest challenge nonce ever issued to the device, never reused
-- and monotonic ``last_seen``), and a lifecycle state.  The registry
never talks to a device itself -- the protocol layer reads keys from
it and writes observations back, so the registry stays a plain data
structure.

Persistence is delegated: construct with a
:class:`~repro.fleet.store.RegistryStore` and the registry loads its
records from it, ``save()`` upserts one record's document, and
``flush()`` commits a durability point (plus the fleet-level *meta*
document: the logical clock and the applied-package log).  Without a
store the registry behaves exactly as before -- plain dicts, no I/O.

Lifecycle:

    ENROLLED --attest--> ACTIVE --offer--> UPDATING --ack--> ACTIVE
                           |                            (or back, on a
                           +--bad MAC / hash mismatch--> QUARANTINED
                           +--operator---------------->  RETIRED
"""

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.casu.update import UpdateKey
from repro.device import SECURITY_LEVELS
from repro.errors import ReproError


class FleetError(ReproError):
    """Registry/protocol/campaign-level failure."""


class Lifecycle(enum.Enum):
    ENROLLED = "enrolled"  # key provisioned, no attestation seen yet
    ACTIVE = "active"  # attested and healthy
    UPDATING = "updating"  # an update offer is in flight
    QUARANTINED = "quarantined"  # integrity evidence failed; hands off
    RETIRED = "retired"  # operator removed it from the fleet

    @property
    def manageable(self):
        """States that may receive update offers."""
        return self in (Lifecycle.ENROLLED, Lifecycle.ACTIVE)


@dataclass
class DeviceRecord:
    device_id: str
    key: UpdateKey
    platform: str
    security: str
    state: Lifecycle = Lifecycle.ENROLLED
    firmware_version: int = 0
    firmware_hash: Optional[str] = None  # golden hash from enrollment
    enrolled_at: int = 0  # registry logical time
    # Monotonic device-local time of the newest accepted report; a
    # verified report whose cycle is below this is replayed/stale
    # evidence and quarantines the device instead of rolling it back.
    last_seen: Optional[int] = None
    attest_count: int = 0
    violation_count: int = 0
    reset_count: int = 0
    update_failures: int = 0
    # Challenge-nonce high-water mark.  Every verifier exchange draws
    # the next nonce from here and the value persists with the record,
    # so nonces stay strictly increasing across sessions, CLI
    # invocations and process restarts -- a captured reply from an
    # earlier run can never match a later challenge.
    nonce_high_water: int = 0
    # The exact sequence of update versions this device applied, in
    # order.  Devices that skip a version (enrolled mid-campaign,
    # resumed rollouts) have different PMEM from devices that walked
    # every step; replaying this sequence is what lets a restored
    # replica hash identically to the real device.
    applied_versions: List[int] = field(default_factory=list)
    # Cumulative per-reason violation totals from the last accepted
    # report.  Persisting them lets a restarted verifier seed its
    # telemetry baselines (FleetTelemetry._seen) from the store, so
    # the first post-restart heartbeat folds only *new* violations
    # instead of re-counting the device's whole history.
    violation_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def enrolled_ok(self) -> bool:
        """Did the enrollment handshake ever complete?

        The golden hash alone is not the signal: an applied update
        clears it pending re-attestation, so a freshly restored
        post-rollout record legitimately has no pinned hash.
        """
        return (self.firmware_hash is not None
                or self.attest_count > 0
                or self.firmware_version > 0)

    def observe_cycle(self, cycle: int):
        """Advance last_seen monotonically (never backwards)."""
        if self.last_seen is None or cycle > self.last_seen:
            self.last_seen = cycle

    def __str__(self):
        return (f"{self.device_id} [{self.state.value}] "
                f"v{self.firmware_version} {self.platform}")


# Added to every record's nonce high-water mark when loading from a
# store.  Saves between durability points (a SQLite commit, an fsync)
# can be lost to a kill, and a lost nonce advance would let the next
# run reissue a challenge an attacker already holds the reply to.  The
# uncommitted window is a handful of exchanges per device (sweeps and
# waves flush at their end); skipping 1000 nonces forward on every
# restart clears it with enormous margin -- nonces are 64-bit and only
# ever need to increase.
NONCE_RESTART_SLACK = 1000


class FleetRegistry:
    """Registry keyed by device id; optionally backed by a store.

    *store* is any :class:`~repro.fleet.store.RegistryStore` (duck
    typed -- the registry never imports the store module).  When given,
    existing records and the meta document are loaded at construction
    and every mutation through the registry's own API persists; direct
    record mutation (the protocol layer does this) persists at the next
    explicit :meth:`save`.
    """

    def __init__(self, store=None, events=None):
        self._records: Dict[str, DeviceRecord] = {}
        self.clock = 0  # logical time, bumped by tick()
        self._store = store
        # Optional repro.obs.events.EventLog (duck typed, like the
        # store).  The registry is the layer whose flush() defines the
        # fleet's durability points, so it co-flushes the event log:
        # anything emitted before a registry flush survives a kill.
        self.events = events
        self.meta: Dict[str, object] = {}
        if store is not None:
            from repro.fleet.store import record_from_dict

            self.meta = store.load_meta()
            self.clock = int(self.meta.get("clock", 0))
            for device_id, doc in sorted(store.load_records().items()):
                record = record_from_dict(doc)
                # Reserve past any nonce a killed run may have consumed
                # after its last durability point (see the constant).
                record.nonce_high_water += NONCE_RESTART_SLACK
                self._records[device_id] = record
            if self._records:
                # Write-ahead: commit the reservation BEFORE any
                # challenge is issued, so a second crash cannot replay
                # this restart's nonce base either.
                self.save_all()
                self.flush()

    @property
    def store(self):
        return self._store

    @property
    def durable(self) -> bool:
        return self._store is not None

    def tick(self) -> int:
        self.clock += 1
        return self.clock

    # ---- persistence -----------------------------------------------------

    def save(self, record: DeviceRecord):
        """Upsert one record's document into the store (no-op without)."""
        if self._store is not None:
            from repro.fleet.store import record_to_dict

            self._store.save_record(record_to_dict(record))

    def save_all(self):
        for record in self:
            self.save(record)

    def flush(self):
        """Persist meta + commit: everything saved so far is durable.

        The event log shares the durability point: events emitted up
        to here survive exactly when the records they describe do.
        """
        if self._store is not None:
            self.meta["clock"] = self.clock
            self._store.save_meta(self.meta)
            self._store.flush()
        if self.events is not None:
            self.events.flush()

    # ---- enrollment ------------------------------------------------------

    def enroll(self, device_id: str, platform="TI MSP430", security="casu",
               key: Optional[UpdateKey] = None) -> DeviceRecord:
        if device_id in self._records:
            raise FleetError(f"device {device_id!r} already enrolled")
        if security not in SECURITY_LEVELS:
            raise FleetError(f"security must be one of {SECURITY_LEVELS}")
        record = DeviceRecord(
            device_id=device_id,
            key=key or UpdateKey.derive(device_id),
            platform=platform,
            security=security,
            enrolled_at=self.tick(),
        )
        self._records[device_id] = record
        self.save(record)
        if self.events is not None:
            self.events.emit("enroll", device=device_id,
                             platform=platform, security=security)
        return record

    # ---- lookup ----------------------------------------------------------

    def get(self, device_id: str) -> DeviceRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise FleetError(f"device {device_id!r} is not enrolled") from None

    def __contains__(self, device_id):
        return device_id in self._records

    def __len__(self):
        return len(self._records)

    def __iter__(self) -> Iterator[DeviceRecord]:
        return iter(self._records.values())

    def ids(self) -> List[str]:
        return list(self._records)

    def by_state(self, state: Lifecycle) -> List[DeviceRecord]:
        return [r for r in self if r.state is state]

    def manageable_ids(self) -> List[str]:
        return [r.device_id for r in self if r.state.manageable]

    # ---- state transitions ----------------------------------------------

    def quarantine(self, device_id: str, reason: str = "operator"):
        record = self.get(device_id)
        record.state = Lifecycle.QUARANTINED
        self.save(record)
        if self.events is not None:
            self.events.emit("quarantine", device=device_id, reason=reason)

    def retire(self, device_id: str):
        record = self.get(device_id)
        record.state = Lifecycle.RETIRED
        self.save(record)

    # ---- aggregates ------------------------------------------------------

    def state_histogram(self) -> Counter:
        return Counter(r.state.value for r in self)

    def version_histogram(self) -> Counter:
        return Counter(r.firmware_version for r in self)

    def summary(self) -> dict:
        return {
            "devices": len(self),
            "states": dict(self.state_histogram()),
            "versions": dict(self.version_histogram()),
            "violations": sum(r.violation_count for r in self),
            "resets": sum(r.reset_count for r in self),
            "update_failures": sum(r.update_failures for r in self),
        }
