"""Device registry: the verifier's durable view of the fleet.

One :class:`DeviceRecord` per enrolled device: the provisioned
per-device update key (``UpdateKey.derive``), the platform it claims,
its security level, the firmware version/hash last attested, and a
lifecycle state.  The registry never talks to a device itself -- the
protocol layer reads keys from it and writes observations back, so the
registry stays a plain data structure that a later PR can persist or
shard without touching the wire logic.

Lifecycle:

    ENROLLED --attest--> ACTIVE --offer--> UPDATING --ack--> ACTIVE
                           |                            (or back, on a
                           +--bad MAC / hash mismatch--> QUARANTINED
                           +--operator---------------->  RETIRED
"""

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.casu.update import UpdateKey
from repro.device import SECURITY_LEVELS
from repro.errors import ReproError


class FleetError(ReproError):
    """Registry/protocol/campaign-level failure."""


class Lifecycle(enum.Enum):
    ENROLLED = "enrolled"  # key provisioned, no attestation seen yet
    ACTIVE = "active"  # attested and healthy
    UPDATING = "updating"  # an update offer is in flight
    QUARANTINED = "quarantined"  # integrity evidence failed; hands off
    RETIRED = "retired"  # operator removed it from the fleet

    @property
    def manageable(self):
        """States that may receive update offers."""
        return self in (Lifecycle.ENROLLED, Lifecycle.ACTIVE)


@dataclass
class DeviceRecord:
    device_id: str
    key: UpdateKey
    platform: str
    security: str
    state: Lifecycle = Lifecycle.ENROLLED
    firmware_version: int = 0
    firmware_hash: Optional[str] = None  # golden hash from enrollment
    enrolled_at: int = 0  # registry logical time
    last_seen: Optional[int] = None
    attest_count: int = 0
    violation_count: int = 0
    reset_count: int = 0
    update_failures: int = 0

    def __str__(self):
        return (f"{self.device_id} [{self.state.value}] "
                f"v{self.firmware_version} {self.platform}")


class FleetRegistry:
    """In-memory registry keyed by device id."""

    def __init__(self):
        self._records: Dict[str, DeviceRecord] = {}
        self.clock = 0  # logical time, bumped by tick()

    def tick(self) -> int:
        self.clock += 1
        return self.clock

    # ---- enrollment ------------------------------------------------------

    def enroll(self, device_id: str, platform="TI MSP430", security="casu",
               key: Optional[UpdateKey] = None) -> DeviceRecord:
        if device_id in self._records:
            raise FleetError(f"device {device_id!r} already enrolled")
        if security not in SECURITY_LEVELS:
            raise FleetError(f"security must be one of {SECURITY_LEVELS}")
        record = DeviceRecord(
            device_id=device_id,
            key=key or UpdateKey.derive(device_id),
            platform=platform,
            security=security,
            enrolled_at=self.tick(),
        )
        self._records[device_id] = record
        return record

    # ---- lookup ----------------------------------------------------------

    def get(self, device_id: str) -> DeviceRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise FleetError(f"device {device_id!r} is not enrolled") from None

    def __contains__(self, device_id):
        return device_id in self._records

    def __len__(self):
        return len(self._records)

    def __iter__(self) -> Iterator[DeviceRecord]:
        return iter(self._records.values())

    def ids(self) -> List[str]:
        return list(self._records)

    def by_state(self, state: Lifecycle) -> List[DeviceRecord]:
        return [r for r in self if r.state is state]

    def manageable_ids(self) -> List[str]:
        return [r.device_id for r in self if r.state.manageable]

    # ---- state transitions ----------------------------------------------

    def quarantine(self, device_id: str):
        self.get(device_id).state = Lifecycle.QUARANTINED

    def retire(self, device_id: str):
        self.get(device_id).state = Lifecycle.RETIRED

    # ---- aggregates ------------------------------------------------------

    def state_histogram(self) -> Counter:
        return Counter(r.state.value for r in self)

    def version_histogram(self) -> Counter:
        return Counter(r.firmware_version for r in self)

    def summary(self) -> dict:
        return {
            "devices": len(self),
            "states": dict(self.state_histogram()),
            "versions": dict(self.version_histogram()),
            "violations": sum(r.violation_count for r in self),
            "resets": sum(r.reset_count for r in self),
            "update_failures": sum(r.update_failures for r in self),
        }
