"""Fleet: the verifier/operator side of EILID.

Everything below the wire in this repo -- CASU's active RoT, the EILID
shadow-stack bank, the authenticated update -- models ONE device.  This
package models the other end of the deployment story: a verifier that
provisions per-device keys, collects authenticated attestation reports
(firmware hash + CFI-violation log), pushes signed firmware in staged
waves, and reacts to rejections across a population of thousands of
simulated devices.

* :mod:`repro.fleet.registry`   -- device records and lifecycle states.
* :mod:`repro.fleet.store`      -- durable registry state (memory /
  JSON-lines / SQLite backends, one codec).
* :mod:`repro.fleet.transport`  -- simulated lossy/reordering links.
* :mod:`repro.fleet.protocol`   -- authenticated verifier<->device messages.
* :mod:`repro.fleet.campaign`   -- staged-rollout engine (waves, halt,
  thread/process backends, resume).
* :mod:`repro.fleet.telemetry`  -- fleet-level counters and histograms.
* :mod:`repro.fleet.simulation` -- N devices + agents + links in one object.
"""

from repro.fleet.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignStatus,
    DeviceOutcome,
    RolloutCampaign,
    WaveResult,
)
from repro.fleet.protocol import DeviceAgent, MsgKind, OfferResult, VerifierSession
from repro.fleet.registry import DeviceRecord, FleetRegistry, Lifecycle
from repro.fleet.simulation import FleetSimulation
from repro.fleet.store import (
    JsonlStore,
    MemoryStore,
    RegistryStore,
    SqliteStore,
    open_store,
    record_from_dict,
    record_to_dict,
)
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.transport import ChannelStats, Envelope, Link, SimChannel, Transport

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignStatus",
    "ChannelStats",
    "DeviceAgent",
    "DeviceOutcome",
    "DeviceRecord",
    "Envelope",
    "FleetRegistry",
    "FleetSimulation",
    "FleetTelemetry",
    "JsonlStore",
    "Lifecycle",
    "Link",
    "MemoryStore",
    "MsgKind",
    "OfferResult",
    "RegistryStore",
    "RolloutCampaign",
    "SimChannel",
    "SqliteStore",
    "Transport",
    "VerifierSession",
    "WaveResult",
    "open_store",
    "record_from_dict",
    "record_to_dict",
]
