"""Durable verifier state: pluggable persistence for the registry.

The registry docstring always promised to "stay a plain data structure
that a later PR can persist or shard without touching the wire logic";
this module is that persistence.  A :class:`RegistryStore` snapshots
:class:`~repro.fleet.registry.DeviceRecord` documents -- including the
freshness counters the replay defences depend on (``nonce_high_water``,
monotonic ``last_seen``) -- plus one fleet-level *meta* document (the
registry's logical clock and the log of applied update packages, so a
restarted simulation can fast-forward its device replicas).

Three backends, one contract:

* :class:`MemoryStore`  -- dicts; the default, zero I/O.
* :class:`JsonlStore`   -- an append-only JSON-lines log; every save is
  one appended line, loads fold the log last-wins, ``close()`` compacts.
  Crash-friendly: a torn final line is ignored, everything before it
  survives.
* :class:`SqliteStore`  -- one table per document kind, upserts inside
  a transaction that ``flush()`` commits (campaigns flush per wave).

``open_store(path)`` picks a backend from the path: ``None`` /
``":memory:"`` -> memory, ``.db`` / ``.sqlite`` / ``.sqlite3`` ->
SQLite, anything else -> JSON lines.

Record documents are also the process-shard wire format: campaign
workers receive ``record_to_dict`` snapshots, rebuild their shard's
devices, and ship mutated documents back for the parent to merge --
the store and the shard protocol deliberately share one codec.
"""

import json
import os
import sqlite3
import threading
from typing import Dict, Optional

from repro.casu.update import UpdateKey
from repro.fleet.registry import DeviceRecord, FleetError, Lifecycle
from repro.snapshot import WIRE_VERSION

META_CLOCK = "clock"
META_PACKAGES = "packages"  # version(str) -> {"target": int, "payload": hex}
META_FIRMWARE = "firmware"  # the FirmwareSpec dict the fleet was built on


# ---- the record codec ------------------------------------------------------


def record_to_dict(record: DeviceRecord) -> dict:
    """A JSON-safe snapshot of one record (also the shard wire format).

    The ``codec`` field versions the wire format (shared with the
    device-snapshot codec, :data:`repro.snapshot.WIRE_VERSION`):
    a parent and a pool worker running different builds fail loudly in
    :func:`record_from_dict` instead of misreading fields.
    """
    return {
        "codec": WIRE_VERSION,
        "device_id": record.device_id,
        "key": record.key.secret.hex(),
        "platform": record.platform,
        "security": record.security,
        "state": record.state.value,
        "firmware_version": record.firmware_version,
        "firmware_hash": record.firmware_hash,
        "enrolled_at": record.enrolled_at,
        "last_seen": record.last_seen,
        "attest_count": record.attest_count,
        "violation_count": record.violation_count,
        "reset_count": record.reset_count,
        "update_failures": record.update_failures,
        "nonce_high_water": record.nonce_high_water,
        "applied_versions": list(record.applied_versions),
        "violation_totals": dict(record.violation_totals),
    }


def record_from_dict(doc: dict) -> DeviceRecord:
    # Docs that predate the codec field are grandfathered in (their
    # layout is codec-1 compatible); an explicit mismatch -- a rolling
    # upgrade where parent and worker builds disagree -- is an error,
    # and a *clear* one rather than a KeyError three fields later.
    codec = doc.get("codec", WIRE_VERSION)
    if codec != WIRE_VERSION:
        raise FleetError(
            f"device record codec version {codec!r} is not supported by "
            f"this build (expected {WIRE_VERSION}); parent and worker "
            f"are running different versions")
    try:
        return DeviceRecord(
            device_id=doc["device_id"],
            key=UpdateKey(bytes.fromhex(doc["key"])),
            platform=doc["platform"],
            security=doc["security"],
            state=Lifecycle(doc["state"]),
            firmware_version=doc["firmware_version"],
            firmware_hash=doc.get("firmware_hash"),
            enrolled_at=doc.get("enrolled_at", 0),
            last_seen=doc.get("last_seen"),
            attest_count=doc.get("attest_count", 0),
            violation_count=doc.get("violation_count", 0),
            reset_count=doc.get("reset_count", 0),
            update_failures=doc.get("update_failures", 0),
            nonce_high_water=doc.get("nonce_high_water", 0),
            applied_versions=list(doc.get("applied_versions", ())),
            violation_totals=dict(doc.get("violation_totals", {})),
        )
    except (KeyError, ValueError) as error:
        raise FleetError(f"malformed stored device record: {error}") from None


# ---- the backend contract --------------------------------------------------


class RegistryStore:
    """Persistence contract the registry talks to.

    One document per device (last write wins) plus one meta document.
    Implementations must make ``flush()`` a durability point: anything
    saved before a flush survives a process kill after it.
    """

    backend = "abstract"

    def load_records(self) -> Dict[str, dict]:
        raise NotImplementedError

    def save_record(self, doc: dict):
        raise NotImplementedError

    def load_meta(self) -> dict:
        raise NotImplementedError

    def save_meta(self, meta: dict):
        raise NotImplementedError

    def flush(self):
        pass

    def close(self):
        self.flush()

    # Context-manager sugar so scripts can `with open_store(...) as s:`.
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class MemoryStore(RegistryStore):
    """Dict-backed store: the process-local default, zero I/O.

    Round-trips through the same document codec as the durable
    backends, so swapping a path in changes durability and nothing
    else.
    """

    backend = "memory"

    def __init__(self):
        self._records: Dict[str, dict] = {}
        self._meta: dict = {}

    def load_records(self) -> Dict[str, dict]:
        return {device_id: dict(doc)
                for device_id, doc in self._records.items()}

    def save_record(self, doc: dict):
        self._records[doc["device_id"]] = dict(doc)

    def load_meta(self) -> dict:
        return json.loads(json.dumps(self._meta)) if self._meta else {}

    def save_meta(self, meta: dict):
        self._meta = json.loads(json.dumps(meta))


class JsonlStore(RegistryStore):
    """Append-only JSON-lines log; loads fold last-wins.

    Every ``save_record`` appends one ``{"kind": "record", ...}`` line;
    ``save_meta`` appends a ``{"kind": "meta", ...}`` line.  A crash can
    only tear the final line, which load() skips, so the store is as
    durable as its last flushed write.  ``compact()`` rewrites the
    file to one line per live document; it runs on close, at open, and
    live -- mid-session, whenever redundancy crosses
    ``COMPACT_FACTOR`` -- so a verifier that re-saves its records every
    wave for weeks never grows an unbounded log.
    """

    backend = "jsonl"

    # Compact when the log holds this many times more lines than live
    # documents.  Checked at open (long-lived append-only verifiers --
    # cron heartbeats -- rarely close cleanly, so open is the reliable
    # hook) AND after every append, so a long-running session (many
    # campaigns over one open store) keeps its log bounded instead of
    # growing until the next restart.
    COMPACT_FACTOR = 4

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._records, self._meta, self._lines = self._load_file()
        self._file = open(path, "a", encoding="utf-8")
        if self._over_threshold():
            self.compact()

    def _over_threshold(self) -> bool:
        live = len(self._records) + (1 if self._meta else 0)
        return self._lines > max(64, self.COMPACT_FACTOR * live)

    def _load_file(self):
        records: Dict[str, dict] = {}
        meta: dict = {}
        lines = 0
        if not os.path.exists(self.path):
            return records, meta, lines
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a kill mid-append
                lines += 1
                kind = doc.pop("kind", "record")
                if kind == "meta":
                    meta = doc
                elif "device_id" in doc:
                    records[doc["device_id"]] = doc
        return records, meta, lines

    def _append(self, doc: dict):
        self._file.write(json.dumps(doc, sort_keys=True) + "\n")
        self._lines += 1

    def load_records(self) -> Dict[str, dict]:
        with self._lock:
            return {device_id: dict(doc)
                    for device_id, doc in self._records.items()}

    def save_record(self, doc: dict):
        with self._lock:
            self._records[doc["device_id"]] = dict(doc)
            self._append({"kind": "record", **doc})
            # Push the line to the kernel immediately: a SIGKILL then
            # loses nothing (only power loss needs the fsync that
            # flush() adds).  Nonce high-water saves rely on this.
            self._file.flush()
            # Live compaction: a long-running verifier re-saves the
            # same records every sweep/wave; once redundancy crosses
            # the threshold, rewrite in place instead of waiting for a
            # close/reopen that may never come.
            if self._over_threshold():
                self._compact_locked()

    def load_meta(self) -> dict:
        with self._lock:
            return dict(self._meta)

    def save_meta(self, meta: dict):
        with self._lock:
            self._meta = json.loads(json.dumps(meta))
            self._append({"kind": "meta", **self._meta})
            if self._over_threshold():
                self._compact_locked()

    def flush(self):
        with self._lock:
            if self._file.closed:
                return
            self._file.flush()
            os.fsync(self._file.fileno())

    def compact(self):
        """Rewrite the log to one line per live document.

        Atomically: the compacted log is written to a sibling temp
        file and os.replace()'d over the live one, so a kill at any
        point leaves either the full old log or the full new one --
        never a truncated registry (the records ARE the device keys).
        """
        with self._lock:
            self._compact_locked()

    def _compact_locked(self):
        if self._file.closed:
            return
        self._file.close()
        temp_path = self.path + ".compact"
        with open(temp_path, "w", encoding="utf-8") as handle:
            if self._meta:
                handle.write(json.dumps(
                    {"kind": "meta", **self._meta}, sort_keys=True) + "\n")
            for doc in self._records.values():
                handle.write(json.dumps(
                    {"kind": "record", **doc}, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        self._lines = len(self._records) + (1 if self._meta else 0)
        self._file = open(self.path, "a", encoding="utf-8")

    def close(self):
        if self._file.closed:
            return
        self.compact()
        self.flush()
        self._file.close()


class SqliteStore(RegistryStore):
    """SQLite-backed store: upserts batched until ``flush()`` commits.

    Campaigns flush once per wave, so a kill mid-wave rolls back to the
    previous wave's committed state -- the resume path then re-offers
    only that wave, and the device-side monotonic version check makes
    the re-offers idempotent.
    """

    backend = "sqlite"

    def __init__(self, path: str):
        self.path = path
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._closed = False
        self._conn = sqlite3.connect(path, check_same_thread=False)
        with self._conn:  # schema setup commits immediately
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS records ("
                " device_id TEXT PRIMARY KEY, doc TEXT NOT NULL)")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " id INTEGER PRIMARY KEY CHECK (id = 0), doc TEXT NOT NULL)")

    def load_records(self) -> Dict[str, dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT device_id, doc FROM records").fetchall()
        return {device_id: json.loads(doc) for device_id, doc in rows}

    def save_record(self, doc: dict):
        with self._lock:
            self._conn.execute(
                "INSERT INTO records (device_id, doc) VALUES (?, ?) "
                "ON CONFLICT(device_id) DO UPDATE SET doc = excluded.doc",
                (doc["device_id"], json.dumps(doc, sort_keys=True)))

    def load_meta(self) -> dict:
        with self._lock:
            row = self._conn.execute(
                "SELECT doc FROM meta WHERE id = 0").fetchone()
        return json.loads(row[0]) if row else {}

    def save_meta(self, meta: dict):
        with self._lock:
            self._conn.execute(
                "INSERT INTO meta (id, doc) VALUES (0, ?) "
                "ON CONFLICT(id) DO UPDATE SET doc = excluded.doc",
                (json.dumps(meta, sort_keys=True),))

    def flush(self):
        with self._lock:
            if not self._closed:
                self._conn.commit()

    def close(self):
        with self._lock:
            if self._closed:
                return
            self._conn.commit()
            self._conn.close()
            self._closed = True


SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def open_store(path: Optional[str]) -> RegistryStore:
    """Pick a backend from *path*: memory, SQLite, or JSON lines."""
    if path is None or path == ":memory:":
        return MemoryStore()
    if path.endswith(SQLITE_SUFFIXES):
        return SqliteStore(path)
    return JsonlStore(path)
