"""Parsed statement model for assembly translation units."""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AsmSyntaxError
from repro.isa.opcodes import lookup, Format, JUMP_ALIASES
from repro.toolchain.emulated import expand
from repro.toolchain.operand_spec import OperandSpec


@dataclass
class Statement:
    """Base: every statement remembers its origin for listings/errors."""

    filename: str
    line: int
    text: str


@dataclass
class LabelStatement(Statement):
    name: str = ""


@dataclass
class InsnStatement(Statement):
    mnemonic: str = ""
    byte_mode: bool = False
    operands: List[OperandSpec] = field(default_factory=list)

    def core_form(self):
        """Resolve emulated mnemonics.

        Returns ``(core_mnemonic, src_spec_or_None, dst_spec_or_None,
        jump_target_or_None)``.
        """
        expansion = expand(
            self.mnemonic, self.byte_mode, self.operands, self.filename, self.line
        )
        if expansion is not None:
            core, src, dst = expansion
            return core, src, dst, None

        low = JUMP_ALIASES.get(self.mnemonic, self.mnemonic)
        opcode = lookup(low)
        if opcode is None:
            raise AsmSyntaxError(f"unknown mnemonic {self.mnemonic!r}", self.filename, self.line)

        if opcode.format is Format.JUMP:
            if len(self.operands) != 1:
                raise AsmSyntaxError(f"{low} takes one target", self.filename, self.line)
            return low, None, None, self.operands[0]

        if opcode.format is Format.SINGLE:
            if low == "reti":
                if self.operands:
                    raise AsmSyntaxError("reti takes no operands", self.filename, self.line)
                return low, None, None, None
            if len(self.operands) != 1:
                raise AsmSyntaxError(f"{low} takes one operand", self.filename, self.line)
            return low, None, self.operands[0], None

        if len(self.operands) != 2:
            raise AsmSyntaxError(
                f"{low} takes a source and a destination", self.filename, self.line
            )
        return low, self.operands[0], self.operands[1], None

    def size_bytes(self):
        """Encoded size; fully determined by operand syntax."""
        core, src, dst, jump = self.core_form()
        if jump is not None:
            return 2
        words = 1
        if src is not None:
            words += src.ext_words
        if dst is not None:
            words += dst.ext_words
        return words * 2


@dataclass
class DataStatement(Statement):
    directive: str = ""  # word | byte | ascii | asciz | space | align
    exprs: List[str] = field(default_factory=list)
    string: Optional[str] = None
    space: Optional[int] = None
    align: Optional[int] = None

    def min_size_bytes(self):
        if self.directive == "word":
            return 2 * len(self.exprs)
        if self.directive == "byte":
            return len(self.exprs)
        if self.directive in ("ascii", "asciz"):
            return len(self.string) + (1 if self.directive == "asciz" else 0)
        if self.directive == "space":
            return self.space
        if self.directive == "align":
            return 0  # layout-dependent padding (0 or 1 byte for align 2)
        raise AsmSyntaxError(f"unknown data directive {self.directive}", self.filename, self.line)
