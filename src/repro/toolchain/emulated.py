"""Emulated-instruction expansion (SLAU049 Table 3-13).

Each emulated mnemonic maps to exactly one core instruction, so listings
stay line-for-line with the source and the instrumenter sees one
instruction per statement.  `ret`, `pop`, `br` and friends are what the
EILID instrumenter actually matches on after expansion: a `ret` is a
``mov @sp+, pc``, which is why a corrupted stack word becomes the new PC
-- the attack EILID's P1 check intercepts.
"""

from repro.errors import AsmSyntaxError
from repro.toolchain.operand_spec import OperandSpec, SpecKind
from repro.isa.registers import CG2, PC, SP, SR

# mnemonic -> (core mnemonic, operand builder)
# Builders receive the parsed operand list and return (src, dst) specs.


def _no_operands(specs, core_src, core_dst):
    def build(operands, filename, line):
        if operands:
            raise AsmSyntaxError("instruction takes no operands", filename, line)
        return core_src, core_dst

    return build


def _one_operand(make_src):
    def build(operands, filename, line):
        if len(operands) != 1:
            raise AsmSyntaxError("instruction takes one operand", filename, line)
        return make_src(operands[0])

    return build


_REG = OperandSpec(SpecKind.REG, reg=PC)
_SP_AUTOINC = OperandSpec(SpecKind.AUTOINC, reg=SP)
_SR_REG = OperandSpec(SpecKind.REG, reg=SR)
_PC_REG = OperandSpec(SpecKind.REG, reg=PC)
_CG2_REG = OperandSpec(SpecKind.REG, reg=CG2)


def _imm(value):
    return OperandSpec(SpecKind.IMM, expr=str(value))


# Table of emulated instructions.  Value: (core mnemonic, builder).
EMULATED = {
    "ret": ("mov", _no_operands(None, _SP_AUTOINC, _PC_REG)),
    "nop": ("mov", _no_operands(None, _CG2_REG, _CG2_REG)),
    "pop": ("mov", _one_operand(lambda dst: (_SP_AUTOINC, dst))),
    "br": ("mov", _one_operand(lambda src: (src, _PC_REG))),
    "clr": ("mov", _one_operand(lambda dst: (_imm(0), dst))),
    "clrc": ("bic", _no_operands(None, _imm(1), _SR_REG)),
    "setc": ("bis", _no_operands(None, _imm(1), _SR_REG)),
    "clrz": ("bic", _no_operands(None, _imm(2), _SR_REG)),
    "setz": ("bis", _no_operands(None, _imm(2), _SR_REG)),
    "clrn": ("bic", _no_operands(None, _imm(4), _SR_REG)),
    "setn": ("bis", _no_operands(None, _imm(4), _SR_REG)),
    "dint": ("bic", _no_operands(None, _imm(8), _SR_REG)),
    "eint": ("bis", _no_operands(None, _imm(8), _SR_REG)),
    "inc": ("add", _one_operand(lambda dst: (_imm(1), dst))),
    "incd": ("add", _one_operand(lambda dst: (_imm(2), dst))),
    "dec": ("sub", _one_operand(lambda dst: (_imm(1), dst))),
    "decd": ("sub", _one_operand(lambda dst: (_imm(2), dst))),
    "tst": ("cmp", _one_operand(lambda dst: (_imm(0), dst))),
    "inv": ("xor", _one_operand(lambda dst: (_imm(-1), dst))),
    "rla": ("add", _one_operand(lambda dst: (dst, dst))),
    "rlc": ("addc", _one_operand(lambda dst: (dst, dst))),
    "adc": ("addc", _one_operand(lambda dst: (_imm(0), dst))),
    "sbc": ("subc", _one_operand(lambda dst: (_imm(0), dst))),
    "dadc": ("dadd", _one_operand(lambda dst: (_imm(0), dst))),
}

# Emulated forms that have byte variants (same set as their cores).
BYTE_CAPABLE = {
    "pop",
    "clr",
    "inc",
    "incd",
    "dec",
    "decd",
    "tst",
    "inv",
    "rla",
    "rlc",
    "adc",
    "sbc",
    "dadc",
}


def expand(mnemonic, byte_mode, operands, filename=None, line=None):
    """Expand an emulated mnemonic.

    Returns ``(core_mnemonic, src_spec, dst_spec)`` or ``None`` if the
    mnemonic is not emulated.
    """
    low = mnemonic.lower()
    if low not in EMULATED:
        return None
    if byte_mode and low not in BYTE_CAPABLE:
        raise AsmSyntaxError(f"{mnemonic} has no byte variant", filename, line)
    core, builder = EMULATED[low]
    src, dst = builder(operands, filename, line)
    return core, src, dst
