"""Render a parsed (or transformed) :class:`AsmUnit` back to source text.

EILIDinst transforms units at the statement level; this writer emits the
instrumented ``*_instr.s`` text that goes back into the build (Fig. 2).
Round-trip property: parsing the rendered text yields a unit that links
to the identical image (tested in ``tests/test_writer.py``).
"""

from repro.toolchain.parser import AsmUnit, KNOWN_SECTIONS
from repro.toolchain.statements import DataStatement, InsnStatement, LabelStatement


def render_statement(stmt):
    """Canonical source text of one statement (no label, no indent)."""
    if isinstance(stmt, LabelStatement):
        return f"{stmt.name}:"
    if isinstance(stmt, InsnStatement):
        name = stmt.mnemonic + (".b" if stmt.byte_mode else "")
        if not stmt.operands:
            return name
        return f"{name} " + ", ".join(op.render() for op in stmt.operands)
    if isinstance(stmt, DataStatement):
        directive = stmt.directive
        if directive in ("word", "byte"):
            return f".{directive} " + ", ".join(stmt.exprs)
        if directive in ("ascii", "asciz"):
            escaped = (
                stmt.string.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\r", "\\r")
                .replace("\0", "\\0")
            )
            return f'.{directive} "{escaped}"'
        if directive == "space":
            return f".space {stmt.space}"
        if directive == "align":
            return f".align {stmt.align}"
    raise TypeError(f"cannot render statement {type(stmt).__name__}")


def render_unit(unit: AsmUnit):
    """Emit the full unit: globals, equates, sections, vectors."""
    lines = [f"; unit: {unit.name}"]
    for sym in sorted(unit.globals_):
        lines.append(f"    .global {sym}")
    for sym, expr in unit.equates.items():
        lines.append(f"    .equ {sym}, {expr}")
    for section in KNOWN_SECTIONS:
        stmts = unit.statements(section)
        if not stmts:
            continue
        lines.append(f"    .section {section}")
        for stmt in stmts:
            text = render_statement(stmt)
            if isinstance(stmt, LabelStatement):
                lines.append(text)
            else:
                lines.append("    " + text)
    for index in sorted(unit.vectors):
        lines.append(f"    .vector {index}, {unit.vectors[index]}")
    return "\n".join(lines) + "\n"
