"""Linker: assign addresses, resolve symbols, encode, build the image.

Layout policy (fixed, matching the device memory map):

* ``.secure_text`` -> secure ROM base (EILIDsw, CASU update routine)
* ``.text``        -> PMEM base, units in link order
* ``.data``        -> DMEM base (the loader initialises RAM directly,
                      standing in for a crt0 copy loop)
* ``.bss``         -> after ``.data`` (zero-filled)
* interrupt vectors (``.vector N, SYM``) -> IVT words; vector 15 is the
  reset vector and must be present.

All labels are program-global (no per-unit visibility); duplicates are
link errors.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import LinkError, RangeError, SymbolError
from repro.isa import encode
from repro.isa.instructions import Instruction
from repro.isa.opcodes import lookup, Format, JUMP_OFFSET_MAX, JUMP_OFFSET_MIN
from repro.memory.map import MemoryLayout, NUM_VECTORS
from repro.toolchain.expr import eval_expr
from repro.toolchain.statements import DataStatement, InsnStatement, LabelStatement

_SECTION_ORDER = (".secure_text", ".text", ".data", ".bss")


@dataclass
class Record:
    """One laid-out statement: drives both image bytes and the listing."""

    addr: int
    size: int
    data: bytes
    stmt: object
    section: str
    unit: str
    insn: Optional[Instruction] = None


@dataclass
class SectionExtent:
    name: str
    base: int
    size: int

    @property
    def end(self):
        return self.base + self.size - 1


@dataclass
class LinkedProgram:
    name: str
    symbols: Dict[str, int]
    records: List[Record]
    sections: List[SectionExtent]
    vectors: Dict[int, int]  # vector index -> handler address
    entry: int
    unit_sizes: Dict[str, Dict[str, int]]  # unit -> section -> bytes
    layout: MemoryLayout

    def segments(self):
        """Loadable (address, bytes) segments, including the IVT."""
        chunks = [(rec.addr, rec.data) for rec in self.records if rec.data]
        ivt = bytearray(2 * NUM_VECTORS)
        for index in range(NUM_VECTORS):
            handler = self.vectors.get(index, 0)
            ivt[2 * index] = handler & 0xFF
            ivt[2 * index + 1] = (handler >> 8) & 0xFF
        chunks.append((self.layout.ivt.start, bytes(ivt)))
        return chunks

    def section_extent(self, name):
        for extent in self.sections:
            if extent.name == name:
                return extent
        raise KeyError(name)

    def symbol_at(self, addr):
        """A label defined exactly at *addr*, if any (listing annotations)."""
        for name, value in self.symbols.items():
            if value == addr:
                return name
        return None

    def code_size(self, units=None):
        """Total .text + .data bytes, optionally restricted to *units*.

        This is the "binary size" metric of Table IV: application code
        and initialised data, excluding the fixed runtime (crt0, EILID
        shims/ROM) when *units* names just the application module.
        """
        total = 0
        for unit, sizes in self.unit_sizes.items():
            if units is not None and unit not in units:
                continue
            total += sizes.get(".text", 0) + sizes.get(".data", 0)
        return total


_SECTION_BASE = {
    ".secure_text": lambda layout: layout.secure_rom.start,
    ".text": lambda layout: layout.pmem.start,
    ".data": lambda layout: layout.dmem.start,
}

_SECTION_REGION = {
    ".secure_text": lambda layout: layout.secure_rom,
    ".text": lambda layout: layout.pmem,
    ".data": lambda layout: layout.dmem,
    ".bss": lambda layout: layout.dmem,
}


def link(units, name="program", layout=None):
    """Link *units* (ordered :class:`AsmUnit` list) into a program."""
    layout = layout or MemoryLayout.default()
    symbols: Dict[str, int] = {}
    records: List[Record] = []
    sections: List[SectionExtent] = []
    unit_sizes: Dict[str, Dict[str, int]] = {u.name: {} for u in units}

    # ---- pass 1: layout & label addresses --------------------------------
    cursor = 0
    for section in _SECTION_ORDER:
        if section == ".bss":
            base = cursor  # continues after .data in DMEM
        else:
            base = _SECTION_BASE[section](layout)
        cursor = base
        region = _SECTION_REGION[section](layout)
        for unit in units:
            unit_start = cursor
            for stmt in unit.statements(section):
                if isinstance(stmt, LabelStatement):
                    if stmt.name in symbols:
                        raise SymbolError(
                            f"duplicate label {stmt.name!r}", stmt.filename, stmt.line
                        )
                    symbols[stmt.name] = cursor
                    records.append(Record(cursor, 0, b"", stmt, section, unit.name))
                    continue
                if isinstance(stmt, InsnStatement):
                    size = stmt.size_bytes()
                    if cursor % 2:
                        raise LinkError(
                            f"instruction at odd address 0x{cursor:04x} "
                            f"({stmt.filename}:{stmt.line}); add .align 2"
                        )
                elif isinstance(stmt, DataStatement):
                    if stmt.directive == "align":
                        size = cursor % stmt.align if stmt.align > 1 else 0
                    else:
                        size = stmt.min_size_bytes()
                else:  # pragma: no cover
                    raise LinkError(f"unknown statement type {type(stmt)}")
                records.append(Record(cursor, size, b"", stmt, section, unit.name))
                cursor += size
            unit_sizes[unit.name][section] = cursor - unit_start
        size = cursor - base
        if size > 0 and cursor - 1 > region.end:
            raise LinkError(
                f"section {section} overflows {region} by {cursor - 1 - region.end} bytes"
            )
        sections.append(SectionExtent(section, base, size))

    # ---- equates -----------------------------------------------------------
    _resolve_equates(units, symbols)

    # ---- pass 2: encode ------------------------------------------------------
    for rec in records:
        stmt = rec.stmt
        if isinstance(stmt, LabelStatement):
            continue
        if isinstance(stmt, InsnStatement):
            rec.insn, rec.data = _encode_insn(stmt, rec.addr, symbols)
            if len(rec.data) != rec.size:
                raise LinkError(
                    f"size drift at {stmt.filename}:{stmt.line}: "
                    f"sized {rec.size}, encoded {len(rec.data)}"
                )
        else:
            rec.data = _encode_data(stmt, rec.addr, rec.size, symbols)

    # ---- vectors ----------------------------------------------------------------
    vectors: Dict[int, int] = {}
    for unit in units:
        for index, sym in unit.vectors.items():
            if not 0 <= index < NUM_VECTORS:
                raise LinkError(f"vector index {index} out of range in {unit.name}")
            if index in vectors:
                raise LinkError(f"vector {index} defined in more than one unit")
            if sym not in symbols:
                raise SymbolError(f"vector {index} handler {sym!r} undefined")
            vectors[index] = symbols[sym]
    if NUM_VECTORS - 1 not in vectors:
        raise LinkError("no reset vector: add `.vector 15, __start`")
    if "__default_handler" in symbols:
        for index in range(NUM_VECTORS - 1):
            vectors.setdefault(index, symbols["__default_handler"])

    return LinkedProgram(
        name=name,
        symbols=symbols,
        records=records,
        sections=sections,
        vectors=vectors,
        entry=vectors[NUM_VECTORS - 1],
        unit_sizes=unit_sizes,
        layout=layout,
    )


def _resolve_equates(units, symbols):
    pending = {}
    for unit in units:
        for sym, expr in unit.equates.items():
            if sym in symbols or sym in pending:
                raise SymbolError(f"duplicate symbol {sym!r} (equate in {unit.name})")
            pending[sym] = expr
    # Equates may reference labels and each other; iterate to a fixpoint.
    while pending:
        progressed = False
        for sym in list(pending):
            try:
                symbols[sym] = eval_expr(pending[sym], symbols) & 0xFFFF
            except SymbolError:
                continue
            del pending[sym]
            progressed = True
        if not progressed:
            unresolved = ", ".join(sorted(pending))
            raise SymbolError(f"unresolvable equates (cycle or undefined): {unresolved}")


def _encode_insn(stmt, addr, symbols):
    local = dict(symbols)
    local["$"] = addr
    core, src_spec, dst_spec, jump_spec = stmt.core_form()
    opcode = lookup(core)

    if jump_spec is not None:
        target = jump_spec.resolve(local, stmt.filename, stmt.line)
        from repro.isa.operands import AddrMode

        if target.mode not in (AddrMode.SYMBOLIC, AddrMode.IMMEDIATE, AddrMode.ABSOLUTE):
            raise RangeError("jump target must be an address expression", stmt.filename, stmt.line)
        delta = target.value - (addr + 2)
        if delta % 2:
            raise RangeError(
                f"jump target 0x{target.value:04x} is odd", stmt.filename, stmt.line
            )
        offset = delta // 2
        if not JUMP_OFFSET_MIN <= offset <= JUMP_OFFSET_MAX:
            raise RangeError(
                f"jump from 0x{addr:04x} to 0x{target.value:04x} out of range",
                stmt.filename,
                stmt.line,
            )
        insn = Instruction(opcode, offset=offset)
        return insn, _words_to_bytes(encode(insn))

    src = src_spec.resolve(local, stmt.filename, stmt.line) if src_spec else None
    dst = dst_spec.resolve(local, stmt.filename, stmt.line) if dst_spec else None
    if opcode.format is Format.SINGLE:
        insn = Instruction(opcode, dst=dst, byte_mode=stmt.byte_mode)
    elif opcode.format is Format.DOUBLE:
        insn = Instruction(opcode, src=src, dst=dst, byte_mode=stmt.byte_mode)
    else:  # pragma: no cover
        raise LinkError(f"unexpected format for {core}")
    return insn, _words_to_bytes(encode(insn))


def _encode_data(stmt, addr, size, symbols):
    local = dict(symbols)
    local["$"] = addr
    if stmt.directive == "word":
        out = bytearray()
        for expr in stmt.exprs:
            value = eval_expr(expr, local, stmt.filename, stmt.line) & 0xFFFF
            out += bytes((value & 0xFF, value >> 8))
        return bytes(out)
    if stmt.directive == "byte":
        return bytes(
            eval_expr(expr, local, stmt.filename, stmt.line) & 0xFF for expr in stmt.exprs
        )
    if stmt.directive in ("ascii", "asciz"):
        data = stmt.string.encode("latin-1")
        if stmt.directive == "asciz":
            data += b"\0"
        return data
    if stmt.directive in ("space", "align"):
        return bytes(size)
    raise LinkError(f"unknown data directive {stmt.directive}")


def _words_to_bytes(words):
    out = bytearray()
    for word in words:
        out += bytes((word & 0xFF, (word >> 8) & 0xFF))
    return bytes(out)
