"""Constant-expression evaluator for assembler operands and directives.

Supports integer literals (decimal, ``0x``, ``0b``, ``0o``, ``'c'``
chars), symbols, and the operators ``+ - * / % << >> & | ^ ~`` with the
usual precedence and parentheses.  Division is floor division; all
results are reduced to Python ints (callers mask to 16 bits where the
encoding requires it).
"""

import re

from repro.errors import AsmSyntaxError, SymbolError

_TOKEN_RE = re.compile(
    r"""
    (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<bin>0[bB][01]+)
  | (?P<oct>0[oO][0-7]+)
  | (?P<dec>\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<sym>[A-Za-z_.$][A-Za-z0-9_.$]*)
  | (?P<op><<|>>|[+\-*/%&|^~()])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(text, filename=None, line=None):
    """Split an expression into tokens; whitespace is dropped."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AsmSyntaxError(
                f"bad character in expression: {text[pos]!r}", filename, line
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


def literal_value(token_text):
    """Value of a single literal token."""
    if token_text.startswith(("0x", "0X")):
        return int(token_text, 16)
    if token_text.startswith(("0b", "0B")):
        return int(token_text, 2)
    if token_text.startswith(("0o", "0O")):
        return int(token_text, 8)
    if token_text.startswith("'"):
        inner = token_text[1:-1]
        if inner.startswith("\\"):
            code = _ESCAPES.get(inner[1])
            if code is None:
                raise AsmSyntaxError(f"unknown escape {inner!r}")
            return code
        return ord(inner)
    return int(token_text, 10)


def is_pure_literal(text):
    """True when *text* is a single numeric literal, optionally negated.

    The assembler uses this to decide whether an immediate can use the
    constant generators: only syntactic literals qualify, so statement
    sizes never depend on symbol values (which keeps pass-1 sizing
    exact).
    """
    try:
        tokens = tokenize(text)
    except AsmSyntaxError:
        return False
    if len(tokens) == 1:
        return tokens[0][0] in ("hex", "bin", "oct", "dec", "char")
    if len(tokens) == 2 and tokens[0] == ("op", "-"):
        return tokens[1][0] in ("hex", "bin", "oct", "dec", "char")
    return False


class _Parser:
    """Recursive-descent evaluator (binds symbols at evaluation time)."""

    _PRECEDENCE = [
        ("|",),
        ("^",),
        ("&",),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def __init__(self, tokens, symbols, filename, line):
        self.tokens = tokens
        self.pos = 0
        self.symbols = symbols
        self.filename = filename
        self.line = line

    def parse(self):
        value = self._binary(0)
        if self.pos != len(self.tokens):
            raise AsmSyntaxError(
                f"trailing tokens in expression: {self.tokens[self.pos:]}",
                self.filename,
                self.line,
            )
        return value

    def _binary(self, level):
        if level == len(self._PRECEDENCE):
            return self._unary()
        ops = self._PRECEDENCE[level]
        value = self._binary(level + 1)
        while self._peek_op(ops):
            op = self.tokens[self.pos][1]
            self.pos += 1
            rhs = self._binary(level + 1)
            value = self._apply(op, value, rhs)
        return value

    def _unary(self):
        if self._peek_op(("-",)):
            self.pos += 1
            return -self._unary()
        if self._peek_op(("~",)):
            self.pos += 1
            return ~self._unary()
        if self._peek_op(("+",)):
            self.pos += 1
            return self._unary()
        return self._atom()

    def _atom(self):
        if self.pos >= len(self.tokens):
            raise AsmSyntaxError("unexpected end of expression", self.filename, self.line)
        kind, text = self.tokens[self.pos]
        if kind == "op" and text == "(":
            self.pos += 1
            value = self._binary(0)
            if not self._peek_op((")",)):
                raise AsmSyntaxError("missing ')'", self.filename, self.line)
            self.pos += 1
            return value
        self.pos += 1
        if kind in ("hex", "bin", "oct", "dec", "char"):
            return literal_value(text)
        if kind == "sym":
            if text not in self.symbols:
                raise SymbolError(f"undefined symbol {text!r}", self.filename, self.line)
            return self.symbols[text]
        raise AsmSyntaxError(f"unexpected token {text!r}", self.filename, self.line)

    def _peek_op(self, ops):
        if self.pos >= len(self.tokens):
            return False
        kind, text = self.tokens[self.pos]
        return kind == "op" and text in ops

    @staticmethod
    def _apply(op, a, b):
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise AsmSyntaxError("division by zero in expression")
            return a // b
        if op == "%":
            if b == 0:
                raise AsmSyntaxError("modulo by zero in expression")
            return a % b
        if op == "<<":
            return a << b
        if op == ">>":
            return a >> b
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        raise AsmSyntaxError(f"unknown operator {op!r}")


def eval_expr(text, symbols=None, filename=None, line=None):
    """Evaluate expression *text* against the *symbols* mapping."""
    tokens = tokenize(text, filename, line)
    if not tokens:
        raise AsmSyntaxError("empty expression", filename, line)
    if symbols is None:
        symbols = {}
    return _Parser(tokens, symbols, filename, line).parse()


def referenced_symbols(text):
    """Set of symbol names appearing in an expression (for diagnostics)."""
    return {tok for kind, tok in tokenize(text) if kind == "sym"}
