"""Line-oriented parser for the MSP430 assembly dialect.

Comments start with ``;``.  Labels are ``name:`` (several may stack on
one line, optionally followed by a statement).  Directives:

``.section NAME`` (and shorthands ``.text``, ``.data``, ``.bss``,
``.secure``), ``.global SYM[, ...]``, ``.equ NAME, EXPR``,
``.word E[, ...]``, ``.byte E[, ...]``, ``.ascii "S"``, ``.asciz "S"``,
``.space N``, ``.align N``, ``.vector N, SYM`` (interrupt vector table
entry; the reset vector is ``.vector 15, __start``).
"""

import re
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.errors import AsmSyntaxError
from repro.toolchain.expr import eval_expr, is_pure_literal
from repro.toolchain.operand_spec import parse_operand
from repro.toolchain.statements import DataStatement, InsnStatement, LabelStatement

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*")
_MNEMONIC_RE = re.compile(r"^([A-Za-z][A-Za-z0-9]*)(\.[bwBW])?\s*")

TEXT_SECTIONS = (".text", ".secure_text")
KNOWN_SECTIONS = (".text", ".data", ".bss", ".secure_text")

_SECTION_SHORTHAND = {
    ".text": ".text",
    ".data": ".data",
    ".bss": ".bss",
    ".secure": ".secure_text",
}


@dataclass
class AsmUnit:
    """One parsed translation unit."""

    name: str
    sections: Dict[str, list] = field(default_factory=dict)
    globals_: Set[str] = field(default_factory=set)
    equates: Dict[str, str] = field(default_factory=dict)
    vectors: Dict[int, str] = field(default_factory=dict)

    def section(self, name):
        return self.sections.setdefault(name, [])

    def statements(self, section):
        return self.sections.get(section, [])

    @property
    def labels(self):
        found = []
        for stmts in self.sections.values():
            found.extend(s.name for s in stmts if isinstance(s, LabelStatement))
        return found


def strip_comment(line):
    """Remove a ``;`` comment, honouring string and char literals."""
    in_string = None
    for index, char in enumerate(line):
        if in_string:
            if char == "\\":
                continue
            if char == in_string:
                in_string = None
        elif char in "\"'":
            in_string = char
        elif char == ";":
            return line[:index]
    return line


def split_operands(text):
    """Split an operand list on top-level commas (strings kept intact)."""
    parts = []
    depth = 0
    in_string = None
    current = []
    previous = ""
    for char in text:
        if in_string:
            current.append(char)
            if char == in_string and previous != "\\":
                in_string = None
        elif char in "\"'":
            in_string = char
            current.append(char)
        elif char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
        previous = char
    tail = "".join(current).strip()
    if tail or parts:
        parts.append(tail)
    return parts


def _parse_string_literal(text, filename, line):
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AsmSyntaxError(f"expected string literal, got {text!r}", filename, line)
    body = text[1:-1]
    out = []
    index = 0
    escapes = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"'}
    while index < len(body):
        char = body[index]
        if char == "\\":
            index += 1
            if index >= len(body) or body[index] not in escapes:
                raise AsmSyntaxError("bad string escape", filename, line)
            out.append(escapes[body[index]])
        else:
            out.append(char)
        index += 1
    return "".join(out)


def parse_source(text, filename="<input>"):
    """Parse assembly *text* into an :class:`AsmUnit`."""
    unit = AsmUnit(name=filename)
    current_section = ".text"

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw_line).strip()
        if not line:
            continue

        # Labels (possibly several) may prefix the statement.
        while True:
            match = _LABEL_RE.match(line)
            if match is None:
                break
            unit.section(current_section).append(
                LabelStatement(filename, lineno, raw_line.rstrip(), name=match.group(1))
            )
            line = line[match.end():]
        if not line:
            continue

        if line.startswith("."):
            current_section = _parse_directive(
                unit, current_section, line, raw_line.rstrip(), filename, lineno
            )
            continue

        unit.section(current_section).append(
            _parse_instruction(line, raw_line.rstrip(), filename, lineno)
        )

    return unit


def _parse_instruction(line, raw, filename, lineno):
    match = _MNEMONIC_RE.match(line)
    if match is None:
        raise AsmSyntaxError(f"cannot parse statement {line!r}", filename, lineno)
    mnemonic = match.group(1).lower()
    suffix = (match.group(2) or "").lower()
    byte_mode = suffix == ".b"
    rest = line[match.end():].strip()
    operands = [
        parse_operand(op, filename, lineno) for op in split_operands(rest)
    ] if rest else []
    stmt = InsnStatement(
        filename,
        lineno,
        raw,
        mnemonic=mnemonic,
        byte_mode=byte_mode,
        operands=operands,
    )
    stmt.core_form()  # validate mnemonic/arity eagerly
    return stmt


def _parse_directive(unit, current_section, line, raw, filename, lineno):
    parts = line.split(None, 1)
    name = parts[0].lower()
    rest = parts[1].strip() if len(parts) > 1 else ""

    if name in _SECTION_SHORTHAND:
        return _SECTION_SHORTHAND[name]

    if name == ".section":
        if rest not in KNOWN_SECTIONS:
            raise AsmSyntaxError(f"unknown section {rest!r}", filename, lineno)
        return rest

    if name == ".global" or name == ".globl":
        for sym in split_operands(rest):
            unit.globals_.add(sym)
        return current_section

    if name == ".equ" or name == ".set":
        args = split_operands(rest)
        if len(args) != 2:
            raise AsmSyntaxError(".equ takes NAME, EXPR", filename, lineno)
        unit.equates[args[0]] = args[1]
        return current_section

    if name == ".vector":
        args = split_operands(rest)
        if len(args) != 2:
            raise AsmSyntaxError(".vector takes INDEX, SYMBOL", filename, lineno)
        if not is_pure_literal(args[0]):
            raise AsmSyntaxError(".vector index must be a literal", filename, lineno)
        index = eval_expr(args[0])
        if index in unit.vectors:
            raise AsmSyntaxError(f"vector {index} set twice", filename, lineno)
        unit.vectors[index] = args[1]
        return current_section

    if name in (".word", ".byte"):
        exprs = split_operands(rest)
        if not exprs:
            raise AsmSyntaxError(f"{name} needs at least one value", filename, lineno)
        unit.section(current_section).append(
            DataStatement(filename, lineno, raw, directive=name[1:], exprs=exprs)
        )
        return current_section

    if name in (".ascii", ".asciz"):
        unit.section(current_section).append(
            DataStatement(
                filename,
                lineno,
                raw,
                directive=name[1:],
                string=_parse_string_literal(rest, filename, lineno),
            )
        )
        return current_section

    if name == ".space" or name == ".skip":
        if not is_pure_literal(rest):
            raise AsmSyntaxError(".space size must be a literal", filename, lineno)
        size = eval_expr(rest)
        if size < 0:
            raise AsmSyntaxError(".space size must be non-negative", filename, lineno)
        unit.section(current_section).append(
            DataStatement(filename, lineno, raw, directive="space", space=size)
        )
        return current_section

    if name == ".align":
        if not is_pure_literal(rest):
            raise AsmSyntaxError(".align argument must be a literal", filename, lineno)
        align = eval_expr(rest)
        if align not in (1, 2):
            raise AsmSyntaxError("only .align 1/2 supported on this 16-bit target", filename, lineno)
        unit.section(current_section).append(
            DataStatement(filename, lineno, raw, directive="align", align=align)
        )
        return current_section

    raise AsmSyntaxError(f"unknown directive {name}", filename, lineno)
