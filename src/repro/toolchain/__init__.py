"""Assembler, linker and build driver for the MSP430 dialect.

The toolchain produces the three artifact kinds the EILID workflow
consumes (paper Fig. 2):

* ``.s``  -- assembly source (`parse_source` -> :class:`AsmUnit`)
* ``.elf``-equivalent -- a linked :class:`LinkedProgram` (memory image,
  symbols, section info)
* ``.lst`` -- a text listing with final addresses and encodings
  (`repro.toolchain.listing`), which EILIDinst parses to resolve return
  addresses.

Assembly is deliberately two-stage: parsing computes statement sizes
(operand syntax fully determines encoding size), the linker assigns
addresses and encodes.  This mirrors an absolute assembler plus a
sectioned linker and keeps the Fig. 2 address-shift behaviour faithful.
"""

from repro.toolchain.parser import parse_source, AsmUnit
from repro.toolchain.linker import link, LinkedProgram
from repro.toolchain.listing import render_listing, parse_listing, ListingIndex
from repro.toolchain.build import BuildPipeline, BuildResult, SourceModule

__all__ = [
    "parse_source",
    "AsmUnit",
    "link",
    "LinkedProgram",
    "render_listing",
    "parse_listing",
    "ListingIndex",
    "BuildPipeline",
    "BuildResult",
    "SourceModule",
]
