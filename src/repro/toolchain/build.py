"""Build pipeline: sources -> parsed units -> linked image -> listing.

The pipeline is the unit of the paper's compile-time measurement
(Table IV).  It behaves like a make-style build: parsed units and
mini-C compilation outputs are cached by content hash, so the three
EILID build iterations (Fig. 2) pay full price only for work whose
inputs actually changed -- the instrumented application -- while fixed
inputs (crt0, EILID shims, the trusted ROM, the C frontend output of an
unchanged source) are reused.
"""

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.map import MemoryLayout
from repro.toolchain.linker import link, LinkedProgram
from repro.toolchain.listing import render_listing
from repro.toolchain.parser import parse_source


@dataclass
class SourceModule:
    """One assembly translation unit handed to the pipeline."""

    name: str
    text: str
    is_app: bool = False  # app modules count toward the binary-size metric


@dataclass
class BuildResult:
    program: LinkedProgram
    listing: str
    timings_ms: Dict[str, float]
    app_units: List[str]

    @property
    def total_ms(self):
        return self.timings_ms["total"]

    @property
    def app_code_bytes(self):
        """Application .text + .data bytes (the Table IV binary size)."""
        return self.program.code_size(units=set(self.app_units))

    def segments(self):
        return self.program.segments()


class BuildPipeline:
    """Stateful builder with a content-addressed parse cache."""

    def __init__(self, layout: Optional[MemoryLayout] = None):
        self.layout = layout or MemoryLayout.default()
        self._parse_cache = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def clear_cache(self):
        self._parse_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _parse(self, module):
        key = (module.name, hashlib.sha256(module.text.encode()).hexdigest())
        unit = self._parse_cache.get(key)
        if unit is not None:
            self.cache_hits += 1
            return unit
        self.cache_misses += 1
        unit = parse_source(module.text, module.name)
        self._parse_cache[key] = unit
        return unit

    def build(self, modules: List[SourceModule], name="program", want_listing=True):
        """Parse, link and list *modules*; returns a timed result."""
        timings = {}
        t_start = time.perf_counter()

        t0 = time.perf_counter()
        units = [self._parse(module) for module in modules]
        timings["parse"] = (time.perf_counter() - t0) * 1000

        t0 = time.perf_counter()
        program = link(units, name=name, layout=self.layout)
        timings["link"] = (time.perf_counter() - t0) * 1000

        listing = ""
        t0 = time.perf_counter()
        if want_listing:
            listing = render_listing(program)
        timings["listing"] = (time.perf_counter() - t0) * 1000

        timings["total"] = (time.perf_counter() - t_start) * 1000
        return BuildResult(
            program=program,
            listing=listing,
            timings_ms=timings,
            app_units=[m.name for m in modules if m.is_app],
        )
