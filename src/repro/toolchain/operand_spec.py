"""Syntactic operand model: parsed-but-unresolved operands.

An :class:`OperandSpec` captures the *shape* of an operand (which fully
determines its encoded size) while deferring symbol resolution to link
time.  Shapes follow msp430 gas syntax:

==============  =====================  =================
syntax          spec kind              size (ext words)
==============  =====================  =================
``rN``          REG                    0
``#expr``       IMM (CG if literal)    0 or 1
``&expr``       ABS                    1
``expr``        SYM                    1
``expr(rN)``    IDX                    1
``@rN``         IND                    0
``@rN+``        AUTOINC                0
==============  =====================  =================
"""

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import AsmSyntaxError
from repro.isa.operands import CG_CONSTANTS, Operand
from repro.isa.registers import parse_register
from repro.toolchain.expr import eval_expr, is_pure_literal


class SpecKind(enum.Enum):
    REG = "reg"
    IMM = "imm"
    ABS = "abs"
    SYM = "sym"
    IDX = "idx"
    IND = "ind"
    AUTOINC = "autoinc"


@dataclass(frozen=True)
class OperandSpec:
    kind: SpecKind
    reg: Optional[int] = None
    expr: Optional[str] = None

    # ---- size -------------------------------------------------------------

    @property
    def ext_words(self):
        if self.kind in (SpecKind.REG, SpecKind.IND, SpecKind.AUTOINC):
            return 0
        if self.kind is SpecKind.IMM and self._cg_literal() is not None:
            return 0
        return 1

    def _cg_literal(self):
        """Constant-generator value if this is a CG-eligible literal."""
        if self.expr is None or not is_pure_literal(self.expr):
            return None
        value = eval_expr(self.expr) & 0xFFFF
        return value if value in CG_CONSTANTS else None

    # ---- resolution ---------------------------------------------------------

    def resolve(self, symbols, filename=None, line=None):
        """Produce the concrete :class:`repro.isa.Operand`."""
        kind = self.kind
        if kind is SpecKind.REG:
            return Operand.register(self.reg)
        if kind is SpecKind.IND:
            return Operand.indirect(self.reg)
        if kind is SpecKind.AUTOINC:
            return Operand.autoinc(self.reg)
        value = eval_expr(self.expr, symbols, filename, line)
        if kind is SpecKind.IMM:
            cg = self._cg_literal()
            if cg is not None:
                return Operand.constant(cg, *CG_CONSTANTS[cg])
            return Operand.immediate(value)
        if kind is SpecKind.ABS:
            return Operand.absolute(value)
        if kind is SpecKind.SYM:
            return Operand.symbolic(value)
        if kind is SpecKind.IDX:
            return Operand.indexed(value, self.reg)
        raise AsmSyntaxError(f"cannot resolve operand kind {kind}", filename, line)

    def render(self):
        """Round-trip the operand back to source text."""
        from repro.isa.registers import register_name

        kind = self.kind
        if kind is SpecKind.REG:
            return register_name(self.reg)
        if kind is SpecKind.IMM:
            return f"#{self.expr}"
        if kind is SpecKind.ABS:
            return f"&{self.expr}"
        if kind is SpecKind.SYM:
            return self.expr
        if kind is SpecKind.IDX:
            return f"{self.expr}({register_name(self.reg)})"
        if kind is SpecKind.IND:
            return f"@{register_name(self.reg)}"
        return f"@{register_name(self.reg)}+"


def parse_operand(text, filename=None, line=None):
    """Parse one operand's source text into an :class:`OperandSpec`."""
    text = text.strip()
    if not text:
        raise AsmSyntaxError("empty operand", filename, line)

    if text.startswith("#"):
        expr = text[1:].strip()
        _require_expr(expr, filename, line)
        return OperandSpec(SpecKind.IMM, expr=expr)

    if text.startswith("&"):
        expr = text[1:].strip()
        _require_expr(expr, filename, line)
        return OperandSpec(SpecKind.ABS, expr=expr)

    if text.startswith("@"):
        body = text[1:].strip()
        autoinc = body.endswith("+")
        if autoinc:
            body = body[:-1].strip()
        reg = parse_register(body)
        if reg is None:
            raise AsmSyntaxError(f"bad indirect operand {text!r}", filename, line)
        return OperandSpec(SpecKind.AUTOINC if autoinc else SpecKind.IND, reg=reg)

    reg = parse_register(text)
    if reg is not None:
        return OperandSpec(SpecKind.REG, reg=reg)

    if text.endswith(")"):
        open_paren = text.rfind("(")
        if open_paren == -1:
            raise AsmSyntaxError(f"unbalanced parentheses in {text!r}", filename, line)
        reg = parse_register(text[open_paren + 1 : -1])
        if reg is not None:
            expr = text[:open_paren].strip()
            if not expr:
                raise AsmSyntaxError(f"missing index in {text!r}", filename, line)
            _require_expr(expr, filename, line)
            return OperandSpec(SpecKind.IDX, reg=reg, expr=expr)
        # Not `expr(rN)`: fall through and treat as a symbolic expression.

    _require_expr(text, filename, line)
    return OperandSpec(SpecKind.SYM, expr=text)


class _AnySymbols(dict):
    """Validation symbol table: every name resolves (to a neutral 1)."""

    def __contains__(self, key):
        return True

    def __getitem__(self, key):
        return 1


def _require_expr(expr, filename, line):
    if not expr:
        raise AsmSyntaxError("missing expression", filename, line)
    # Full syntactic validation: evaluate against a permissive symbol
    # table so malformed expressions fail at parse time, not link time.
    eval_expr(expr, _AnySymbols(), filename, line)
