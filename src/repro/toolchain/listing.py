"""Listing (.lst) generation and parsing.

The listing is the contract between the toolchain and EILIDinst (paper
Fig. 2): the instrumenter takes ``*.lst`` from the previous build to
discover concrete instruction addresses -- in particular the address of
the instruction *after* each call site, which becomes the protected
return address.  The format follows objdump conventions:

::

    ; listing: light_sensor
    ; section .text base=0xe000 size=0x00ac

    0000e000 <__start>:
        e000:	31 40 00 0a 	mov #0xa00, r1
        e004:	b0 12 3e e0 	call #0xe03e	; <main>

:class:`ListingIndex` parses the text back into an indexable form.
"""

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InstrumentationError
from repro.toolchain.statements import DataStatement, InsnStatement, LabelStatement


def render_listing(program):
    """Render the listing text for a :class:`LinkedProgram`."""
    lines = [f"; listing: {program.name}"]
    for extent in program.sections:
        lines.append(
            f"; section {extent.name} base=0x{extent.base:04x} size=0x{extent.size:04x}"
        )
    lines.append("")

    label_targets = {addr: [] for addr in set(program.symbols.values())}
    for name, addr in program.symbols.items():
        if addr in label_targets:
            label_targets[addr].append(name)

    current_unit = None
    for rec in program.records:
        if rec.unit != current_unit:
            current_unit = rec.unit
            lines.append(f"; unit: {current_unit}")
        stmt = rec.stmt
        if isinstance(stmt, LabelStatement):
            lines.append(f"{rec.addr:08x} <{stmt.name}>:")
            continue
        if isinstance(stmt, InsnStatement):
            text = _render_insn(rec)
            note = _symbol_note(program, rec)
            lines.append(_format_line(rec.addr, rec.data, text, note))
            continue
        if isinstance(stmt, DataStatement):
            directive = stmt.text.strip()
            offset = 0
            while offset < len(rec.data) or (offset == 0 and not rec.data):
                chunk = rec.data[offset : offset + 8]
                text = directive if offset == 0 else ""
                lines.append(_format_line(rec.addr + offset, chunk, text, None))
                offset += 8
                if not rec.data:
                    break
    lines.append("")
    lines.append("; symbols:")
    for name in sorted(program.symbols):
        lines.append(f";   {name} = 0x{program.symbols[name]:04x}")
    return "\n".join(lines) + "\n"


def _render_insn(rec):
    """Disassembly text; jumps are shown with their absolute target."""
    from repro.isa.opcodes import Format

    insn = rec.insn
    if insn.opcode.format is Format.JUMP:
        target = (rec.addr + 2 + 2 * insn.offset) & 0xFFFF
        return f"{insn.mnemonic} 0x{target:04x}"
    return insn.render()


def _symbol_note(program, rec):
    """Annotate operands whose immediate matches a known code symbol."""
    from repro.isa.opcodes import Format
    from repro.isa.operands import AddrMode

    insn = rec.insn
    if insn.opcode.format is Format.JUMP:
        target = (rec.addr + 2 + 2 * insn.offset) & 0xFFFF
        name = program.symbol_at(target)
        return f"<{name}>" if name else None
    for operand in (insn.src, insn.dst):
        if operand is None or operand.value is None:
            continue
        if operand.mode not in (AddrMode.IMMEDIATE, AddrMode.SYMBOLIC, AddrMode.ABSOLUTE):
            continue
        name = program.symbol_at(operand.value)
        if name is not None:
            return f"<{name}>"
    return None


def _format_line(addr, data, text, note):
    hex_bytes = " ".join(f"{b:02x}" for b in data)
    line = f"    {addr:04x}:\t{hex_bytes:<12s}\t{text}"
    if note:
        line += f"\t; {note}"
    return line.rstrip()


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_LABEL_LINE = re.compile(r"^([0-9a-f]{8}) <([^>]+)>:$")
_CODE_LINE = re.compile(r"^\s+([0-9a-f]+):\t((?:[0-9a-f]{2} ?)*)\t?(.*)$")
_SYMBOL_LINE = re.compile(r"^;\s+([\w.$]+) = 0x([0-9a-f]+)$")
_UNIT_LINE = re.compile(r"^; unit: (.+)$")


@dataclass
class ListingEntry:
    addr: int
    size: int
    text: str  # rendered instruction/directive text ('' for data tails)
    note: Optional[str] = None  # symbol annotation, without the <>

    @property
    def mnemonic(self):
        return self.text.split()[0] if self.text else ""


@dataclass
class ListingIndex:
    """Parsed view of a listing, as used by EILIDinst."""

    entries: List[ListingEntry] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    unit_ranges: Dict[str, List[list]] = field(default_factory=dict)

    def in_unit(self, addr, unit_name):
        """True if *addr* falls in any address range of *unit_name*."""
        for start, end in self.unit_ranges.get(unit_name, ()):
            if start is not None and start <= addr <= end:
                return True
        return False

    @property
    def by_addr(self):
        if not hasattr(self, "_by_addr"):
            self._by_addr = {e.addr: e for e in self.entries}
        return self._by_addr

    def next_address(self, addr):
        """Address of the instruction following the one at *addr*.

        This is exactly the paper's return-address computation: "if the
        function call address is 0x100, its return address would be
        0x102 or 0x104, depending on its instruction size".
        """
        entry = self.by_addr.get(addr)
        if entry is None:
            raise InstrumentationError(f"no listing entry at 0x{addr:04x}")
        return addr + entry.size

    def instructions(self, mnemonic=None):
        for entry in self.entries:
            if entry.size == 0 or not entry.text:
                continue
            if mnemonic is None or entry.mnemonic == mnemonic:
                yield entry

    def label_address(self, name):
        if name in self.labels:
            return self.labels[name]
        if name in self.symbols:
            return self.symbols[name]
        raise InstrumentationError(f"label {name!r} not present in listing")


def parse_listing(text):
    """Parse listing *text* into a :class:`ListingIndex`."""
    index = ListingIndex()
    current_unit = None
    for raw in text.splitlines():
        match = _LABEL_LINE.match(raw)
        if match:
            index.labels[match.group(2)] = int(match.group(1), 16)
            continue
        match = _UNIT_LINE.match(raw)
        if match:
            current_unit = match.group(1)
            index.unit_ranges.setdefault(current_unit, []).append([None, None])
            continue
        match = _SYMBOL_LINE.match(raw)
        if match:
            index.symbols[match.group(1)] = int(match.group(2), 16)
            continue
        match = _CODE_LINE.match(raw)
        if match:
            addr = int(match.group(1), 16)
            data = match.group(2).strip()
            size = len(data.split()) if data else 0
            body = match.group(3).strip()
            note = None
            if ";" in body:
                body, _, comment = body.partition(";")
                body = body.strip()
                comment = comment.strip()
                if comment.startswith("<") and comment.endswith(">"):
                    note = comment[1:-1]
            index.entries.append(ListingEntry(addr, size, body, note))
            if current_unit is not None:
                span = index.unit_ranges[current_unit][-1]
                if span[0] is None:
                    span[0] = addr
                span[1] = addr + max(size, 1) - 1
    return index
