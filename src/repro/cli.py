"""Command-line interface: ``eilid <command>``.

Every subcommand is a thin adapter over the public scenario API
(:mod:`repro.api`): flags are folded into a declarative
:class:`~repro.api.ScenarioSpec`, a :class:`~repro.api.Session` runs
the pipeline, and the typed outcome decides the exit code.

Commands:

* ``tables [--table N] [--repeats N]`` -- regenerate paper tables
  (Table IV measures; expect a couple of minutes at default repeats).
* ``figure10`` -- hardware overhead comparison.
* ``micro`` -- per-operation instrumentation costs (Sec. VI in-text).
* ``run-app NAME [--variant original|eilid]`` -- build + execute one
  Table IV application and print its run summary.
* ``attack NAME [--security none|casu|eilid]`` -- run one attack.
* ``verify`` -- model-check the monitor properties.
* ``fleet enroll|status|rollout|history|watch|alerts|metrics`` --
  simulate a verifier managing a population of devices (see
  :mod:`repro.fleet`).  ``--store PATH`` makes the verifier's registry
  durable across invocations (SQLite or JSON lines by extension);
  ``--events PATH`` records the longitudinal telemetry log the same
  way, and ``fleet history`` replays it (per-device timelines,
  per-campaign rollups, cross-campaign trends) without building a
  fleet; ``rollout --backend process`` shards the campaign across
  worker processes, and ``rollout --resume`` continues a killed
  campaign from the store without re-offering applied devices.
  Live observability: ``--alerts`` / ``--alert NAME=THRESHOLD``
  attach the rule engine (:mod:`repro.obs.alerts`) so spikes fire
  ``alert`` events into the same log; ``fleet watch --follow`` tails
  an event DB another process is writing (one line -- or, with
  ``--json``, one JSON document -- per event: the one subcommand that
  streams JSONL rather than a single envelope); ``fleet alerts``
  lists recorded alerts or re-evaluates rules offline (``--replay``);
  ``fleet metrics --format prom|json`` exports the span-derived
  metrics registry, either live or from a ``rollout --metrics-dump``
  snapshot file.
* ``cfg build|diff|verify-trace`` -- binary CFG recovery, CFI-policy
  compilation/cross-check, and branch-trace replay
  (see :mod:`repro.cfg`).

Every subcommand accepts ``--json``: instead of the human-readable
text it emits one JSON document that parses cleanly and carries
``schema`` and ``version`` keys (the result-dataclass envelopes from
:mod:`repro.api.results`).  Exit codes are unchanged by ``--json``.

Exit codes (consistent across subcommands):

* ``0`` -- success: the requested run completed and nothing bad
  happened (an attack was contained, properties hold, the app ran
  clean, a rollout completed).
* ``1`` -- usage error: unknown app/attack name, bad flag values.
* ``2`` -- security failure: an attack hijacked the device, a
  verification property failed, an app run tripped violations or never
  finished, or fleet devices could not be enrolled/attested.
* ``3`` -- fleet rollout halted by the campaign failure threshold.
"""

import argparse
import json
import sys

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_SECURITY = 2
EXIT_HALTED = 3


class _UsageError(Exception):
    """Bad names or flag values; rendered as a clean message + exit 1."""


def _print_json(doc: dict):
    print(json.dumps(doc, sort_keys=False))


def _session(spec):
    """Build a Session, translating spec validation into usage errors."""
    from repro.api import Session, SpecError

    try:
        return Session(spec)
    except SpecError as error:
        raise _UsageError(str(error)) from None


# ---- paper evaluation ------------------------------------------------------


def _cmd_tables(args):
    from repro.api import envelope
    from repro.eval import (
        measure_table4,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    wanted = args.table
    sections = {}
    texts = []
    for number, render in ((1, render_table1), (2, render_table2),
                           (3, render_table3)):
        if wanted in (None, number):
            text = render()
            texts.append(text)
            sections[f"table{number}"] = {"text": text}
    if wanted in (None, 4):
        rows = measure_table4(repeats=args.repeats)
        texts.append(render_table4(rows))
        sections["table4"] = {
            "repeats": args.repeats,
            "rows": [
                {
                    "name": row.name,
                    "title": row.title,
                    "compile_ms_orig": round(row.compile_ms_orig, 3),
                    "compile_ms_eilid": round(row.compile_ms_eilid, 3),
                    "size_bytes_orig": row.size_bytes_orig,
                    "size_bytes_eilid": row.size_bytes_eilid,
                    "run_us_orig": round(row.run_us_orig, 2),
                    "run_us_eilid": round(row.run_us_eilid, 2),
                    "size_overhead_pct": round(row.size_overhead_pct, 2),
                    "run_overhead_pct": round(row.run_overhead_pct, 2),
                }
                for row in rows
            ],
        }
    if args.json:
        _print_json(envelope("cli.tables", tables=sections))
    else:
        print("\n\n".join(texts))
    return EXIT_OK


def _cmd_figure10(args):
    from repro.api import envelope
    from repro.eval import render_figure10
    from repro.eval.figure10 import generate_figure10

    data = generate_figure10()
    if args.json:
        _print_json(envelope(
            "cli.figure10",
            series=[
                {"name": name, "kind": kind, "platform": platform,
                 "luts": luts, "registers": registers}
                for name, kind, platform, luts, registers in zip(
                    data.names, data.kinds, data.platforms,
                    data.luts, data.registers)
            ],
            eilid_lut_pct=round(data.eilid_lut_pct, 2),
            eilid_register_pct=round(data.eilid_register_pct, 2),
        ))
    else:
        print(render_figure10(data))
    return EXIT_OK


def _cmd_micro(args):
    from repro.api import envelope
    from repro.eval import render_micro
    from repro.eval.microbench import measure_micro

    result = measure_micro()
    if args.json:
        _print_json(envelope(
            "cli.micro",
            store_cycles=result.store_cycles,
            check_cycles=result.check_cycles,
            store_instructions=result.store_instructions,
            check_instructions=result.check_instructions,
            store_us=result.store_us,
            check_us=result.check_us,
        ))
    else:
        print(render_micro(result))
    return EXIT_OK


# ---- single-device scenarios -----------------------------------------------


def _cmd_run_app(args):
    from repro.api import FirmwareSpec, ScenarioSpec
    from repro.apps import get_app

    security = "eilid" if args.variant == "eilid" else "none"
    session = _session(ScenarioSpec(
        name=args.name,
        firmware=FirmwareSpec(kind="app", app=args.name, variant=args.variant),
        security=security,
    ))
    outcome = session.run()
    if args.json:
        _print_json(outcome.to_dict())
    else:
        spec = get_app(args.name)
        print(f"{spec.title} ({args.variant}): done={outcome.done} "
              f"cycles={outcome.cycles} ({outcome.run_time_us:.1f} us @100MHz) "
              f"violations={len(outcome.violations)}")
        for port, value in session.device.output_events()[:20]:
            print(f"  {port} = 0x{value:04x}")
    return EXIT_OK if outcome.ok else EXIT_SECURITY


def _cmd_attack(args):
    from repro.api import ScenarioSpec

    session = _session(ScenarioSpec(
        name=args.name, attack=args.name, security=args.security))
    outcome = session.run()
    if args.json:
        _print_json(outcome.to_dict())
    else:
        print(session.attack_result)
    if outcome.attack.outcome == "hijacked":
        return EXIT_SECURITY  # the attack went through undetected
    return EXIT_OK


def _cmd_verify(args):
    from repro.api import envelope
    from repro.verification.properties import check_all

    results = check_all()
    failures = sum(0 if result.holds else 1 for result in results)
    if args.json:
        _print_json(envelope(
            "cli.verify",
            ok=failures == 0,
            properties=[
                {"name": result.property_name, "holds": result.holds,
                 "states_explored": result.states_explored}
                for result in results
            ],
        ))
    else:
        for result in results:
            print(result)
    return EXIT_SECURITY if failures else EXIT_OK


# ---- cfg -------------------------------------------------------------------


def _cfg_build_app(args):
    """Shared front half of the cfg commands: build + recover + compile."""
    from repro.api import FirmwareSpec, SpecError, build_firmware
    from repro.cfg import compile_policy, recover_cfg

    try:
        build = build_firmware(FirmwareSpec(
            kind="app", app=args.name, variant=args.variant).validate())
    except SpecError as error:
        raise _UsageError(str(error)) from None
    cfg = recover_cfg(build.program)
    policy = compile_policy(cfg, symbols=build.program.symbols)
    return build, cfg, policy


def _cmd_cfg_build(args):
    _build, cfg, policy = _cfg_build_app(args)
    if args.json:
        # The policy artifact itself IS the payload: schema/version
        # envelope keys are merged in, and the document stays loadable
        # by CfiPolicy.from_json (its own "format" key is preserved).
        from repro.api import envelope

        _print_json(envelope(
            "cfg.policy",
            indirect_targets_registered=policy.indirect_from_table,
            indirect_target_count=len(policy.indirect_targets),
            **policy.to_dict()))
        return EXIT_OK
    print(f"{cfg.name}: {len(cfg.insns)} instructions, "
          f"{len(cfg.functions)} functions, {cfg.block_count} blocks")
    print(f"  call sites: {len(cfg.call_sites)} "
          f"({sum(1 for s in cfg.call_sites if s.target is None)} indirect)")
    print(f"  return sites: {len(cfg.return_sites)}")
    source = ("EILID call table" if cfg.indirect_targets_registered
              else "UNREGISTERED fallback: all discovered entries")
    print(f"  indirect targets registered: "
          f"{cfg.indirect_targets_registered}")
    print(f"  indirect targets ({source}, {len(cfg.indirect_targets)}): "
          + ", ".join(f"0x{a:04x}" for a in cfg.indirect_targets))
    print(f"  ISR vectors: {len([v for v in cfg.vectors if v != 15])}, "
          f"reti sites: {len(cfg.reti_sites)}")
    print(f"  policy digest: {policy.digest}")
    for func in cfg.functions.values():
        callees = sorted(cfg.call_graph.get(func.name, ()))
        arrow = f" -> {', '.join(callees)}" if callees else ""
        print(f"    {func.name} @0x{func.entry:04x} "
              f"[{func.block_count} blocks]{arrow}")
    return EXIT_OK


def _cmd_cfg_diff(args):
    build, _cfg, policy = _cfg_build_app(args)
    from repro.api import envelope
    from repro.cfg import diff_against_listing

    divergences = diff_against_listing(policy, build.listing)
    if args.json:
        _print_json(envelope(
            "cli.cfg-diff",
            app=args.name,
            variant=args.variant,
            ok=not divergences,
            policy_digest=policy.digest,
            divergences=list(divergences),
        ))
        return EXIT_OK if not divergences else EXIT_SECURITY
    if not divergences:
        print(f"{args.name} ({args.variant}): binary-derived policy matches "
              f"the listing-derived view "
              f"({len(policy.return_sites)} return sites, "
              f"{len(policy.indirect_targets)} indirect targets)")
        return EXIT_OK
    print(f"{args.name} ({args.variant}): {len(divergences)} divergence(s):")
    for line in divergences:
        print(f"  {line}")
    return EXIT_SECURITY


def _cmd_cfg_verify_trace(args):
    from repro.api import FirmwareSpec, ScenarioSpec

    if args.attack:
        session = _session(ScenarioSpec(
            name=args.attack, attack=args.attack, security=args.security))
        outcome = session.run()
        banner = str(session.attack_result)
    else:
        from repro.apps import get_app

        variant = args.variant
        session = _session(ScenarioSpec(
            name=args.name,
            firmware=FirmwareSpec(kind="app", app=args.name, variant=variant),
            security="eilid" if variant == "eilid" else "none",
        ))
        outcome = session.run()
        banner = (f"{get_app(args.name).title} ({variant}): "
                  f"done={outcome.done} cycles={outcome.cycles}")
    verdict = session.verify()
    if args.json:
        _print_json(verdict.to_dict())
    else:
        print(banner)
        snapshot = session.device.trace_snapshot()
        print(f"trace: {snapshot.total} edges ({snapshot.dropped} dropped), "
              f"digest {snapshot.digest_hex}")
        if verdict.ok:
            print(f"replay ok ({verdict.edges_checked} edges)")
        else:
            print(f"replay REJECTED: {verdict.reason}")
    return EXIT_OK if verdict.ok else EXIT_SECURITY


# ---- faults ----------------------------------------------------------------


def _faults_kinds(args):
    from repro.faults import FAULT_KINDS

    if not args.kinds:
        return FAULT_KINDS
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    unknown = sorted(set(kinds) - set(FAULT_KINDS))
    if unknown:
        raise _UsageError(f"unknown fault kind(s) {', '.join(unknown)}; "
                          f"one of {', '.join(FAULT_KINDS)}")
    return kinds


def _cmd_faults_enumerate(args):
    from repro.api import FirmwareSpec, SpecError, build_firmware, envelope
    from repro.cfg import recover_cfg
    from repro.faults import enumerate_sites

    try:
        build = build_firmware(FirmwareSpec(
            kind="app", app=args.name, variant=args.variant).validate())
    except SpecError as error:
        raise _UsageError(str(error)) from None
    cfg = recover_cfg(build.program, name=args.name)
    sites = enumerate_sites(cfg, kinds=_faults_kinds(args))
    counts = {}
    for site in sites:
        counts[site.kind] = counts.get(site.kind, 0) + 1
    if args.json:
        _print_json(envelope(
            "cli.faults-enumerate",
            app=args.name, variant=args.variant,
            total=len(sites), kinds=counts,
            sites=[{"kind": site.kind, "pc": site.pc,
                    "function": site.function, "block": site.block}
                   for site in sites]))
        return EXIT_OK
    print(f"{args.name} ({args.variant}): {len(sites)} fault sites "
          f"from {len(cfg.functions)} functions / {cfg.block_count} blocks")
    for kind in sorted(counts):
        print(f"  {kind}: {counts[kind]}")
    return EXIT_OK


def _cmd_faults_sweep(args):
    from repro.api import (
        FaultSpec,
        FirmwareSpec,
        ScenarioSpec,
        SpecError,
        envelope,
    )

    profiles = tuple(p.strip() for p in args.profiles.split(",") if p.strip())
    try:
        plan = FaultSpec(
            seed=args.seed, count=args.count, kinds=_faults_kinds(args),
            profiles=profiles, backend=args.backend, workers=args.workers,
            warmup_steps=args.warmup_steps).validate()
    except SpecError as error:
        raise _UsageError(str(error)) from None
    session = _session(ScenarioSpec(
        name=args.name,
        firmware=FirmwareSpec(kind="app", app=args.name,
                              variant=args.variant)))
    events = None
    if args.events:
        from repro.obs.events import open_event_log

        events = open_event_log(args.events)
    try:
        report = session.fault_sweep(plan, events=events)
    finally:
        if events is not None:
            events.close()
    if args.json:
        _print_json(envelope("cli.faults-sweep", **report.to_dict()))
    else:
        print(report.render())
    return EXIT_OK


# ---- static analysis --------------------------------------------------------


def _cmd_analyze(args):
    from repro.api import (
        AnalyzeSpec,
        FaultSpec,
        ScenarioSpec,
        SpecError,
        envelope,
    )

    try:
        if args.rules:
            rules = tuple(r.strip() for r in args.rules.split(",")
                          if r.strip())
            spec = AnalyzeSpec(rules=rules, stack_margin=args.stack_margin,
                               irq_nesting=args.irq_nesting)
        else:
            spec = AnalyzeSpec(stack_margin=args.stack_margin,
                               irq_nesting=args.irq_nesting)
        spec.validate()
    except SpecError as error:
        raise _UsageError(str(error)) from None

    if args.attack:
        scenario = ScenarioSpec(name=args.attack, attack=args.attack)
    else:
        from repro.api import FirmwareSpec

        scenario = ScenarioSpec(
            name=args.name,
            firmware=FirmwareSpec(kind="app", app=args.name,
                                  variant=args.variant))
    session = _session(scenario)

    fault_report = None
    if args.sweep:
        profiles = tuple(p.strip() for p in args.profiles.split(",")
                         if p.strip())
        try:
            plan = FaultSpec(seed=args.seed, count=args.count,
                             profiles=profiles).validate()
        except SpecError as error:
            raise _UsageError(str(error)) from None
        fault_report = session.fault_sweep(plan)

    events = None
    if args.events:
        from repro.obs.events import open_event_log

        events = open_event_log(args.events)
    try:
        outcome = session.analyze(spec, events=events,
                                  fault_report=fault_report)
    finally:
        if events is not None:
            events.close()

    if args.json:
        _print_json(outcome.to_dict())
    else:
        print(session.analysis_report.render())
        if outcome.correlation is not None:
            clusters = outcome.correlation["clusters"]
            proposals = outcome.correlation["proposals"]
            print(f"sweep correlation: {len(clusters)} escape cluster(s), "
                  f"{len(proposals)} proposed tightening(s)")
            for cluster in clusters:
                where = (f"block 0x{cluster['block']:04x}"
                         if cluster["block"] is not None else "unmapped")
                print(f"  [{cluster['profile']}] {where} "
                      f"({cluster['function'] or '?'}): "
                      f"{len(cluster['fault_ids'])} fault(s), "
                      f"findings={len(cluster['findings'])}")
            for proposal in proposals:
                print(f"  propose {proposal['action']}: "
                      f"{proposal['reason']}")
    return EXIT_OK if outcome.ok else EXIT_SECURITY


# ---- fleet -----------------------------------------------------------------


def _alerts_config(args):
    """Fold ``--alerts`` / ``--alert NAME=VALUE`` into the FleetSpec
    shape: None (engine off), True (default panel) or a {rule:
    threshold} dict."""
    overrides = {}
    for entry in getattr(args, "alert", None) or ():
        name, separator, value = entry.partition("=")
        if not separator:
            raise _UsageError(f"--alert wants NAME=THRESHOLD, got {entry!r}")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise _UsageError(
                f"--alert {name}: threshold {value!r} is not a number"
            ) from None
    if overrides:
        from repro.obs.alerts import RULE_REGISTRY

        for name in overrides:
            if name not in RULE_REGISTRY:
                raise _UsageError(
                    f"unknown alert rule {name!r}; one of "
                    f"{', '.join(RULE_REGISTRY)}")
        return overrides
    return True if getattr(args, "alerts", False) else None


def _fleet_session(args, rollout=None, run_cycles=2_000):
    from repro.api import FleetSpec, ScenarioSpec

    return _session(ScenarioSpec(
        name="fleet",
        security=args.security,
        fleet=FleetSpec(
            size=args.devices,
            loss=args.loss,
            reorder=args.reorder,
            seed=args.seed,
            run_cycles=run_cycles,
            store=args.store,
            events=args.events,
            alerts=_alerts_config(args),
            rollout=rollout,
        ),
    ))


def _cmd_fleet_enroll(args):
    from repro.api import envelope

    session = _fleet_session(args)
    fleet = session.fleet
    failed = [record.device_id for record in fleet.registry
              if not record.enrolled_ok]
    states = {state: count
              for state, count in sorted(fleet.registry.state_histogram().items())}
    if args.json:
        _print_json(envelope(
            "cli.fleet-enroll",
            ok=not failed,
            devices=len(fleet.registry),
            enrolled=len(fleet.registry) - len(failed),
            security=args.security,
            loss=args.loss,
            states=states,
        ))
    else:
        print(f"enrolled {len(fleet.registry) - len(failed)}/{len(fleet.registry)} "
              f"devices (security={args.security}, loss={args.loss})")
        for state, count in states.items():
            print(f"  {state}: {count}")
    return EXIT_SECURITY if failed else EXIT_OK


def _fleet_client(url):
    from repro.serve import FleetClient

    return FleetClient(url)


def _cmd_fleet_status(args):
    if getattr(args, "url", None):
        return _fleet_status_url(args)
    session = _fleet_session(args)
    session.run()
    attest = session.attest()
    if args.json:
        # Additive keys on the eilid.attest envelope: the telemetry
        # aggregate always, the longitudinal per-device rollup when an
        # event DB is attached (last-seen, quarantine reason, campaign
        # count -- the questions "which device went dark and why").
        doc = attest.to_dict()
        doc["telemetry"] = session.fleet.telemetry.as_dict()
        if args.events:
            doc["history"] = session.fleet.events.device_rollup()
        _print_json(doc)
    else:
        print(session.fleet.status())
    return EXIT_OK if attest.ok else EXIT_SECURITY


def _fleet_status_url(args):
    """Ask a running serve daemon instead of opening the store --
    the daemon already holds the SQLite writers; a second process
    opening the same shards would contend with it."""
    from repro.serve import ServeError

    client = _fleet_client(args.url)
    try:
        status = client.status()
    except (ConnectionError, OSError, ServeError) as error:
        raise _UsageError(
            f"cannot reach a serve daemon at {args.url!r}: {error}"
        ) from None
    attest = None
    try:
        attest = client.attest()
    except ServeError as error:
        if error.status != 409:  # 409: a campaign holds the fleet
            raise _UsageError(f"daemon attest failed: {error}") from None
    if args.json:
        doc = dict(attest) if attest is not None else {}
        doc["daemon"] = status
        doc.setdefault("schema", "eilid.serve.status")
        doc.setdefault("version", status.get("version", 1))
        _print_json(doc)
    else:
        states = ", ".join(f"{state}: {count}" for state, count
                           in sorted(status["states"].items()))
        print(f"daemon at {status['url']}: {status['devices']} devices "
              f"({states}); store {status['store']['backend']} x"
              f"{status['store']['shards']}")
        if attest is None:
            running = [cid for cid, entry in status["campaigns"].items()
                       if entry["running"]]
            print(f"attest skipped: campaign "
                  f"{', '.join(running) or '?'} in flight")
        else:
            print(f"attested {attest['attested']} devices, "
                  f"{len(attest['failed'])} failures")
            for failure in attest["failed"]:
                print(f"  {failure['device']}: {failure['detail']} "
                      f"-> {failure['state']}")
    return EXIT_SECURITY if attest is not None and not attest["ok"] \
        else EXIT_OK


def _event_line(event: dict) -> str:
    """One compact human-readable cell for an event's payload."""
    data = event.get("data") or {}
    parts = [f"{key}={data[key]}" for key in sorted(data)]
    return " ".join(parts)[:60]


def _cmd_fleet_history(args):
    import os

    from repro.api import envelope
    from repro.eval.report import render_table
    from repro.obs import open_event_log

    path = args.events
    if not path:
        raise _UsageError("fleet history needs --events PATH (the event DB "
                          "a previous invocation recorded to)")
    if path != ":memory:" and not os.path.exists(path):
        raise _UsageError(f"no event DB at {path!r}")
    log = open_event_log(path)
    try:
        if args.device:
            timeline = log.device_timeline(args.device)
            if args.json:
                _print_json(envelope("cli.fleet-history", events=path,
                                     device=args.device, timeline=timeline))
            else:
                rows = [(event["seq"], event["kind"],
                         event["campaign"] or "-", _event_line(event))
                        for event in timeline]
                print(render_table(("seq", "event", "campaign", "detail"),
                                   rows, title=f"timeline of {args.device} "
                                               f"({len(rows)} events)"))
        elif args.campaigns:
            rollup = log.campaign_rollup()
            if args.json:
                _print_json(envelope("cli.fleet-history", events=path,
                                     campaigns=rollup))
            else:
                rows = [(entry["campaign"], entry["target_version"],
                         entry["status"], entry["applied"], entry["failed"],
                         entry["quarantined"], entry["devices_per_sec"])
                        for entry in rollup]
                print(render_table(
                    ("campaign", "target", "status", "applied", "failed",
                     "quarantined", "dev/s"), rows,
                    title=f"{len(rows)} campaigns"))
        elif args.trends:
            trends = log.trends()
            if args.json:
                _print_json(envelope("cli.fleet-history", events=path,
                                     trends=trends))
            else:
                rows = list(zip(trends["campaigns"],
                                trends["target_versions"],
                                trends["devices_per_sec"],
                                trends["applied"], trends["failed"],
                                trends["quarantined"]))
                print(render_table(
                    ("campaign", "target", "dev/s", "applied", "failed",
                     "quarantined"), rows, title="cross-campaign trends"))
        else:
            rollup = log.device_rollup()
            if args.json:
                _print_json(envelope("cli.fleet-history", events=path,
                                     devices=rollup))
            else:
                rows = [(device_id, entry["events"], entry["attests"],
                         entry["attest_failures"], entry["campaigns"],
                         entry["quarantine_reason"] or "-")
                        for device_id, entry in sorted(rollup.items())]
                print(render_table(
                    ("device", "events", "attests", "failures", "campaigns",
                     "quarantine"), rows,
                    title=f"{len(rows)} devices with history"))
    finally:
        log.close()
    return EXIT_OK


def _cmd_fleet_rollout(args):
    from repro.api import RolloutSpec, SpecError

    try:
        waves = tuple(float(f) for f in args.waves.split(","))
    except ValueError as error:
        raise _UsageError(f"bad rollout options: {error}") from None
    rollout = RolloutSpec(
        version=args.version,
        wave_fractions=waves,
        failure_threshold=args.failure_threshold,
        tamper_fraction=args.tamper_fraction,
        rollback_fraction=args.rollback_fraction,
        workers=args.workers,
        batch_size=args.batch_size,
        backend=args.backend,
        resume=args.resume,
        metrics_dump=args.metrics_dump,
    )
    if args.resume and not args.store:
        raise _UsageError("--resume needs --store (the durable registry "
                          "the campaign resumes from)")
    # The rollout command has no pre-run phase (it measures campaign
    # throughput, not device execution), matching the historical CLI.
    session = _fleet_session(args, rollout=rollout, run_cycles=0)
    outcome = session.run()
    if args.json:
        _print_json(outcome.to_dict())
    else:
        print(session.campaign_report.render())
        print()
        print(session.fleet.status())
        engine = session.fleet.alerts
        if engine is not None and engine.fired:
            print()
            for alert in engine.fired:
                print(f"ALERT[{alert['severity']}] {alert['rule']} "
                      f"({alert['campaign'] or '-'}): {alert['message']}")
    return EXIT_HALTED if session.campaign_report.halted else EXIT_OK


def _watch_line(doc: dict) -> str:
    """One human-readable line per streamed event."""
    campaign = doc["campaign"] or "-"
    device = doc["device"] or "-"
    if doc["kind"] == "alert":
        data = doc["data"]
        return (f"#{doc['seq']} ALERT[{data.get('severity', '?')}] "
                f"{data.get('rule', '?')} {campaign}: "
                f"{data.get('message', '')}")
    return (f"#{doc['seq']} {doc['kind']:<14} {device:<12} {campaign:<6} "
            f"{_event_line(doc)}")


def _fleet_watch_url(args):
    """Stream the event log from a running daemon (GET /events) --
    same lines, same exit contract as the file-tail path, without
    touching the daemon's store or event DB files."""
    import socket

    from repro.serve import ServeError

    client = _fleet_client(args.url)
    streamed = alerts = last_seq = 0
    try:
        stream = client.events(since=args.since, follow=args.follow,
                               timeout=args.timeout or None)
        for doc in stream:
            streamed += 1
            last_seq = doc["seq"]
            if doc["kind"] == "alert":
                alerts += 1
            if args.json:
                print(json.dumps(doc, sort_keys=True), flush=True)
            else:
                print(_watch_line(doc), flush=True)
            if args.until_end and doc["kind"] == "campaign-end":
                break
    except (socket.timeout, TimeoutError):
        pass  # --timeout expired between events; what streamed counts
    except (ConnectionError, OSError, ServeError) as error:
        raise _UsageError(
            f"cannot stream from a serve daemon at {args.url!r}: {error}"
        ) from None
    except KeyboardInterrupt:
        pass
    if not args.json:
        print(f"-- {streamed} events (through seq {last_seq}), "
              f"{alerts} alerts")
    return EXIT_SECURITY if alerts else EXIT_OK


def _cmd_fleet_watch(args):
    import os
    import time

    from repro.obs import open_event_tail

    if getattr(args, "url", None):
        return _fleet_watch_url(args)
    path = args.events
    if not path:
        raise _UsageError("fleet watch needs --events PATH (the event DB a "
                          "running fleet invocation writes to)")
    if not args.follow and path != ":memory:" and not os.path.exists(path):
        # With --follow the writer may simply not have created the
        # file yet; without it an absent DB is an operator typo.
        raise _UsageError(f"no event DB at {path!r} (use --follow to wait "
                          f"for a writer to create it)")
    tail = open_event_tail(path, since_seq=args.since)
    deadline = (time.monotonic() + args.timeout) if args.timeout else None
    streamed = alerts = 0
    ended = False
    try:
        while True:
            for doc in tail.read():
                streamed += 1
                if doc["kind"] == "alert":
                    alerts += 1
                elif doc["kind"] == "campaign-end":
                    ended = True
                if args.json:
                    # A JSONL stream (one document per event), not the
                    # usual single envelope: watch is a pipe, and each
                    # line parses on its own.
                    print(json.dumps(doc, sort_keys=True), flush=True)
                else:
                    print(_watch_line(doc), flush=True)
            if not args.follow:
                break
            if args.until_end and ended:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        tail.close()
    if not args.json:
        print(f"-- {streamed} events (through seq {tail.last_seq}), "
              f"{alerts} alerts")
    return EXIT_SECURITY if alerts else EXIT_OK


def _cmd_fleet_alerts(args):
    import os

    from repro.api import envelope
    from repro.eval.report import render_table
    from repro.obs import open_event_log
    from repro.obs.alerts import AlertEngine, build_rules

    path = args.events
    if not path:
        raise _UsageError("fleet alerts needs --events PATH (the event DB "
                          "a previous fleet invocation recorded to)")
    if path != ":memory:" and not os.path.exists(path):
        raise _UsageError(f"no event DB at {path!r}")
    log = open_event_log(path)
    try:
        recorded = [dict(event["data"], campaign=event["campaign"],
                         ts=event["ts"], seq=event["seq"])
                    for event in log.events(kind="alert")]
        replayed = None
        if args.replay:
            # Re-evaluate the rule panel over the stored history --
            # the path for logs recorded without a live engine (or
            # with different thresholds).  Nothing is written back.
            config = _alerts_config(args)
            engine = AlertEngine(build_rules(
                config if isinstance(config, dict) else None))
            replayed = engine.replay(log)
    finally:
        log.close()
    shown = replayed if args.replay else recorded
    if args.json:
        doc = envelope("cli.fleet-alerts", events=path,
                       recorded=recorded, replayed=replayed,
                       alerts=shown)
        _print_json(doc)
    else:
        rows = [(alert.get("severity", "?"), alert.get("rule", "?"),
                 alert.get("campaign") or "-", alert.get("message", ""))
                for alert in shown]
        mode = "replayed" if args.replay else "recorded"
        print(render_table(("severity", "rule", "campaign", "message"), rows,
                           title=f"{len(rows)} {mode} alerts"))
    critical = any(alert.get("severity") == "critical" for alert in shown)
    return EXIT_SECURITY if critical else EXIT_OK


def _cmd_fleet_metrics(args):
    from repro.obs.export import to_json_doc, to_prometheus

    source = None
    if args.snapshot:
        import os

        if not os.path.exists(args.snapshot):
            raise _UsageError(f"no metrics snapshot at {args.snapshot!r}")
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError:
                raise _UsageError(
                    f"{args.snapshot!r} is not a JSON metrics snapshot "
                    f"(--from wants the json dump; a .prom dump is already "
                    f"in exposition format)") from None
        # Accept both the enveloped dump (--metrics-dump / periodic
        # wave dumps) and a bare registry snapshot.
        snapshot = doc.get("metrics", doc)
        source = doc.get("source", args.snapshot)
    else:
        # No snapshot file: run the fleet workload the usual flags
        # describe and export what this process recorded.
        session = _fleet_session(args)
        session.run()
        session.attest()
        snapshot = session.metrics()
    fmt = "json" if args.json else args.format
    if fmt == "prom":
        print(to_prometheus(snapshot), end="")
    else:
        _print_json(to_json_doc(snapshot, source=source))
    return EXIT_OK


# ---- serve -----------------------------------------------------------------


def _cmd_serve_run(args):
    """Run the fleet control-plane daemon until SIGTERM/SIGINT.

    Exit contract: 0 after a graceful shutdown (in-flight exchanges
    drained, every shard store and the event log flushed), 1 on usage
    errors (bad flags, unbindable port).  A campaign stopped by the
    shutdown is not an error -- it resumes with ``fleet rollout
    --resume`` against the same shards.
    """
    import asyncio
    import gc

    from repro.api import envelope
    from repro.fleet.simulation import FleetSimulation
    from repro.serve import VerifierDaemon, open_sharded_store

    store = open_sharded_store(args.store_shard)
    # Building a large fleet allocates one simulated device per record
    # with zero garbage; collector passes over the growing heap only
    # slow the build down.  Freeze what the build allocated afterwards
    # so steady-state collections skip it too.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        fleet = FleetSimulation(
            size=args.devices, security=args.security, loss=args.loss,
            reorder=args.reorder, seed=args.seed, store=store,
            events=args.events, alerts=_alerts_config(args))
    except ValueError as error:  # negative --devices, loss outside [0,1]
        store.close()
        raise _UsageError(str(error)) from None
    finally:
        gc.freeze()
        if gc_was_enabled:
            gc.enable()
    daemon = VerifierDaemon(fleet, host=args.host, port=args.port,
                            max_workers=args.workers)

    def ready(d):
        # The readiness line is a contract: subprocess drivers (the
        # demo, tests) block on it to learn the bound port.  Flush
        # explicitly -- stdout is block-buffered under a pipe.
        if args.json:
            print(json.dumps(envelope(
                "serve.ready", url=d.url, host=d.host, port=d.port,
                devices=len(fleet.registry),
                shards=len(getattr(store, "stores", [store]))),
                sort_keys=True), flush=True)
        else:
            print(f"serving {len(fleet.registry)} devices at {d.url} "
                  f"(SIGTERM for graceful shutdown)", flush=True)

    try:
        asyncio.run(daemon.run(ready=ready))
    except OSError as error:
        raise _UsageError(
            f"cannot bind {args.host}:{args.port}: {error}") from None
    finally:
        store.close()
        if fleet.events is not None:
            fleet.events.close()
    if args.json:
        print(json.dumps(envelope("serve.shutdown", ok=True,
                                  devices=len(fleet.registry)),
                         sort_keys=True), flush=True)
    else:
        print("shutdown: drained, flushed, stores closed", flush=True)
    return EXIT_OK


# ---- parser ----------------------------------------------------------------


class _Parser(argparse.ArgumentParser):
    """argparse exits 2 on bad flags; our contract reserves 2 for
    security failures, so parse errors are rerouted to exit 1."""

    def error(self, message):
        raise _UsageError(message)


def main(argv=None):
    import repro

    parser = _Parser(prog="eilid", description=__doc__)
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p):
        p.add_argument("--json", action="store_true",
                       help="emit one JSON document (schema + version keys) "
                            "instead of text")

    p_tables = sub.add_parser("tables", help="regenerate paper tables")
    p_tables.add_argument("--table", type=int, choices=(1, 2, 3, 4))
    p_tables.add_argument("--repeats", type=int, default=3)
    add_json(p_tables)
    p_tables.set_defaults(func=_cmd_tables)

    p_fig = sub.add_parser("figure10", help="hardware overhead comparison")
    add_json(p_fig)
    p_fig.set_defaults(func=_cmd_figure10)

    p_micro = sub.add_parser("micro", help="per-op instrumentation cost")
    add_json(p_micro)
    p_micro.set_defaults(func=_cmd_micro)

    p_run = sub.add_parser("run-app", help="run one Table IV application")
    p_run.add_argument("name")
    p_run.add_argument("--variant", choices=("original", "eilid"), default="eilid")
    add_json(p_run)
    p_run.set_defaults(func=_cmd_run_app)

    p_attack = sub.add_parser("attack", help="run one attack scenario")
    p_attack.add_argument("name")
    p_attack.add_argument("--security", choices=("none", "casu", "eilid"), default="eilid")
    add_json(p_attack)
    p_attack.set_defaults(func=_cmd_attack)

    p_verify = sub.add_parser("verify", help="model-check the monitor properties")
    add_json(p_verify)
    p_verify.set_defaults(func=_cmd_verify)

    p_cfg = sub.add_parser("cfg", help="binary CFG recovery + trace attestation")
    cfg_sub = p_cfg.add_subparsers(dest="cfg_command", required=True)

    def cfg_common(p):
        p.add_argument("name", nargs="?", default="fire_sensor",
                       help="Table IV application name")
        p.add_argument("--variant", choices=("original", "eilid"),
                       default="eilid")
        add_json(p)

    p_cfg_build = cfg_sub.add_parser(
        "build", help="recover the CFG and compile its CFI policy")
    cfg_common(p_cfg_build)
    p_cfg_build.set_defaults(func=_cmd_cfg_build)

    p_cfg_diff = cfg_sub.add_parser(
        "diff", help="cross-check the binary policy against the listing view")
    cfg_common(p_cfg_diff)
    p_cfg_diff.set_defaults(func=_cmd_cfg_diff)

    p_cfg_verify = cfg_sub.add_parser(
        "verify-trace", help="run an app or attack and replay its branch trace")
    cfg_common(p_cfg_verify)
    p_cfg_verify.add_argument("--attack", default=None,
                              help="replay an attack scenario's trace instead")
    p_cfg_verify.add_argument("--security", choices=("none", "casu", "eilid"),
                              default="none",
                              help="device security level for --attack runs")
    p_cfg_verify.set_defaults(func=_cmd_cfg_verify_trace)

    p_faults = sub.add_parser(
        "faults", help="CFG-driven fault-injection campaigns")
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)

    def faults_common(p):
        p.add_argument("name", nargs="?", default="light_sensor",
                       help="Table IV application name")
        p.add_argument("--variant", choices=("original", "eilid"),
                       default="original",
                       help="firmware variant to sweep (default original: "
                            "every profile runs the same image, so the "
                            "eilid >= casu >= none ordering is exact)")
        p.add_argument("--kinds", default=None, metavar="K1,K2",
                       help="comma-separated fault kinds (default: all)")
        add_json(p)

    p_faults_enum = faults_sub.add_parser(
        "enumerate", help="list fault sites recovered from the CFG")
    faults_common(p_faults_enum)
    p_faults_enum.set_defaults(func=_cmd_faults_enumerate)

    p_faults_sweep = faults_sub.add_parser(
        "sweep", help="run a seeded sweep and grade each defense profile")
    faults_common(p_faults_sweep)
    p_faults_sweep.add_argument("--seed", type=int, default=0)
    p_faults_sweep.add_argument("--count", type=int, default=48,
                                help="faults to sample from the site pool")
    p_faults_sweep.add_argument("--profiles", default="none,casu,eilid",
                                help="comma-separated defense profiles")
    p_faults_sweep.add_argument("--backend", choices=("thread", "process"),
                                default="thread")
    p_faults_sweep.add_argument("--workers", type=int, default=4)
    p_faults_sweep.add_argument("--warmup-steps", type=int, default=0,
                                help="honest steps before the snapshot "
                                     "faults are injected into")
    p_faults_sweep.add_argument("--events", default=None, metavar="PATH",
                                help="log fault-inject/fault-outcome events "
                                     "to this event DB (watch with "
                                     "'fleet watch')")
    p_faults_sweep.set_defaults(func=_cmd_faults_sweep)

    p_analyze = sub.add_parser(
        "analyze", help="static CFI/stack/memory lint over the recovered CFG")
    p_analyze.add_argument("name", nargs="?", default="light_sensor",
                           help="Table IV application name")
    p_analyze.add_argument("--variant", choices=("original", "eilid"),
                           default="original")
    p_analyze.add_argument("--attack", default=None, metavar="NAME",
                           help="analyze an attack scenario's firmware image "
                                "instead of an application")
    p_analyze.add_argument("--rules", default=None, metavar="R1,R2",
                           help="comma-separated rule groups "
                                "(default: stack,regions,coverage)")
    p_analyze.add_argument("--stack-margin", type=int, default=64,
                           help="minimum stack headroom (bytes) before the "
                                "stack rule warns")
    p_analyze.add_argument("--irq-nesting", type=int, default=1,
                           help="worst-case nested interrupts the stack "
                                "bound assumes")
    p_analyze.add_argument("--sweep", action="store_true",
                           help="run a fault sweep first and correlate "
                                "escape clusters with the findings")
    p_analyze.add_argument("--seed", type=int, default=0,
                           help="sweep seed (with --sweep)")
    p_analyze.add_argument("--count", type=int, default=48,
                           help="sweep fault count (with --sweep)")
    p_analyze.add_argument("--profiles", default="none,casu,eilid",
                           help="sweep defense profiles (with --sweep)")
    p_analyze.add_argument("--events", default=None, metavar="PATH",
                           help="log analysis-finding events to this "
                                "event DB")
    add_json(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_fleet = sub.add_parser("fleet", help="simulate a managed device fleet")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    def fleet_common(p):
        p.add_argument("--devices", type=int, default=100,
                       help="fleet size to simulate")
        p.add_argument("--security", choices=("none", "casu", "eilid"),
                       default="casu")
        p.add_argument("--loss", type=float, default=0.0,
                       help="per-message drop probability")
        p.add_argument("--reorder", type=float, default=0.0,
                       help="per-message reorder probability")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--store", default=None, metavar="PATH",
                       help="durable registry store; .db/.sqlite -> SQLite, "
                            "anything else -> JSON lines (records persist "
                            "across invocations)")
        p.add_argument("--events", default=None, metavar="PATH",
                       help="durable event DB (same suffix dispatch as "
                            "--store); every enroll/attest/offer/quarantine "
                            "is logged for fleet history to replay")
        p.add_argument("--alerts", action="store_true",
                       help="attach the default alert-rule panel; fired "
                            "alerts land in the event DB as 'alert' events")
        p.add_argument("--alert", action="append", metavar="NAME=THRESHOLD",
                       help="attach one alert rule with a custom threshold "
                            "(repeatable; implies --alerts for the named "
                            "rules only)")
        add_json(p)

    p_enroll = fleet_sub.add_parser("enroll", help="provision + enroll devices")
    fleet_common(p_enroll)
    p_enroll.set_defaults(func=_cmd_fleet_enroll)

    p_status = fleet_sub.add_parser("status",
                                    help="run, attest, and print telemetry")
    fleet_common(p_status)
    p_status.add_argument("--url", default=None, metavar="URL",
                          help="query a running 'serve run' daemon instead "
                               "of opening the store (avoids contending "
                               "with its SQLite writers)")
    p_status.set_defaults(func=_cmd_fleet_status)

    p_rollout = fleet_sub.add_parser("rollout", help="staged firmware rollout")
    fleet_common(p_rollout)
    p_rollout.add_argument("--version", type=int, default=1,
                           help="target firmware version")
    p_rollout.add_argument("--waves", default="0.05,0.25,1.0",
                           help="cumulative wave coverage fractions")
    p_rollout.add_argument("--failure-threshold", type=float, default=0.10,
                           help="per-wave failed fraction that halts")
    p_rollout.add_argument("--tamper-fraction", type=float, default=0.0,
                           help="share of devices whose package a MITM flips")
    p_rollout.add_argument("--rollback-fraction", type=float, default=0.0,
                           help="share of devices offered a stale version")
    p_rollout.add_argument("--workers", type=int, default=0,
                           help="worker pool size (0 = auto)")
    p_rollout.add_argument("--batch-size", type=int, default=32)
    p_rollout.add_argument("--backend", choices=("thread", "process"),
                           default="thread",
                           help="campaign executor: thread shares the live "
                                "devices, process shards waves across "
                                "worker processes (GIL-free)")
    p_rollout.add_argument("--resume", action="store_true",
                           help="skip devices whose stored record already "
                                "shows the target version (needs --store)")
    p_rollout.add_argument("--metrics-dump", default=None, metavar="PATH",
                           help="write a metrics snapshot after every wave "
                                "(.prom -> Prometheus text, else JSON)")
    p_rollout.set_defaults(func=_cmd_fleet_rollout)

    p_history = fleet_sub.add_parser(
        "history", help="replay recorded fleet telemetry from an event DB")
    p_history.add_argument("--events", default=None, metavar="PATH",
                           help="the event DB a previous fleet invocation "
                                "recorded to (required)")
    p_history.add_argument("--device", default=None, metavar="ID",
                           help="print one device's event timeline")
    p_history.add_argument("--campaigns", action="store_true",
                           help="print the per-campaign rollup")
    p_history.add_argument("--trends", action="store_true",
                           help="print cross-campaign trend series")
    add_json(p_history)
    p_history.set_defaults(func=_cmd_fleet_history)

    p_watch = fleet_sub.add_parser(
        "watch", help="stream events live from a fleet's event DB")
    p_watch.add_argument("--events", default=None, metavar="PATH",
                         help="the event DB another fleet invocation is "
                              "writing to (required)")
    p_watch.add_argument("--since", type=int, default=0, metavar="SEQ",
                         help="skip events with seq <= SEQ")
    p_watch.add_argument("--follow", action="store_true",
                         help="keep polling for new events instead of "
                              "exiting at the current end of the log")
    p_watch.add_argument("--interval", type=float, default=0.2,
                         metavar="SECONDS", help="poll interval with --follow")
    p_watch.add_argument("--timeout", type=float, default=0.0,
                         metavar="SECONDS",
                         help="stop following after SECONDS (0 = forever)")
    p_watch.add_argument("--until-end", action="store_true",
                         help="with --follow, stop once a campaign-end "
                              "event streams past")
    p_watch.add_argument("--json", action="store_true",
                         help="stream one JSON document per event (JSONL)")
    p_watch.add_argument("--url", default=None, metavar="URL",
                         help="stream GET /events from a running 'serve "
                              "run' daemon instead of tailing the event "
                              "DB file")
    p_watch.set_defaults(func=_cmd_fleet_watch)

    p_alerts = fleet_sub.add_parser(
        "alerts", help="list recorded alerts, or re-evaluate rules offline")
    p_alerts.add_argument("--events", default=None, metavar="PATH",
                          help="the event DB a previous fleet invocation "
                               "recorded to (required)")
    p_alerts.add_argument("--replay", action="store_true",
                          help="re-run the rule panel over the stored "
                               "events instead of listing recorded alerts")
    p_alerts.add_argument("--alert", action="append", metavar="NAME=THRESHOLD",
                          help="with --replay: evaluate only the named "
                               "rules, at these thresholds (repeatable)")
    add_json(p_alerts)
    p_alerts.set_defaults(func=_cmd_fleet_alerts)

    p_metrics = fleet_sub.add_parser(
        "metrics", help="export metrics as Prometheus text or JSON")
    fleet_common(p_metrics)
    p_metrics.add_argument("--from", dest="snapshot", default=None,
                           metavar="PATH",
                           help="export a JSON snapshot file (e.g. a "
                                "--metrics-dump) instead of running a "
                                "fleet workload")
    p_metrics.add_argument("--format", choices=("prom", "json"),
                           default="prom",
                           help="exposition format (--json forces json)")
    p_metrics.set_defaults(func=_cmd_fleet_metrics)

    p_serve = sub.add_parser(
        "serve", help="fleet control plane: HTTP/JSON verifier daemon")
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)

    p_serve_run = serve_sub.add_parser(
        "run", help="serve enroll/attest/rollout + streaming status")
    p_serve_run.add_argument("--devices", type=int, default=100,
                             help="fleet size to build (existing shard "
                                  "records are restored, not re-enrolled)")
    p_serve_run.add_argument("--security", choices=("none", "casu", "eilid"),
                             default="casu")
    p_serve_run.add_argument("--loss", type=float, default=0.0,
                             help="per-message drop probability")
    p_serve_run.add_argument("--reorder", type=float, default=0.0,
                             help="per-message reorder probability")
    p_serve_run.add_argument("--seed", type=int, default=0)
    p_serve_run.add_argument("--store-shard", action="append", default=None,
                             metavar="PATH", dest="store_shard",
                             help="one durable registry shard (repeatable; "
                                  "same suffix dispatch as --store; two or "
                                  "more shards route device ids through a "
                                  "consistent-hash ring)")
    p_serve_run.add_argument("--events", default=None, metavar="PATH",
                             help="durable event DB backing the streaming "
                                  "endpoints and fleet history")
    p_serve_run.add_argument("--host", default="127.0.0.1")
    p_serve_run.add_argument("--port", type=int, default=0,
                             help="listen port (0 picks an ephemeral one, "
                                  "announced on the readiness line)")
    p_serve_run.add_argument("--workers", type=int, default=0,
                             help="protocol executor threads (0 = auto)")
    p_serve_run.add_argument("--alerts", action="store_true",
                             help="attach the default alert-rule panel")
    p_serve_run.add_argument("--alert", action="append",
                             metavar="NAME=THRESHOLD",
                             help="attach one alert rule with a custom "
                                  "threshold (repeatable)")
    add_json(p_serve_run)
    p_serve_run.set_defaults(func=_cmd_serve_run)

    try:
        args = parser.parse_args(argv)
        return args.func(args) or 0
    except _UsageError as error:
        print(f"eilid: error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
