"""Command-line interface: ``eilid <command>``.

Commands:

* ``tables [--table N] [--repeats N]`` -- regenerate paper tables
  (Table IV measures; expect a couple of minutes at default repeats).
* ``figure10`` -- hardware overhead comparison.
* ``micro`` -- per-operation instrumentation costs (Sec. VI in-text).
* ``run-app NAME [--variant original|eilid]`` -- build + execute one
  Table IV application and print its run summary.
* ``attack NAME [--security none|casu|eilid]`` -- run one attack.
* ``verify`` -- model-check the monitor properties.
"""

import argparse
import sys


def _cmd_tables(args):
    from repro.eval import (
        measure_table4,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    wanted = args.table
    if wanted in (None, 1):
        print(render_table1() + "\n")
    if wanted in (None, 2):
        print(render_table2() + "\n")
    if wanted in (None, 3):
        print(render_table3() + "\n")
    if wanted in (None, 4):
        rows = measure_table4(repeats=args.repeats)
        print(render_table4(rows))


def _cmd_figure10(_args):
    from repro.eval import render_figure10

    print(render_figure10())


def _cmd_micro(_args):
    from repro.eval import render_micro

    print(render_micro())


def _cmd_run_app(args):
    from repro.apps import get_app, run_app

    spec = get_app(args.name)
    run = run_app(spec, variant=args.variant)
    print(f"{spec.title} ({args.variant}): done={run.done} "
          f"cycles={run.cycles} ({run.run_time_us:.1f} us @100MHz) "
          f"violations={len(run.violations)}")
    for port, value in run.output_events()[:20]:
        print(f"  {port} = 0x{value:04x}")


def _cmd_attack(args):
    import repro.attacks as attacks

    attack = getattr(attacks, args.name, None)
    if attack is None:
        names = [n for n in attacks.__all__ if not n.startswith("Attack")]
        print(f"unknown attack {args.name!r}; choose from: {', '.join(names)}")
        return 1
    result = attack(args.security)
    print(result)
    return 0


def _cmd_verify(_args):
    from repro.verification.properties import check_all

    failures = 0
    for result in check_all():
        print(result)
        failures += 0 if result.holds else 1
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="eilid", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate paper tables")
    p_tables.add_argument("--table", type=int, choices=(1, 2, 3, 4))
    p_tables.add_argument("--repeats", type=int, default=3)
    p_tables.set_defaults(func=_cmd_tables)

    p_fig = sub.add_parser("figure10", help="hardware overhead comparison")
    p_fig.set_defaults(func=_cmd_figure10)

    p_micro = sub.add_parser("micro", help="per-op instrumentation cost")
    p_micro.set_defaults(func=_cmd_micro)

    p_run = sub.add_parser("run-app", help="run one Table IV application")
    p_run.add_argument("name")
    p_run.add_argument("--variant", choices=("original", "eilid"), default="eilid")
    p_run.set_defaults(func=_cmd_run_app)

    p_attack = sub.add_parser("attack", help="run one attack scenario")
    p_attack.add_argument("name")
    p_attack.add_argument("--security", choices=("none", "casu", "eilid"), default="eilid")
    p_attack.set_defaults(func=_cmd_attack)

    p_verify = sub.add_parser("verify", help="model-check the monitor properties")
    p_verify.set_defaults(func=_cmd_verify)

    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
