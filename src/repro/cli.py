"""Command-line interface: ``eilid <command>``.

Commands:

* ``tables [--table N] [--repeats N]`` -- regenerate paper tables
  (Table IV measures; expect a couple of minutes at default repeats).
* ``figure10`` -- hardware overhead comparison.
* ``micro`` -- per-operation instrumentation costs (Sec. VI in-text).
* ``run-app NAME [--variant original|eilid]`` -- build + execute one
  Table IV application and print its run summary.
* ``attack NAME [--security none|casu|eilid]`` -- run one attack.
* ``verify`` -- model-check the monitor properties.
* ``fleet enroll|status|rollout`` -- simulate a verifier managing a
  population of devices (see :mod:`repro.fleet`).
* ``cfg build|diff|verify-trace`` -- binary CFG recovery, CFI-policy
  compilation/cross-check, and branch-trace replay
  (see :mod:`repro.cfg`).

Exit codes (consistent across subcommands):

* ``0`` -- success: the requested run completed and nothing bad
  happened (an attack was contained, properties hold, the app ran
  clean, a rollout completed).
* ``1`` -- usage error: unknown app/attack name.
* ``2`` -- security failure: an attack hijacked the device, a
  verification property failed, an app run tripped violations or never
  finished, or fleet devices could not be enrolled/attested.
* ``3`` -- fleet rollout halted by the campaign failure threshold.
"""

import argparse
import sys

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_SECURITY = 2
EXIT_HALTED = 3


def _cmd_tables(args):
    from repro.eval import (
        measure_table4,
        render_table1,
        render_table2,
        render_table3,
        render_table4,
    )

    wanted = args.table
    if wanted in (None, 1):
        print(render_table1() + "\n")
    if wanted in (None, 2):
        print(render_table2() + "\n")
    if wanted in (None, 3):
        print(render_table3() + "\n")
    if wanted in (None, 4):
        rows = measure_table4(repeats=args.repeats)
        print(render_table4(rows))
    return EXIT_OK


def _cmd_figure10(_args):
    from repro.eval import render_figure10

    print(render_figure10())
    return EXIT_OK


def _cmd_micro(_args):
    from repro.eval import render_micro

    print(render_micro())
    return EXIT_OK


def _cmd_run_app(args):
    from repro.apps import get_app, run_app

    spec = get_app(args.name)
    run = run_app(spec, variant=args.variant)
    print(f"{spec.title} ({args.variant}): done={run.done} "
          f"cycles={run.cycles} ({run.run_time_us:.1f} us @100MHz) "
          f"violations={len(run.violations)}")
    for port, value in run.output_events()[:20]:
        print(f"  {port} = 0x{value:04x}")
    if not run.done or run.violations:
        return EXIT_SECURITY
    return EXIT_OK


def _cmd_attack(args):
    import repro.attacks as attacks
    from repro.attacks import AttackOutcome

    attack = getattr(attacks, args.name, None)
    if attack is None:
        names = [n for n in attacks.__all__ if not n.startswith("Attack")]
        print(f"unknown attack {args.name!r}; choose from: {', '.join(names)}")
        return EXIT_USAGE
    result = attack(args.security)
    print(result)
    if result.outcome is AttackOutcome.HIJACKED:
        return EXIT_SECURITY  # the attack went through undetected
    return EXIT_OK


def _cmd_verify(_args):
    from repro.verification.properties import check_all

    failures = 0
    for result in check_all():
        print(result)
        failures += 0 if result.holds else 1
    return EXIT_SECURITY if failures else EXIT_OK


# ---- cfg -------------------------------------------------------------------


def _cfg_build_app(args):
    """Shared front half of the cfg commands: build + recover + compile."""
    from repro.apps import get_app
    from repro.apps.runtime import build_app
    from repro.cfg import compile_policy, recover_cfg

    try:
        spec = get_app(args.name)
    except KeyError:
        from repro.apps.registry import TABLE_IV_ORDER

        raise _UsageError(
            f"unknown app {args.name!r}; choose from: "
            + ", ".join(TABLE_IV_ORDER)) from None
    build = build_app(spec, variant=args.variant)
    cfg = recover_cfg(build.program)
    policy = compile_policy(cfg, symbols=build.program.symbols)
    return spec, build, cfg, policy


def _cmd_cfg_build(args):
    _spec, _build, cfg, policy = _cfg_build_app(args)
    if args.json:
        print(policy.to_json())
        return EXIT_OK
    print(f"{cfg.name}: {len(cfg.insns)} instructions, "
          f"{len(cfg.functions)} functions, {cfg.block_count} blocks")
    print(f"  call sites: {len(cfg.call_sites)} "
          f"({sum(1 for s in cfg.call_sites if s.target is None)} indirect)")
    print(f"  return sites: {len(cfg.return_sites)}")
    source = "EILID call table" if cfg.indirect_targets_registered \
        else "discovered entries"
    print(f"  indirect targets ({source}): "
          + ", ".join(f"0x{a:04x}" for a in cfg.indirect_targets))
    print(f"  ISR vectors: {len([v for v in cfg.vectors if v != 15])}, "
          f"reti sites: {len(cfg.reti_sites)}")
    print(f"  policy digest: {policy.digest}")
    for func in cfg.functions.values():
        callees = sorted(cfg.call_graph.get(func.name, ()))
        arrow = f" -> {', '.join(callees)}" if callees else ""
        print(f"    {func.name} @0x{func.entry:04x} "
              f"[{func.block_count} blocks]{arrow}")
    return EXIT_OK


def _cmd_cfg_diff(args):
    spec, build, _cfg, policy = _cfg_build_app(args)
    from repro.cfg import diff_against_listing

    divergences = diff_against_listing(policy, build.listing)
    if not divergences:
        print(f"{spec.name} ({args.variant}): binary-derived policy matches "
              f"the listing-derived view "
              f"({len(policy.return_sites)} return sites, "
              f"{len(policy.indirect_targets)} indirect targets)")
        return EXIT_OK
    print(f"{spec.name} ({args.variant}): {len(divergences)} divergence(s):")
    for line in divergences:
        print(f"  {line}")
    return EXIT_SECURITY


def _cmd_cfg_verify_trace(args):
    from repro.cfg import policy_for_program, replay_trace

    if args.attack:
        import repro.attacks as attacks

        attack = getattr(attacks, args.attack, None)
        if attack is None:
            raise _UsageError(f"unknown attack {args.attack!r}")
        result = attack(args.security)
        device = result.device
        print(result)
    else:
        from repro.apps import get_app, run_app

        try:
            spec = get_app(args.name)
        except KeyError:
            raise _UsageError(f"unknown app {args.name!r}") from None
        run = run_app(spec, variant=args.variant)
        device = run.device
        print(f"{spec.title} ({args.variant}): done={run.done} "
              f"cycles={run.cycles}")
    policy = policy_for_program(device.program)
    snapshot = device.trace_snapshot()
    verdict = replay_trace(policy, snapshot)
    print(f"trace: {snapshot.total} edges ({snapshot.dropped} dropped), "
          f"digest {snapshot.digest_hex}")
    print(verdict)
    return EXIT_OK if verdict.ok else EXIT_SECURITY


# ---- fleet -----------------------------------------------------------------


class _UsageError(Exception):
    """Bad flag values; rendered as a clean message + exit 1."""


def _make_fleet(args):
    from repro.fleet import FleetSimulation

    try:
        return FleetSimulation(
            size=args.devices,
            security=args.security,
            loss=args.loss,
            reorder=args.reorder,
            seed=args.seed,
        )
    except ValueError as error:
        raise _UsageError(str(error)) from None


def _cmd_fleet_enroll(args):
    fleet = _make_fleet(args)
    failed = [record.device_id for record in fleet.registry
              if record.firmware_hash is None]
    print(f"enrolled {len(fleet.registry) - len(failed)}/{len(fleet.registry)} "
          f"devices (security={args.security}, loss={args.loss})")
    for state, count in sorted(fleet.registry.state_histogram().items()):
        print(f"  {state}: {count}")
    return EXIT_SECURITY if failed else EXIT_OK


def _cmd_fleet_status(args):
    fleet = _make_fleet(args)
    fleet.run_all(max_cycles=2_000)
    results = fleet.attest_all()
    print(fleet.status())
    healthy = sum(1 for result in results.values() if result.ok)
    return EXIT_OK if healthy == len(results) else EXIT_SECURITY


def _cmd_fleet_rollout(args):
    from repro.fleet import CampaignConfig

    try:
        config = CampaignConfig(
            wave_fractions=tuple(float(f) for f in args.waves.split(",")),
            failure_threshold=args.failure_threshold,
            workers=args.workers,
            batch_size=args.batch_size,
        )
    except ValueError as error:
        raise _UsageError(f"bad rollout options: {error}") from None
    fleet = _make_fleet(args)
    report = fleet.rollout(
        version=args.version,
        config=config,
        tamper_fraction=args.tamper_fraction,
        rollback_fraction=args.rollback_fraction,
    )
    print(report.render())
    print()
    print(fleet.status())
    return EXIT_HALTED if report.halted else EXIT_OK


class _Parser(argparse.ArgumentParser):
    """argparse exits 2 on bad flags; our contract reserves 2 for
    security failures, so parse errors are rerouted to exit 1."""

    def error(self, message):
        raise _UsageError(message)


def main(argv=None):
    import repro

    parser = _Parser(prog="eilid", description=__doc__)
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate paper tables")
    p_tables.add_argument("--table", type=int, choices=(1, 2, 3, 4))
    p_tables.add_argument("--repeats", type=int, default=3)
    p_tables.set_defaults(func=_cmd_tables)

    p_fig = sub.add_parser("figure10", help="hardware overhead comparison")
    p_fig.set_defaults(func=_cmd_figure10)

    p_micro = sub.add_parser("micro", help="per-op instrumentation cost")
    p_micro.set_defaults(func=_cmd_micro)

    p_run = sub.add_parser("run-app", help="run one Table IV application")
    p_run.add_argument("name")
    p_run.add_argument("--variant", choices=("original", "eilid"), default="eilid")
    p_run.set_defaults(func=_cmd_run_app)

    p_attack = sub.add_parser("attack", help="run one attack scenario")
    p_attack.add_argument("name")
    p_attack.add_argument("--security", choices=("none", "casu", "eilid"), default="eilid")
    p_attack.set_defaults(func=_cmd_attack)

    p_verify = sub.add_parser("verify", help="model-check the monitor properties")
    p_verify.set_defaults(func=_cmd_verify)

    p_cfg = sub.add_parser("cfg", help="binary CFG recovery + trace attestation")
    cfg_sub = p_cfg.add_subparsers(dest="cfg_command", required=True)

    def cfg_common(p):
        p.add_argument("name", nargs="?", default="fire_sensor",
                       help="Table IV application name")
        p.add_argument("--variant", choices=("original", "eilid"),
                       default="eilid")

    p_cfg_build = cfg_sub.add_parser(
        "build", help="recover the CFG and compile its CFI policy")
    cfg_common(p_cfg_build)
    p_cfg_build.add_argument("--json", action="store_true",
                             help="emit the policy artifact as JSON")
    p_cfg_build.set_defaults(func=_cmd_cfg_build)

    p_cfg_diff = cfg_sub.add_parser(
        "diff", help="cross-check the binary policy against the listing view")
    cfg_common(p_cfg_diff)
    p_cfg_diff.set_defaults(func=_cmd_cfg_diff)

    p_cfg_verify = cfg_sub.add_parser(
        "verify-trace", help="run an app or attack and replay its branch trace")
    cfg_common(p_cfg_verify)
    p_cfg_verify.add_argument("--attack", default=None,
                              help="replay an attack scenario's trace instead")
    p_cfg_verify.add_argument("--security", choices=("none", "casu", "eilid"),
                              default="none",
                              help="device security level for --attack runs")
    p_cfg_verify.set_defaults(func=_cmd_cfg_verify_trace)

    p_fleet = sub.add_parser("fleet", help="simulate a managed device fleet")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    def fleet_common(p):
        p.add_argument("--devices", type=int, default=100,
                       help="fleet size to simulate")
        p.add_argument("--security", choices=("none", "casu", "eilid"),
                       default="casu")
        p.add_argument("--loss", type=float, default=0.0,
                       help="per-message drop probability")
        p.add_argument("--reorder", type=float, default=0.0,
                       help="per-message reorder probability")
        p.add_argument("--seed", type=int, default=0)

    p_enroll = fleet_sub.add_parser("enroll", help="provision + enroll devices")
    fleet_common(p_enroll)
    p_enroll.set_defaults(func=_cmd_fleet_enroll)

    p_status = fleet_sub.add_parser("status",
                                    help="run, attest, and print telemetry")
    fleet_common(p_status)
    p_status.set_defaults(func=_cmd_fleet_status)

    p_rollout = fleet_sub.add_parser("rollout", help="staged firmware rollout")
    fleet_common(p_rollout)
    p_rollout.add_argument("--version", type=int, default=1,
                           help="target firmware version")
    p_rollout.add_argument("--waves", default="0.05,0.25,1.0",
                           help="cumulative wave coverage fractions")
    p_rollout.add_argument("--failure-threshold", type=float, default=0.10,
                           help="per-wave failed fraction that halts")
    p_rollout.add_argument("--tamper-fraction", type=float, default=0.0,
                           help="share of devices whose package a MITM flips")
    p_rollout.add_argument("--rollback-fraction", type=float, default=0.0,
                           help="share of devices offered a stale version")
    p_rollout.add_argument("--workers", type=int, default=0,
                           help="worker pool size (0 = auto)")
    p_rollout.add_argument("--batch-size", type=int, default=32)
    p_rollout.set_defaults(func=_cmd_fleet_rollout)

    try:
        args = parser.parse_args(argv)
        return args.func(args) or 0
    except _UsageError as error:
        print(f"eilid: error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
