"""Python reference model of the EILID shadow stack and call table.

The trusted ROM's behaviour (Fig. 9b) is specified here as an
executable model: tests drive the ROM on the simulator and this model
side-by-side and require identical outcomes (stored words, index
movement, violation reasons).  The attack oracles reuse it to predict
when a run *must* reset.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.casu.monitor import ViolationReason
from repro.eilid.policy import SecureMemoryPlan


@dataclass
class ShadowStackModel:
    plan: SecureMemoryPlan
    stack: List[int] = field(default_factory=list)
    table: List[int] = field(default_factory=list)

    # ---- helpers mirroring the paper's r5-indexed addressing ----------------

    @property
    def index(self):
        """Current value of the (modelled) r5 index register."""
        return len(self.stack)

    def slot_address(self, index):
        """Fig. 9b: entry *index* lives at shadow_base + 2*index."""
        return self.plan.shadow_base + 2 * index

    # ---- operations; return a ViolationReason or None -----------------------

    def init(self):
        self.stack.clear()
        self.table.clear()
        return None

    def store_ra(self, addr) -> Optional[ViolationReason]:
        if len(self.stack) >= self.plan.shadow_capacity_words:
            return ViolationReason.SHADOW_OVERFLOW
        self.stack.append(addr & 0xFFFF)
        return None

    def check_ra(self, addr) -> Optional[ViolationReason]:
        if not self.stack:
            return ViolationReason.SHADOW_UNDERFLOW
        expected = self.stack.pop()
        if expected != (addr & 0xFFFF):
            return ViolationReason.CFI_RETURN
        return None

    def store_rfi(self, ret_addr, status) -> Optional[ViolationReason]:
        if len(self.stack) + 2 > self.plan.shadow_capacity_words:
            return ViolationReason.SHADOW_OVERFLOW
        self.stack.append(ret_addr & 0xFFFF)
        self.stack.append(status & 0xFFFF)
        return None

    def check_rfi(self, ret_addr, status) -> Optional[ViolationReason]:
        if len(self.stack) < 2:
            return ViolationReason.SHADOW_UNDERFLOW
        expected_status = self.stack.pop()
        if expected_status != (status & 0xFFFF):
            self.stack.append(expected_status)
            return ViolationReason.CFI_RFI
        expected_ret = self.stack.pop()
        if expected_ret != (ret_addr & 0xFFFF):
            self.stack.append(expected_ret)
            return ViolationReason.CFI_RFI
        return None

    def store_ind(self, addr) -> Optional[ViolationReason]:
        if len(self.table) >= self.plan.table_capacity:
            return ViolationReason.TABLE_OVERFLOW
        self.table.append(addr & 0xFFFF)
        return None

    def check_ind(self, addr) -> Optional[ViolationReason]:
        if (addr & 0xFFFF) not in self.table:
            return ViolationReason.CFI_INDIRECT
        return None
