"""EILID configuration: protected properties, reserved registers, and
the secure-memory plan (shadow stack + indirect-call table layout).
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import InstrumentationError
from repro.memory.map import MemoryLayout

# Paper Table III: registers reserved for EILID.
RESERVED_REGISTERS: Tuple[Tuple[str, str], ...] = (
    ("r4", "Used as an argument of S_EILID_init() (function selector in the entry section)"),
    ("r5", "Used as a pointer to the shadow stack's current index"),
    ("r6, r7", "Used as an argument of other S_EILID functions"),
)

RESERVED_REGISTER_NUMBERS = (4, 5, 6, 7)


@dataclass(frozen=True)
class SecureMemoryPlan:
    """Layout of the secure DMEM bank.

    The bank holds the indirect-call function table (a count word plus
    ``table_capacity`` entries) followed by the shadow stack.  The paper
    allocates 256 bytes and notes the size is configurable.
    """

    table_count_addr: int
    table_base: int
    table_capacity: int
    shadow_base: int
    shadow_capacity_words: int

    @staticmethod
    def from_layout(layout: MemoryLayout, table_capacity: int = 16):
        region = layout.secure_dmem
        table_count_addr = region.start
        table_base = region.start + 2
        shadow_base = table_base + 2 * table_capacity
        shadow_capacity = (region.end + 1 - shadow_base) // 2
        if shadow_capacity < 4:
            raise InstrumentationError(
                "secure DMEM too small for the table + shadow stack split"
            )
        return SecureMemoryPlan(
            table_count_addr=table_count_addr,
            table_base=table_base,
            table_capacity=table_capacity,
            shadow_base=shadow_base,
            shadow_capacity_words=shadow_capacity,
        )

    @property
    def total_bytes(self):
        return (self.shadow_base + 2 * self.shadow_capacity_words) - self.table_count_addr


@dataclass
class EilidPolicy:
    """Which CFI properties are enforced and how strict the tooling is."""

    protect_returns: bool = True  # P1: return-address integrity
    protect_interrupts: bool = True  # P2: return-from-interrupt integrity
    protect_indirect_calls: bool = True  # P3: indirect-call integrity
    fail_on_indirect_jumps: bool = True  # the -fno-jump-tables stance
    repair_reserved_registers: bool = True  # auto push/pop around r4-r7 use
    table_capacity: int = 16
    # Ablation (DESIGN.md Sec. 5): resolve return addresses with
    # assembler labels instead of the paper's numeric .lst addresses.
    # Collapses the Fig. 2 pipeline from three builds to one.
    use_symbolic_return_labels: bool = False

    def plan(self, layout: MemoryLayout) -> SecureMemoryPlan:
        return SecureMemoryPlan.from_layout(layout, self.table_capacity)

    @staticmethod
    def full():
        return EilidPolicy()

    @staticmethod
    def backward_only():
        """P1+P2 only -- used by ablation benchmarks."""
        return EilidPolicy(protect_indirect_calls=False)

    @staticmethod
    def forward_only():
        """P3 only -- used by ablation benchmarks."""
        return EilidPolicy(protect_returns=False, protect_interrupts=False)

    def table_iii_rows(self) -> List[Dict[str, str]]:
        return [
            {"registers": regs, "description": desc} for regs, desc in RESERVED_REGISTERS
        ]
