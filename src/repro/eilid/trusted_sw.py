"""EILIDsw: the trusted runtime in secure ROM, plus its non-secure glue.

The ROM follows the paper's three-section structure (Fig. 9a):

* ``entry``  -- the only legal entry point; dispatches on the selector
  in r4 to the body function.
* ``body``   -- S_EILID_* functions operating on the shadow stack (r5 is
  the index register, Fig. 9b) and the indirect-call table.
* ``leave``  -- the only legal exit; clears the selector and returns to
  the instrumented code.

A failed check writes a reason code to the violation port, which the
EILID hardware turns into a device reset.

Also generated here: the non-secure ``NS_EILID_*`` shims the
instrumented code calls (each sets the selector and branches to the ROM
entry), the CASU update-copy routine, and the two crt0 variants
(original and EILID-enabled).
"""

from dataclasses import dataclass
from typing import Tuple

from repro.casu.monitor import RomConfig
from repro.eilid.policy import EilidPolicy, SecureMemoryPlan
from repro.memory.map import MemoryLayout
from repro.peripherals.ports import DONE_PORT, VIOLATION_PORT

# Selector values (r4) for the entry-section dispatch.
SELECTORS = {
    "init": 0,
    "store_ra": 1,
    "check_ra": 2,
    "store_rfi": 3,
    "check_rfi": 4,
    "store_ind": 5,
    "check_ind": 6,
}

# Reason codes written to the violation port (must match
# repro.casu.monitor.SW_REASON_CODES).
REASON_RA = 1
REASON_RFI = 2
REASON_IND = 3
REASON_OVERFLOW = 4
REASON_UNDERFLOW = 5
REASON_TABLE = 6
REASON_SELECTOR = 7

SHIM_NAMES = tuple(f"NS_EILID_{name}" for name in SELECTORS)

# Field order is the canonical wire encoding of an attestation report;
# the verifier (repro.fleet.protocol) MACs exactly this serialisation.
ATTESTATION_FIELDS = (
    "firmware_hash",
    "firmware_version",
    "reset_count",
    "violation_reasons",
    "cycle",
    "violation_count",
    "violation_totals",
    "trace_digest",
    "trace_edges",
    "trace_dropped",
)


@dataclass(frozen=True)
class AttestationReport:
    """What the trusted software reports to a remote verifier.

    The real EILIDsw would measure PMEM and sign the result inside the
    RoT; here the measurement is taken by ``Device.attestation_report``
    (native hash, same substitution as the update MAC) and the report
    carries the monitor's violation log so the verifier can see *why*
    a device has been resetting.
    """

    firmware_hash: str  # SHA-256 over PMEM+IVT, hex
    firmware_version: int  # UpdateEngine's monotonic counter
    reset_count: int
    violation_reasons: Tuple[str, ...]  # recent window (device log is a ring)
    cycle: int  # device-local logical time
    # Cumulative violation counters: unlike the bounded reasons window
    # these never lose history, so verifier telemetry can delta-fold
    # them exactly on long-running devices.
    violation_count: int = 0
    violation_totals: Tuple[str, ...] = ()  # "reason=count", sorted
    # Branch-trace attestation (repro.cfg): the rolling digest binds the
    # (unauthenticated) edge window the agent ships alongside this
    # report -- a forged window no longer folds to the MAC'd digest.
    trace_digest: str = ""
    trace_edges: int = 0
    trace_dropped: int = 0

    def message(self) -> bytes:
        """Canonical byte encoding (the MAC'd attestation evidence)."""
        parts = []
        for name in ATTESTATION_FIELDS:
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = ",".join(value)
            parts.append(str(value).encode())
        return b"\x1f".join(parts)


@dataclass
class TrustedSoftware:
    """Generator for the fixed source modules of an EILID build."""

    layout: MemoryLayout
    policy: EilidPolicy

    def __post_init__(self):
        self.plan: SecureMemoryPlan = self.policy.plan(self.layout)

    # ---- ROM ---------------------------------------------------------------

    def rom_source(self):
        plan = self.plan
        lines = [
            "; EILIDsw -- trusted runtime (secure ROM)",
            "    .secure",
            f"    .equ EILID_TBL_COUNT, 0x{plan.table_count_addr:04x}",
            f"    .equ EILID_TBL_BASE, 0x{plan.table_base:04x}",
            f"    .equ EILID_SS_BASE, 0x{plan.shadow_base:04x}",
            f"    .equ EILID_VIOLATION, 0x{VIOLATION_PORT:04x}",
            "",
            "; ---- entry section: sole legal entry point ----",
            "    .global S_EILID_entry",
            "S_EILID_entry:",
        ]
        for name, selector in SELECTORS.items():
            lines += [f"    cmp #{selector}, r4", f"    jz S_EILID_{name}"]
        lines += [
            f"    mov #{REASON_SELECTOR}, r6",
            "    jmp S_EILID_trigger",
            "",
            "; ---- body section ----",
            "S_EILID_init:",
            "    mov #0, r5",
            "    mov #0, &EILID_TBL_COUNT",
            "    jmp S_EILID_leave",
            "",
            "S_EILID_store_ra:",
            f"    cmp #{plan.shadow_capacity_words}, r5",
            "    jge S_EILID_viol_overflow",
            "    mov r5, r4",
            "    rla r4",
            "    mov r6, EILID_SS_BASE(r4)",
            "    inc r5",
            "    jmp S_EILID_leave",
            "",
            "S_EILID_check_ra:",
            "    tst r5",
            "    jz S_EILID_viol_underflow",
            "    dec r5",
            "    mov r5, r4",
            "    rla r4",
            "    cmp EILID_SS_BASE(r4), r6",
            "    jnz S_EILID_viol_ra",
            "    jmp S_EILID_leave",
            "",
            "S_EILID_store_rfi:",
            f"    cmp #{plan.shadow_capacity_words - 1}, r5",
            "    jge S_EILID_viol_overflow",
            "    mov r5, r4",
            "    rla r4",
            "    mov r6, EILID_SS_BASE(r4)",
            "    inc r5",
            "    mov r5, r4",
            "    rla r4",
            "    mov r7, EILID_SS_BASE(r4)",
            "    inc r5",
            "    jmp S_EILID_leave",
            "",
            "S_EILID_check_rfi:",
            "    cmp #2, r5",
            "    jl S_EILID_viol_underflow",
            "    dec r5",
            "    mov r5, r4",
            "    rla r4",
            "    cmp EILID_SS_BASE(r4), r7",
            "    jnz S_EILID_viol_rfi",
            "    dec r5",
            "    mov r5, r4",
            "    rla r4",
            "    cmp EILID_SS_BASE(r4), r6",
            "    jnz S_EILID_viol_rfi",
            "    jmp S_EILID_leave",
            "",
            "S_EILID_store_ind:",
            "    mov &EILID_TBL_COUNT, r4",
            f"    cmp #{plan.table_capacity}, r4",
            "    jge S_EILID_viol_table",
            "    rla r4",
            "    mov r6, EILID_TBL_BASE(r4)",
            "    inc &EILID_TBL_COUNT",
            "    jmp S_EILID_leave",
            "",
            "S_EILID_check_ind:",
            "    mov &EILID_TBL_COUNT, r4",
            "S_EILID_find:",
            "    dec r4",
            "    jn S_EILID_viol_ind",
            "    mov r4, r7",
            "    rla r7",
            "    cmp EILID_TBL_BASE(r7), r6",
            "    jz S_EILID_leave",
            "    jmp S_EILID_find",
            "",
            "; ---- violation reporting (never returns: hardware resets) ----",
            "S_EILID_viol_ra:",
            f"    mov #{REASON_RA}, r6",
            "    jmp S_EILID_trigger",
            "S_EILID_viol_rfi:",
            f"    mov #{REASON_RFI}, r6",
            "    jmp S_EILID_trigger",
            "S_EILID_viol_ind:",
            f"    mov #{REASON_IND}, r6",
            "    jmp S_EILID_trigger",
            "S_EILID_viol_overflow:",
            f"    mov #{REASON_OVERFLOW}, r6",
            "    jmp S_EILID_trigger",
            "S_EILID_viol_underflow:",
            f"    mov #{REASON_UNDERFLOW}, r6",
            "    jmp S_EILID_trigger",
            "S_EILID_viol_table:",
            f"    mov #{REASON_TABLE}, r6",
            "S_EILID_trigger:",
            "    mov r6, &EILID_VIOLATION",
            "S_EILID_spin:",
            "    jmp S_EILID_spin",
            "",
            "; ---- leave section: sole legal exit ----",
            "S_EILID_leave:",
            "    clr r4",
            "S_EILID_leave_ret:",
            "    ret",
            "",
            "; ---- CASU secure-update copy routine ----",
            "; r15 = staging source (DMEM), r14 = PMEM destination,",
            "; r13 = word count.  Runs only with the update session open.",
            "    .global S_CASU_update_copy",
            "S_CASU_update_copy:",
            "    tst r13",
            "    jz S_CASU_copy_done",
            "    mov @r15+, 0(r14)",
            "    incd r14",
            "    dec r13",
            "    jmp S_CASU_update_copy",
            "S_CASU_copy_done:",
            "S_CASU_copy_ret:",
            "    ret",
            "",
        ]
        return "\n".join(lines)

    # ---- non-secure shims ------------------------------------------------------

    def shims_source(self):
        lines = ["; NS_EILID_* shims: selector setup + branch into secure ROM", "    .text"]
        for name, selector in SELECTORS.items():
            lines += [
                f"    .global NS_EILID_{name}",
                f"NS_EILID_{name}:",
                f"    mov #{selector}, r4",
                "    br #S_EILID_entry",
            ]
        return "\n".join(lines) + "\n"

    # ---- crt0 ----------------------------------------------------------------------

    def crt0_source(self, eilid_enabled=True):
        stack_top = self.layout.stack_top
        lines = [
            f"; crt0 ({'EILID' if eilid_enabled else 'original'} build)",
            "    .text",
            "    .global __start",
            "__start:",
            f"    mov #0x{stack_top:04x}, r1",
        ]
        if eilid_enabled:
            lines += [
                "    call #NS_EILID_init",
                "    mov #__main_ret, r6",
                "    call #NS_EILID_store_ra",
            ]
        lines += [
            "    call #main",
            "__main_ret:",
            f"    mov #1, &0x{DONE_PORT:04x}",
            "__halt:",
            "    jmp __halt",
            "__default_handler:",
            "    reti",
            "    .vector 15, __start",
        ]
        return "\n".join(lines) + "\n"

    # ---- hardware configuration -----------------------------------------------------

    @staticmethod
    def rom_config_from_symbols(symbols) -> RomConfig:
        """Entry/exit configuration for the atomicity monitor."""
        entries = []
        for sym in ("S_EILID_entry", "S_CASU_update_copy"):
            if sym in symbols:
                entries.append(symbols[sym])
        exits = []
        if "S_EILID_leave" in symbols and "S_EILID_leave_ret" in symbols:
            exits.append((symbols["S_EILID_leave"], symbols["S_EILID_leave_ret"]))
        if "S_CASU_copy_done" in symbols and "S_CASU_copy_ret" in symbols:
            exits.append((symbols["S_CASU_copy_done"], symbols["S_CASU_copy_ret"]))
        return RomConfig(entry_points=tuple(entries), exit_ranges=tuple(exits))
