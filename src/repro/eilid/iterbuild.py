"""The iterated instrumented compilation of Fig. 2.

Three builds are required because the instrumenter embeds *numeric*
return addresses taken from the previous build's listing, and inserting
instructions shifts every downstream address:

1. build the original application (with the EILID runtime linked in) to
   obtain a first listing;
2. instrument using that listing (addresses are stale -- placeholders)
   and rebuild: the new listing now has the *final* layout, because the
   instruction count of the instrumentation is independent of the
   addresses it embeds;
3. re-instrument the original source against the second listing
   (addresses now correct) and rebuild.

A fourth instrumentation pass must reproduce iteration 3's output
byte-for-byte; :meth:`IterativeBuild.build_eilid` can verify that fixed
point (`verify_convergence=True`), and a test asserts it for every
application.
"""

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConvergenceError
from repro.eilid.instrumenter import InstrumentationReport, Instrumenter
from repro.eilid.policy import EilidPolicy
from repro.eilid.trusted_sw import TrustedSoftware
from repro.memory.map import MemoryLayout
from repro.toolchain.build import BuildPipeline, BuildResult, SourceModule


@dataclass
class IterationRecord:
    index: int
    build: BuildResult
    instrumented_source: Optional[str] = None
    report: Optional[InstrumentationReport] = None


@dataclass
class IterativeBuildResult:
    app_name: str
    iterations: List[IterationRecord]
    total_ms: float
    converged: bool

    @property
    def final(self) -> BuildResult:
        return self.iterations[-1].build

    @property
    def report(self) -> InstrumentationReport:
        for record in reversed(self.iterations):
            if record.report is not None:
                return record.report
        raise ConvergenceError("no instrumentation pass recorded")

    @property
    def final_source(self) -> str:
        for record in reversed(self.iterations):
            if record.instrumented_source is not None:
                return record.instrumented_source
        raise ConvergenceError("no instrumented source recorded")

    @property
    def build_count(self):
        return len(self.iterations)


class IterativeBuild:
    """Builds applications both ways: original and EILID-instrumented."""

    def __init__(self, layout: Optional[MemoryLayout] = None,
                 policy: Optional[EilidPolicy] = None):
        self.layout = layout or MemoryLayout.default()
        self.policy = policy or EilidPolicy()
        self.pipeline = BuildPipeline(self.layout)
        self.trusted = TrustedSoftware(self.layout, self.policy)
        # Fixed runtime modules (content-cached by the pipeline).
        self._crt0_plain = SourceModule("crt0.s", self.trusted.crt0_source(eilid_enabled=False))
        self._crt0_eilid = SourceModule("crt0.s", self.trusted.crt0_source(eilid_enabled=True))
        self._shims = SourceModule("eilid_shims.s", self.trusted.shims_source())
        self._rom = SourceModule("eilid_rom.s", self.trusted.rom_source())

    # ---- original (uninstrumented) build -----------------------------------

    def build_original(self, app_text, app_name="app.s"):
        modules = [self._crt0_plain, SourceModule(app_name, app_text, is_app=True)]
        return self.pipeline.build(modules, name=f"{app_name}:original")

    # ---- EILID build (Fig. 2) -------------------------------------------------

    def _eilid_modules(self, app_text, app_name):
        return [
            self._crt0_eilid,
            SourceModule(app_name, app_text, is_app=True),
            self._shims,
            self._rom,
        ]

    def build_eilid(self, app_text, app_name="app.s", verify_convergence=False):
        instrumenter = Instrumenter(self.policy, app_unit_name=app_name)
        t_start = time.perf_counter()
        iterations: List[IterationRecord] = []

        build1 = self.pipeline.build(
            self._eilid_modules(app_text, app_name), name=f"{app_name}:eilid-1"
        )
        iterations.append(IterationRecord(1, build1))

        instr1, report1 = instrumenter.instrument(app_text, build1.listing)
        build2 = self.pipeline.build(
            self._eilid_modules(instr1, app_name), name=f"{app_name}:eilid-2"
        )
        iterations.append(IterationRecord(2, build2, instr1, report1))

        instr2, report2 = instrumenter.instrument(app_text, build2.listing)
        build3 = self.pipeline.build(
            self._eilid_modules(instr2, app_name), name=f"{app_name}:eilid-3"
        )
        iterations.append(IterationRecord(3, build3, instr2, report2))

        converged = True
        if verify_convergence:
            instr3, _ = instrumenter.instrument(app_text, build3.listing)
            converged = instr3 == instr2
            if not converged:
                raise ConvergenceError(
                    f"{app_name}: instrumented source did not reach a fixed point "
                    "after three builds"
                )

        total_ms = (time.perf_counter() - t_start) * 1000
        return IterativeBuildResult(app_name, iterations, total_ms, converged)

    def build_eilid_symbolic(self, app_text, app_name="app.s"):
        """Ablation: label-resolved return addresses, single build.

        Requires a policy with ``use_symbolic_return_labels=True``; the
        assembler resolves the post-call labels, so no listing feedback
        (and no Fig. 2 iteration) is needed.
        """
        if not self.policy.use_symbolic_return_labels:
            raise ConvergenceError(
                "symbolic build requires policy.use_symbolic_return_labels"
            )
        instrumenter = Instrumenter(self.policy, app_unit_name=app_name)
        t_start = time.perf_counter()
        instr, report = instrumenter.instrument(app_text)
        build = self.pipeline.build(
            self._eilid_modules(instr, app_name), name=f"{app_name}:eilid-symbolic"
        )
        record = IterationRecord(1, build, instr, report)
        total_ms = (time.perf_counter() - t_start) * 1000
        return IterativeBuildResult(app_name, [record], total_ms, converged=True)
