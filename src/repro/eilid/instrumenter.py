"""EILIDinst: the compile-time assembly instrumenter.

Inputs, exactly as in the paper (Sec. V-A): the application ``*.s``
source to be instrumented and the ``*.lst`` listing of the *previous*
build, from which concrete addresses are resolved.  Output: the
``*_instr.s`` text.

Passes (all statement-level, deterministic):

1. **Reserved-register repair** -- hand-written code using r4-r7 gets
   each call-free run wrapped in ``push sr / dint / push rX ... pop rX /
   pop sr`` (paper Sec. V: "merely two instructions are additionally
   needed"; we add the interrupt fence those two instructions need to
   actually be safe in the presence of instrumented ISRs).
2. **Backward edge (P1, Figs. 3-4)** -- before each call, load the
   call's return address (the next instruction's address, taken from
   the listing) into r6 and invoke ``NS_EILID_store_ra``; before each
   ``ret``, load the in-stack return address and invoke
   ``NS_EILID_check_ra``.
3. **Interrupt context (P2, Figs. 5-6)** -- at ISR entry store the
   interrupted PC and SR (``2(r1)`` / ``0(r1)``; the hardware pushed PC
   then SR); before ``reti`` check them.  (The paper's listing shows
   ``0(r1)``/``-2(r1)``; the offsets here are the same two stack words
   addressed from the post-push SP -- see DESIGN.md.)
4. **Indirect calls (P3, Figs. 7-8)** -- at ``main`` entry register
   every application function address via ``NS_EILID_store_ind`` (only
   when the app performs indirect calls at all); before each
   ``call rN``, verify the target via ``NS_EILID_check_ind``.
5. **Indirect-jump guard** -- ``br rN``-style register jumps are
   rejected, mirroring the paper's ``-fno-jump-tables`` stance.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import InstrumentationError
from repro.eilid.policy import EilidPolicy, RESERVED_REGISTER_NUMBERS
from repro.isa.registers import PC, SR, SP
from repro.toolchain.listing import parse_listing
from repro.toolchain.operand_spec import OperandSpec, SpecKind
from repro.toolchain.parser import parse_source
from repro.toolchain.statements import InsnStatement, LabelStatement
from repro.toolchain.writer import render_unit

_SHIM_PREFIXES = ("NS_EILID_", "S_EILID_", "S_CASU_")
_ISR_PREFIX = "__isr_"


@dataclass
class InstrumentationReport:
    functions: List[Tuple[str, int]] = field(default_factory=list)
    direct_calls: int = 0
    indirect_calls: int = 0
    returns: int = 0
    isr_prologues: int = 0
    isr_epilogues: int = 0
    table_registrations: int = 0
    repaired_runs: int = 0
    inserted_instructions: int = 0
    inserted_bytes: int = 0
    warnings: List[str] = field(default_factory=list)

    @property
    def total_sites(self):
        return (
            self.direct_calls
            + self.indirect_calls
            + self.returns
            + self.isr_prologues
            + self.isr_epilogues
        )


def _is_plain_symbol(expr):
    return expr is not None and expr.replace("_", "a").replace(".", "a").isalnum() and not expr[
        0
    ].isdigit()


def _imm(expr):
    return OperandSpec(SpecKind.IMM, expr=expr)


def _reg(num):
    return OperandSpec(SpecKind.REG, reg=num)


def _idx(offset, reg):
    return OperandSpec(SpecKind.IDX, reg=reg, expr=str(offset))


def _insn(mnemonic, *operands):
    stmt = InsnStatement(
        "<eilid>", 0, f"{mnemonic} (inserted by EILIDinst)",
        mnemonic=mnemonic, byte_mode=False, operands=list(operands),
    )
    stmt.core_form()
    return stmt


class Instrumenter:
    """One EILIDinst pass: (source text, previous listing) -> instrumented text."""

    def __init__(self, policy: Optional[EilidPolicy] = None, app_unit_name: str = "app.s"):
        self.policy = policy or EilidPolicy()
        self.app_unit_name = app_unit_name

    # ---- public API -----------------------------------------------------------

    def instrument(self, source_text: str, listing_text: str = ""):
        """Returns ``(instrumented_source_text, InstrumentationReport)``.

        *listing_text* is the previous build's listing (paper flow); it
        may be empty only in the symbolic-labels ablation mode, where
        addresses are resolved by the assembler instead.
        """
        unit = parse_source(source_text, self.app_unit_name)
        symbolic = self.policy.use_symbolic_return_labels
        listing = None if symbolic else parse_listing(listing_text)
        report = InstrumentationReport()

        self._guard_against_reinstrumentation(unit)
        isr_labels = self._isr_labels(unit)
        functions = self._discover_functions(unit, isr_labels)
        self._guard_indirect_jumps(unit, report)

        if self.policy.repair_reserved_registers:
            self._repair_reserved_registers(unit, report)

        if symbolic:
            direct_ras = indirect_ras = None
            function_addrs = [(name, None) for name in functions]
            has_indirect = any(
                isinstance(s, InsnStatement)
                and s.mnemonic == "call"
                and s.operands
                and s.operands[0].kind is SpecKind.REG
                for s in unit.statements(".text")
            )
        else:
            direct_ras, indirect_ras = self._site_return_addresses(unit, listing)
            function_addrs = [
                (name, listing.label_address(name)) for name in functions
            ]
            has_indirect = indirect_ras is not None and len(indirect_ras) > 0
        report.functions = function_addrs

        self._rewrite_text(
            unit,
            report,
            isr_labels=isr_labels,
            direct_ras=direct_ras,
            indirect_ras=indirect_ras,
            function_addrs=function_addrs if has_indirect else [],
        )

        report.inserted_bytes = sum(
            stmt.size_bytes()
            for stmt in unit.statements(".text")
            if isinstance(stmt, InsnStatement) and stmt.filename == "<eilid>"
        )
        report.inserted_instructions = sum(
            1
            for stmt in unit.statements(".text")
            if isinstance(stmt, InsnStatement) and stmt.filename == "<eilid>"
        )
        return render_unit(unit), report

    # ---- discovery ----------------------------------------------------------------

    def _guard_against_reinstrumentation(self, unit):
        for stmt in unit.statements(".text"):
            if isinstance(stmt, InsnStatement) and stmt.mnemonic == "call":
                target = self._direct_call_target(stmt)
                if target and target.startswith(_SHIM_PREFIXES):
                    raise InstrumentationError(
                        f"input already instrumented: call to {target} at "
                        f"{stmt.filename}:{stmt.line}"
                    )

    @staticmethod
    def _direct_call_target(stmt):
        if not stmt.operands:
            return None
        op = stmt.operands[0]
        if op.kind is SpecKind.IMM and _is_plain_symbol(op.expr):
            return op.expr
        return None

    def _isr_labels(self, unit) -> Set[str]:
        labels = {name for name in unit.vectors.values()}
        for stmt in unit.statements(".text"):
            if isinstance(stmt, LabelStatement) and stmt.name.startswith(_ISR_PREFIX):
                labels.add(stmt.name)
        # The reset "vector 15" handler is crt0's job, not an ISR.
        return labels

    def _discover_functions(self, unit, isr_labels) -> List[str]:
        """Function entry points, in source order (paper Sec. IV-A: the
        instrumenter "enumerates entry points of all functions")."""
        defined = []
        for stmt in unit.statements(".text"):
            if isinstance(stmt, LabelStatement):
                defined.append(stmt.name)
        defined_set = set(defined)

        referenced: Set[str] = set(g for g in unit.globals_ if g in defined_set)
        for stmt in unit.statements(".text"):
            if not isinstance(stmt, InsnStatement):
                continue
            if stmt.mnemonic == "call":
                target = self._direct_call_target(stmt)
                if target and target in defined_set:
                    referenced.add(target)
                continue
            for op in stmt.operands:
                if op.kind is SpecKind.IMM and _is_plain_symbol(op.expr):
                    if op.expr in defined_set:
                        referenced.add(op.expr)  # address-taken label

        return [
            name
            for name in defined
            if name in referenced
            and name not in isr_labels
            and not name.startswith(".L")
            and not name.startswith(_SHIM_PREFIXES)
        ]

    def _guard_indirect_jumps(self, unit, report):
        """Reject register jumps (the -fno-jump-tables stance, Sec. VII)."""
        offenders = []
        for stmt in unit.statements(".text"):
            if not isinstance(stmt, InsnStatement):
                continue
            if stmt.mnemonic in ("ret", "reti", "call"):
                continue
            core, src, dst, _jump = stmt.core_form()
            if (
                dst is not None
                and dst.kind is SpecKind.REG
                and dst.reg == PC
                and src is not None
                and src.kind in (SpecKind.REG, SpecKind.IND, SpecKind.AUTOINC, SpecKind.IDX)
            ):
                offenders.append(f"{stmt.filename}:{stmt.line}: {stmt.text.strip()}")
        if not offenders:
            return
        if self.policy.fail_on_indirect_jumps:
            raise InstrumentationError(
                "indirect jumps are not supported (compile with the equivalent of "
                "-fno-jump-tables): " + "; ".join(offenders)
            )
        report.warnings.extend(f"indirect jump left unprotected: {o}" for o in offenders)

    # ---- listing cross-reference ----------------------------------------------------

    def _site_return_addresses(self, unit, listing):
        """Return-address lists for direct and indirect call sites.

        Source order of call sites matches listing address order within
        the app unit; inserted shim calls are recognisable by their
        ``NS_EILID_*`` symbol annotation and skipped -- that is how the
        third-iteration pass (Fig. 2) matches the *original* call sites
        inside an already-instrumented listing.
        """
        src_direct = src_indirect = 0
        for stmt in unit.statements(".text"):
            if isinstance(stmt, InsnStatement) and stmt.mnemonic == "call":
                if self._direct_call_target(stmt) or stmt.operands[0].kind is SpecKind.IMM:
                    src_direct += 1
                elif stmt.operands[0].kind is SpecKind.REG:
                    src_indirect += 1
                else:
                    raise InstrumentationError(
                        f"unsupported indirect-call operand at {stmt.filename}:{stmt.line}"
                    )

        lst_direct = []
        lst_indirect = []
        for entry in listing.instructions("call"):
            if not listing.in_unit(entry.addr, self.app_unit_name):
                continue
            if "#" in entry.text:
                if entry.note and entry.note.startswith(_SHIM_PREFIXES):
                    continue  # inserted by a previous iteration
                lst_direct.append(listing.next_address(entry.addr))
            else:
                lst_indirect.append(listing.next_address(entry.addr))

        if len(lst_direct) != src_direct or len(lst_indirect) != src_indirect:
            raise InstrumentationError(
                f"listing does not match source: {src_direct}/{src_indirect} call sites "
                f"in source vs {len(lst_direct)}/{len(lst_indirect)} in listing "
                "(was the listing produced from a different program?)"
            )
        return lst_direct, lst_indirect

    # ---- rewriting ------------------------------------------------------------------------

    def _rewrite_text(self, unit, report, isr_labels, direct_ras, indirect_ras, function_addrs):
        policy = self.policy
        out: List[object] = []
        direct_index = indirect_index = 0
        label_counter = {"n": 0}

        def next_ra(ras, index):
            """Return-address operand + post-call label for one site."""
            if ras is not None:
                return _imm(f"0x{ras[index]:04x}"), None
            label_counter["n"] += 1
            name = f".Leilid_ra{label_counter['n']}"
            return _imm(name), LabelStatement("<eilid>", 0, f"{name}:", name=name)

        for stmt in unit.statements(".text"):
            if isinstance(stmt, LabelStatement):
                out.append(stmt)
                if policy.protect_interrupts and stmt.name in isr_labels:
                    out += self._isr_prologue()
                    report.isr_prologues += 1
                if stmt.name == "main" and function_addrs:
                    for name, addr in function_addrs:
                        target = name if addr is None else f"0x{addr:04x}"
                        out += [
                            _insn("mov", _imm(target), _reg(6)),
                            _insn("call", _imm("NS_EILID_store_ind")),
                        ]
                        report.table_registrations += 1
                continue

            if isinstance(stmt, InsnStatement):
                post_label = None
                if stmt.mnemonic == "call":
                    op = stmt.operands[0]
                    if op.kind is SpecKind.IMM:
                        if policy.protect_returns:
                            ra_operand, post_label = next_ra(direct_ras, direct_index)
                            out += self._store_ra(ra_operand)
                            report.direct_calls += 1
                        direct_index += 1
                    else:  # register indirect (Fig. 8)
                        if policy.protect_indirect_calls:
                            out += [
                                _insn("mov", _reg(op.reg), _reg(6)),
                                _insn("call", _imm("NS_EILID_check_ind")),
                            ]
                        if policy.protect_returns:
                            ra_operand, post_label = next_ra(indirect_ras, indirect_index)
                            out += self._store_ra(ra_operand)
                        indirect_index += 1
                        report.indirect_calls += 1
                    out.append(stmt)
                    if post_label is not None:
                        out.append(post_label)
                    continue
                if stmt.mnemonic == "ret" and policy.protect_returns:
                    out += [
                        _insn("mov", _idx(0, SP), _reg(6)),
                        _insn("call", _imm("NS_EILID_check_ra")),
                    ]
                    report.returns += 1
                elif stmt.mnemonic == "reti" and policy.protect_interrupts:
                    # Read the interrupt context under the three reserved
                    # registers saved by the prologue, check it, then
                    # restore the reserved registers.
                    out += [
                        _insn("mov", _idx(8, SP), _reg(6)),
                        _insn("mov", _idx(6, SP), _reg(7)),
                        _insn("call", _imm("NS_EILID_check_rfi")),
                        _insn("pop", _reg(7)),
                        _insn("pop", _reg(6)),
                        _insn("pop", _reg(4)),
                    ]
                    report.isr_epilogues += 1
            out.append(stmt)

        unit.sections[".text"] = out

    def _store_ra(self, ra_operand):
        """Fig. 3: load the return address, store it on the shadow stack."""
        return [
            _insn("mov", ra_operand, _reg(6)),
            _insn("call", _imm("NS_EILID_store_ra")),
        ]

    def _isr_prologue(self):
        """Fig. 5: capture the interrupt context.

        The reserved registers r4/r6/r7 are saved first: an interrupt
        may land between an instrumented sequence's ``mov`` and its shim
        ``call`` in the interrupted code, so the ISR's own use of the
        EILID registers must be transparent.  With the three saves on
        the stack, the hardware-pushed PC sits at 8(SP) and SR at 6(SP).
        """
        return [
            _insn("push", _reg(4)),
            _insn("push", _reg(6)),
            _insn("push", _reg(7)),
            _insn("mov", _idx(8, SP), _reg(6)),
            _insn("mov", _idx(6, SP), _reg(7)),
            _insn("call", _imm("NS_EILID_store_rfi")),
        ]

    # ---- reserved-register repair ------------------------------------------------------------

    def _repair_reserved_registers(self, unit, report):
        stmts = unit.statements(".text")
        out: List[object] = []
        run: List[InsnStatement] = []
        run_regs: Set[int] = set()

        def flush():
            if not run:
                return
            regs = sorted(run_regs)
            out.append(_insn("push", _reg(SR)))
            out.append(_insn("dint"))
            for reg in regs:
                out.append(_insn("push", _reg(reg)))
            out.extend(run)
            for reg in reversed(regs):
                out.append(_insn("pop", _reg(reg)))
            out.append(_insn("pop", _reg(SR)))
            report.repaired_runs += 1
            run.clear()
            run_regs.clear()

        for stmt in stmts:
            used = self._reserved_registers_used(stmt)
            if used:
                if isinstance(stmt, InsnStatement) and stmt.mnemonic in ("call", "ret", "reti"):
                    raise InstrumentationError(
                        f"reserved register r4-r7 used by a control transfer at "
                        f"{stmt.filename}:{stmt.line}; rewrite the code instead"
                    )
                run.append(stmt)
                run_regs.update(used)
                continue
            flush()
            out.append(stmt)
        flush()
        unit.sections[".text"] = out

    @staticmethod
    def _reserved_registers_used(stmt):
        if not isinstance(stmt, InsnStatement):
            return set()
        used = set()
        for op in stmt.operands:
            if op.reg in RESERVED_REGISTER_NUMBERS:
                used.add(op.reg)
        return used
