"""EILID: the paper's primary contribution.

Three components (paper Fig. 1):

* :mod:`repro.eilid.instrumenter` -- EILIDinst, the compile-time
  assembly instrumenter (Figs. 3-8).
* :mod:`repro.eilid.trusted_sw` -- EILIDsw, the trusted runtime in
  secure ROM (entry/body/leave, shadow stack, indirect-call table,
  Fig. 9), plus the non-secure shims and crt0.
* the hardware side is CASU (:mod:`repro.casu`) plus the secure
  shadow-stack bank guard, armed via
  :meth:`repro.casu.MonitorPolicy.eilid`.

:mod:`repro.eilid.iterbuild` drives the three-iteration instrumented
compilation of Fig. 2; :func:`repro.device.build_device` assembles a
full EILID-enabled device.
"""

from repro.eilid.policy import EilidPolicy, SecureMemoryPlan, RESERVED_REGISTERS
from repro.eilid.trusted_sw import TrustedSoftware
from repro.eilid.instrumenter import Instrumenter, InstrumentationReport
from repro.eilid.iterbuild import IterativeBuild, IterativeBuildResult
from repro.eilid.shadow_stack import ShadowStackModel

__all__ = [
    "EilidPolicy",
    "SecureMemoryPlan",
    "RESERVED_REGISTERS",
    "TrustedSoftware",
    "Instrumenter",
    "InstrumentationReport",
    "IterativeBuild",
    "IterativeBuildResult",
    "ShadowStackModel",
]
