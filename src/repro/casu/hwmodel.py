"""Structural hardware cost model (LUTs / registers).

Figure 10 of the paper compares the FPGA footprint of EILID against
prior CFI and CFA hardware.  EILID's own cost is "entirely derived from
CASU hardware" plus the secure shadow-stack bank select: +99 LUTs
(5.3%) and +34 registers (4.9%) over the baseline openMSP430.

This model counts the monitor's structural elements (range comparators,
equality comparators, FSM state bits, latched diagnostic registers) and
maps them to LUT/FF estimates with coefficients calibrated against the
published synthesis numbers -- i.e. it reproduces *how the area scales
with the monitor structure*, anchored to the paper's absolute deltas.

The comparison series (HAFIX, HCFI, Tiny-CFA, ACFA, LO-FAT, LiteHAX)
are published numbers encoded as a reference dataset in
:mod:`repro.eval.paper_data`.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# Calibrated element costs (4-input LUT equivalents / flip-flops).
LUTS_PER_RANGE_COMPARATOR = 9  # two 16-bit magnitude compares, folded
LUTS_PER_EQ_COMPARATOR = 5  # 16-bit equality
LUTS_PER_FSM_STATE_BIT = 3
LUTS_PER_GLUE = 1  # enable/or-reduce gates
FFS_PER_STATE_BIT = 1
FFS_PER_LATCH_BIT = 1


@dataclass(frozen=True)
class MonitorBlock:
    """Structural summary of one sub-monitor."""

    name: str
    range_comparators: int = 0
    eq_comparators: int = 0
    fsm_state_bits: int = 0
    latch_bits: int = 0
    glue: int = 0

    @property
    def luts(self):
        return (
            self.range_comparators * LUTS_PER_RANGE_COMPARATOR
            + self.eq_comparators * LUTS_PER_EQ_COMPARATOR
            + self.fsm_state_bits * LUTS_PER_FSM_STATE_BIT
            + self.glue * LUTS_PER_GLUE
        )

    @property
    def registers(self):
        return self.fsm_state_bits * FFS_PER_STATE_BIT + self.latch_bits * FFS_PER_LATCH_BIT


def eilid_monitor_blocks() -> List[MonitorBlock]:
    """The EILID hardware extension over openMSP430, block by block.

    Mirrors the sub-monitor composition of `repro.casu.monitor` plus the
    violation latch that drives the reset line.  Element counts follow
    the signals each sub-monitor actually inspects:

    * W-xor-X: PC against the two executable ranges (PMEM, ROM).
    * PMEM guard: write address against PMEM, PC against ROM, plus the
      update-session state bit.
    * secure-RAM guard: data address against the shadow bank, PC
      against ROM.
    * ROM atomicity: previous-PC state, entry-point equality compare,
      exit-range compare, IRQ gate.
    * violation port: port address equality compare.
    * reset/diagnostic latch: 16-bit faulting address + 4-bit reason +
      the latch driving the reset wire.
    """
    return [
        MonitorBlock("w-xor-x", range_comparators=2, glue=1),
        # `pc in ROM` is decoded once and fanned out to the guards below.
        MonitorBlock("pc-in-rom-decode", range_comparators=1, glue=1),
        MonitorBlock("pmem-guard", range_comparators=1, fsm_state_bits=1, glue=2),
        MonitorBlock("secure-ram-guard", range_comparators=1, glue=1),
        MonitorBlock(
            "rom-atomicity", range_comparators=1, eq_comparators=2, fsm_state_bits=2, glue=1
        ),
        MonitorBlock("violation-port", eq_comparators=1),
        MonitorBlock("reset-latch", latch_bits=21, fsm_state_bits=1, glue=2),
        # Secure-bank chip-select decode shared with the bus fabric.
        MonitorBlock("bank-select", range_comparators=1, latch_bits=9, glue=1),
    ]


@dataclass
class HardwareCostModel:
    """Evaluate the structural model and compare to a baseline core."""

    baseline_luts: int = 1868  # openMSP430 (paper: +99 LUTs = +5.3%)
    baseline_registers: int = 694  # openMSP430 (paper: +34 regs = +4.9%)
    blocks: List[MonitorBlock] = field(default_factory=eilid_monitor_blocks)

    @property
    def extension_luts(self):
        return sum(block.luts for block in self.blocks)

    @property
    def extension_registers(self):
        return sum(block.registers for block in self.blocks)

    @property
    def lut_overhead_pct(self):
        return 100.0 * self.extension_luts / self.baseline_luts

    @property
    def register_overhead_pct(self):
        return 100.0 * self.extension_registers / self.baseline_registers

    def breakdown(self) -> Dict[str, Tuple[int, int]]:
        return {block.name: (block.luts, block.registers) for block in self.blocks}
