"""Hardware monitor: per-cycle checks over CPU bus signals.

The monitor is composed of independent sub-monitors, mirroring the
formally verified sub-property FSMs of the VRASED/CASU lineage:

* :class:`WxorXMonitor` -- no instruction fetch outside executable
  regions (PMEM + secure ROM); blocks code injection.
* :class:`PmemGuardMonitor` -- no PMEM/IVT write unless an authenticated
  update session is open and the write is issued from secure ROM.
* :class:`SecureRamGuardMonitor` -- the shadow-stack bank is accessible
  only while the PC is inside secure ROM (the EILID hardware extension).
* :class:`RomAtomicityMonitor` -- secure ROM is entered only at declared
  entry points, left only from the declared exit ranges, and never
  interrupted.
* :class:`ViolationPortMonitor` -- converts trusted-software CFI check
  failures (a write to the violation port from ROM) into resets, and
  treats any *untrusted* write to that port as an attack.
* :class:`IllegalInstructionMonitor` -- undefined opcodes reset.

Each sub-monitor sees every :class:`repro.cpu.StepRecord` and returns a
:class:`Violation` or ``None``.  The composition stops at the first
violation (hardware ORs the violation wires into one reset line).
"""

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.core import StepKind
from repro.memory.bus import AccessKind
from repro.peripherals.ports import VIOLATION_PORT


class ViolationReason(enum.Enum):
    W_XOR_X = "exec-from-nonexecutable"
    PMEM_WRITE = "pmem-write-outside-update"
    SECURE_RAM_ACCESS = "secure-ram-access-from-untrusted-code"
    ROM_ENTRY = "rom-entered-off-entry-point"
    ROM_EXIT = "rom-left-outside-exit-section"
    IRQ_IN_ROM = "interrupt-inside-rom"
    ILLEGAL_INSN = "illegal-instruction"
    SECURE_PORT = "violation-port-write-from-untrusted-code"
    # Reason codes written by EILIDsw to the violation port:
    CFI_RETURN = "cfi-return-address-mismatch"
    CFI_RFI = "cfi-interrupt-context-mismatch"
    CFI_INDIRECT = "cfi-illegal-indirect-target"
    SHADOW_OVERFLOW = "shadow-stack-overflow"
    SHADOW_UNDERFLOW = "shadow-stack-underflow"
    TABLE_OVERFLOW = "function-table-overflow"
    BAD_SELECTOR = "bad-rom-selector"


# EILIDsw reason-code wire values -> reasons (must match trusted_sw.py).
SW_REASON_CODES = {
    1: ViolationReason.CFI_RETURN,
    2: ViolationReason.CFI_RFI,
    3: ViolationReason.CFI_INDIRECT,
    4: ViolationReason.SHADOW_OVERFLOW,
    5: ViolationReason.SHADOW_UNDERFLOW,
    6: ViolationReason.TABLE_OVERFLOW,
    7: ViolationReason.BAD_SELECTOR,
}


@dataclass(frozen=True)
class Violation:
    reason: ViolationReason
    pc: int
    addr: Optional[int] = None
    detail: str = ""

    def __str__(self):
        where = f" addr=0x{self.addr:04x}" if self.addr is not None else ""
        return f"{self.reason.value} at pc=0x{self.pc:04x}{where} {self.detail}".rstrip()


@dataclass(frozen=True)
class RomConfig:
    """Trusted-ROM shape the atomicity monitor enforces."""

    entry_points: Tuple[int, ...] = ()
    exit_ranges: Tuple[Tuple[int, int], ...] = ()  # inclusive address ranges

    def is_entry(self, addr):
        return addr in self.entry_points

    def in_exit_range(self, addr):
        return any(start <= addr <= end for start, end in self.exit_ranges)


@dataclass
class MonitorPolicy:
    """Which sub-monitors are armed.

    ``casu()`` is the base active-RoT configuration; ``eilid()`` adds
    the secure shadow-stack bank guard and the CFI violation port.
    """

    w_xor_x: bool = True
    pmem_guard: bool = True
    rom_atomicity: bool = True
    secure_ram_guard: bool = False
    violation_port: bool = False
    illegal_insn: bool = True

    @staticmethod
    def casu():
        return MonitorPolicy()

    @staticmethod
    def eilid():
        return MonitorPolicy(secure_ram_guard=True, violation_port=True)


class _SubMonitor:
    name = "sub-monitor"

    def reset(self):
        """Return to the power-on state (called after a device reset)."""

    def check(self, step, layout):
        raise NotImplementedError


class WxorXMonitor(_SubMonitor):
    name = "w-xor-x"

    def check(self, step, layout):
        for access in step.accesses:
            if access.kind is AccessKind.FETCH and not layout.is_executable(access.addr):
                return Violation(ViolationReason.W_XOR_X, step.pc, access.addr)
        return None


class PmemGuardMonitor(_SubMonitor):
    name = "pmem-guard"

    def __init__(self):
        self.update_session_open = False

    def reset(self):
        self.update_session_open = False

    def check(self, step, layout):
        for access in step.accesses:
            if access.kind is not AccessKind.WRITE:
                continue
            if not layout.in_pmem(access.addr):
                continue
            allowed = self.update_session_open and layout.in_secure_rom(step.pc)
            if not allowed:
                return Violation(ViolationReason.PMEM_WRITE, step.pc, access.addr)
        return None


class SecureRamGuardMonitor(_SubMonitor):
    name = "secure-ram-guard"

    def check(self, step, layout):
        for access in step.accesses:
            if access.kind is AccessKind.FETCH:
                continue  # fetches are W-xor-X's problem
            if layout.in_secure_dmem(access.addr) and not layout.in_secure_rom(step.pc):
                return Violation(ViolationReason.SECURE_RAM_ACCESS, step.pc, access.addr)
        return None


class RomAtomicityMonitor(_SubMonitor):
    name = "rom-atomicity"

    def __init__(self, rom_config: RomConfig):
        self.rom_config = rom_config

    def check(self, step, layout):
        was_in = layout.in_secure_rom(step.pc)
        now_in = layout.in_secure_rom(step.next_pc)
        if step.kind is StepKind.INTERRUPT and was_in:
            return Violation(ViolationReason.IRQ_IN_ROM, step.pc)
        if not was_in and now_in and not self.rom_config.is_entry(step.next_pc):
            return Violation(ViolationReason.ROM_ENTRY, step.pc, step.next_pc)
        if was_in and not now_in and not self.rom_config.in_exit_range(step.pc):
            return Violation(ViolationReason.ROM_EXIT, step.pc, step.next_pc)
        return None


class ViolationPortMonitor(_SubMonitor):
    name = "violation-port"

    def check(self, step, layout):
        for access in step.accesses:
            if access.kind is not AccessKind.WRITE or access.addr != VIOLATION_PORT:
                continue
            if layout.in_secure_rom(step.pc):
                reason = SW_REASON_CODES.get(
                    access.value, ViolationReason.BAD_SELECTOR
                )
                return Violation(reason, step.pc, detail="(EILIDsw check failed)")
            return Violation(ViolationReason.SECURE_PORT, step.pc, access.addr)
        return None


class IllegalInstructionMonitor(_SubMonitor):
    name = "illegal-insn"

    def check(self, step, layout):
        if step.kind is StepKind.ILLEGAL:
            return Violation(
                ViolationReason.ILLEGAL_INSN,
                step.pc,
                detail=f"word=0x{step.illegal_word:04x}",
            )
        return None


class HardwareMonitor:
    """Composition of the armed sub-monitors."""

    def __init__(self, layout, policy: Optional[MonitorPolicy] = None,
                 rom_config: Optional[RomConfig] = None):
        self.layout = layout
        self.policy = policy or MonitorPolicy.casu()
        self.rom_config = rom_config or RomConfig()
        self.subs: List[_SubMonitor] = []
        self._pmem_guard = None
        if self.policy.w_xor_x:
            self.subs.append(WxorXMonitor())
        if self.policy.pmem_guard:
            self._pmem_guard = PmemGuardMonitor()
            self.subs.append(self._pmem_guard)
        if self.policy.secure_ram_guard:
            self.subs.append(SecureRamGuardMonitor())
        if self.policy.rom_atomicity:
            self.subs.append(RomAtomicityMonitor(self.rom_config))
        if self.policy.violation_port:
            self.subs.append(ViolationPortMonitor())
        if self.policy.illegal_insn:
            self.subs.append(IllegalInstructionMonitor())

    def observe(self, step) -> Optional[Violation]:
        """Check one CPU step; first violation wins (hardware OR)."""
        for sub in self.subs:
            violation = sub.check(step, self.layout)
            if violation is not None:
                return violation
        return None

    def reset(self):
        for sub in self.subs:
            sub.reset()

    # ---- update session control (driven by the update engine) -----------

    def open_update_session(self):
        if self._pmem_guard is None:
            raise RuntimeError("monitor has no PMEM guard to unlock")
        self._pmem_guard.update_session_open = True

    def close_update_session(self):
        if self._pmem_guard is not None:
            self._pmem_guard.update_session_open = False

    @property
    def update_session_open(self):
        return self._pmem_guard is not None and self._pmem_guard.update_session_open

    # ---- snapshot/restore (see repro.snapshot) -----------------------

    def snapshot_state(self):
        """The monitor's only mutable state: the PMEM-guard session."""
        return {"update_session_open": self.update_session_open}

    def restore_state(self, state):
        if self._pmem_guard is not None:
            self._pmem_guard.update_session_open = bool(
                state["update_session_open"])
