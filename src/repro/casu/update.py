"""CASU authenticated software update.

CASU's only path to modify PMEM is an authenticated update: the verifier
signs (new image, version) with a key shared with the device ROM; the
device checks the MAC and monotonic version, then the ROM update routine
copies the staged image into PMEM while the hardware monitor's update
session is open.  Any other PMEM write resets the device.

Substitution note (see DESIGN.md): the MAC check runs in Python (the
real CASU runs HACL* HMAC inside the ROM); the *copy* runs on the
simulated CPU executing the real ROM copy routine, so the monitor's
update-session gating is exercised for real on both the allowed and the
denied paths.
"""

import enum
import hashlib
import hmac
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import UpdateError

STAGING_HEADER_WORDS = 3  # dst, length(words), reserved


@dataclass(frozen=True)
class UpdateKey:
    """Symmetric device key (shared with the verifier)."""

    secret: bytes

    @staticmethod
    def derive(device_id: str):
        return UpdateKey(hashlib.sha256(f"casu-key:{device_id}".encode()).digest())


@dataclass(frozen=True)
class UpdatePackage:
    """A signed update: target address, payload, version, MAC."""

    target: int
    payload: bytes
    version: int
    mac: bytes

    def message(self):
        header = self.target.to_bytes(2, "little") + self.version.to_bytes(4, "little")
        return header + self.payload

    @staticmethod
    def make(key: UpdateKey, target: int, payload: bytes, version: int):
        if len(payload) % 2:
            raise UpdateError("payload must be word-aligned")
        pkg = UpdatePackage(target, payload, version, b"")
        mac = hmac.new(key.secret, pkg.message(), hashlib.sha256).digest()
        return UpdatePackage(target, payload, version, mac)

    def tampered(self, offset=0, flip=0x01):
        """A copy with one payload byte flipped (for negative tests)."""
        mutated = bytearray(self.payload)
        mutated[offset] ^= flip
        return UpdatePackage(self.target, bytes(mutated), self.version, self.mac)


class UpdateStatus(enum.Enum):
    APPLIED = "applied"
    BAD_MAC = "rejected-bad-mac"
    STALE_VERSION = "rejected-stale-version"
    COPY_FAILED = "copy-failed"

    @property
    def rejected(self):
        """True for the ROM-check rejections (MAC or monotonic version)."""
        return self in (UpdateStatus.BAD_MAC, UpdateStatus.STALE_VERSION)


@dataclass
class UpdateResult:
    status: UpdateStatus
    detail: str = ""

    @property
    def ok(self):
        return self.status is UpdateStatus.APPLIED


class UpdateEngine:
    """Device-side update logic (ROM crypto modelled natively)."""

    def __init__(self, key: UpdateKey):
        self.key = key
        self.current_version = 0
        self.history: List[Tuple[int, UpdateStatus]] = []

    def verify(self, package: UpdatePackage) -> UpdateResult:
        expected = hmac.new(self.key.secret, package.message(), hashlib.sha256).digest()
        if not hmac.compare_digest(expected, package.mac):
            result = UpdateResult(UpdateStatus.BAD_MAC)
        elif package.version <= self.current_version:
            result = UpdateResult(
                UpdateStatus.STALE_VERSION,
                f"version {package.version} <= {self.current_version}",
            )
        else:
            result = UpdateResult(UpdateStatus.APPLIED)
        self.history.append((package.version, result.status))
        return result

    def accept(self, package: UpdatePackage):
        """Advance the monotonic version after a successful apply."""
        self.current_version = package.version

    # ---- snapshot/restore (see repro.snapshot) ---------------------------

    def snapshot_state(self):
        return {
            "current_version": self.current_version,
            "history": [[version, status.value]
                        for version, status in self.history],
        }

    def restore_state(self, state):
        self.current_version = state["current_version"]
        self.history = [(version, UpdateStatus(value))
                        for version, value in state["history"]]
