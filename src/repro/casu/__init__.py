"""CASU substrate: the active Root-of-Trust EILID builds on.

CASU (Compromise Avoidance via Secure Update, ICCAD'22) is a hybrid
hardware/software RoT that makes deployed software immutable: program
memory writes are blocked outside an authenticated update, data memory
never executes (W xor X), and the trusted ROM is atomic (single entry,
single exit, no interrupts inside).  Any violation resets the MCU.

This package models the CASU hardware as a set of per-cycle sub-monitor
FSMs over the CPU's bus signals (:mod:`repro.casu.monitor`), the
authenticated update protocol (:mod:`repro.casu.update`), and a
structural hardware cost model used for the Fig. 10 reproduction
(:mod:`repro.casu.hwmodel`).
"""

from repro.casu.monitor import (
    HardwareMonitor,
    MonitorPolicy,
    RomConfig,
    Violation,
    ViolationReason,
)
from repro.casu.update import UpdateEngine, UpdateKey, UpdatePackage, UpdateResult
from repro.casu.hwmodel import HardwareCostModel

__all__ = [
    "HardwareMonitor",
    "MonitorPolicy",
    "RomConfig",
    "Violation",
    "ViolationReason",
    "UpdateEngine",
    "UpdateKey",
    "UpdatePackage",
    "UpdateResult",
    "HardwareCostModel",
]
