"""Deterministic seeded expansion of fault sites into a sweep plan.

The plan is expanded **once, in the parent**, before any work is
dispatched: every concrete fault (site + parameters) is fixed up
front, so the thread and process backends run the exact same sweep and
produce identical tallies for the same seed -- the property the
acceptance test pins.

Wire form: each fault is a flat JSON-safe dict (it travels to pool
workers inside the shard context), and the whole plan round-trips
through ``to_dict``/``from_dict`` with the shared codec version.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.snapshot import WIRE_VERSION, check_wire_version
from repro.faults.sites import CORRUPTIBLE_PERIPHERALS, FaultSite


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, fully parameterised fault sweep."""

    name: str  # program the sites came from
    seed: int
    faults: Tuple[Dict, ...]  # wire dicts, ids 0..n-1 in order

    def __len__(self):
        return len(self.faults)

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault["kind"]] = counts.get(fault["kind"], 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {"codec": WIRE_VERSION, "name": self.name, "seed": self.seed,
                "faults": [dict(fault) for fault in self.faults]}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        check_wire_version(doc, "fault plan")
        return cls(name=doc["name"], seed=doc["seed"],
                   faults=tuple(dict(fault) for fault in doc["faults"]))


def expand_plan(sites: Sequence[FaultSite], seed: int = 0,
                count: Optional[int] = None, name: str = "") -> FaultPlan:
    """Sample *count* sites (all of them if None) and fix parameters.

    One ``random.Random(seed)`` drives both the site sampling and the
    per-fault parameter draws, so the plan is a pure function of
    (sites, seed, count).  Counts above the site population sample with
    replacement -- a sweep may deliberately hammer a small CFG.
    """
    if not sites:
        raise ValueError("no fault sites to expand")
    rng = random.Random(seed)
    if count is None or count == len(sites):
        chosen = list(sites)
    elif count < len(sites):
        chosen = rng.sample(list(sites), count)
    else:
        chosen = rng.choices(list(sites), k=count)
    faults: List[Dict] = []
    for fault_id, site in enumerate(chosen):
        doc = {"id": fault_id, "kind": site.kind, "pc": site.pc,
               "function": site.function}
        if site.kind == "imem-flip":
            doc["bit"] = rng.randrange(8 * site.size)
        elif site.kind == "insn-skip":
            doc["next_pc"] = site.next_pc
        elif site.kind == "reg-corrupt":
            # R4-R15: the general-purpose file.  PC/SP/SR corruption is
            # what imem-flip and insn-skip already exercise indirectly.
            doc["reg"] = rng.randrange(4, 16)
            doc["mask"] = rng.randrange(1, 0x10000)
        elif site.kind == "periph-corrupt":
            doc["periph"] = rng.choice(CORRUPTIBLE_PERIPHERALS)
            doc["mask"] = rng.randrange(1, 0x10000)
        faults.append(doc)
    return FaultPlan(name=name, seed=seed, faults=tuple(faults))
